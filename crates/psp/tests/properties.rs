//! Property-based tests for the PSP's measurement and report machinery.
//!
//! Seeded XorShift64 case generation keeps the sweep deterministic without
//! an external property-testing dependency.

use sevf_psp::{
    measure_region, AmdRootRegistry, AttestationReport, ChipIdentity, GuestPolicy, MeasurementChain,
};
use sevf_sim::rng::XorShift64;

const CASES: u64 = 48;

fn page(rng: &mut XorShift64) -> Vec<u8> {
    (0..4096).map(|_| rng.next_u64() as u8).collect()
}

fn bytes(rng: &mut XorShift64, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len as u64 + rng.next_below((max_len - min_len) as u64 + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn chain_is_deterministic() {
    let mut rng = XorShift64::new(0x9A9_0001);
    for _ in 0..CASES {
        let pages: Vec<Vec<u8>> = (0..1 + rng.next_below(4)).map(|_| page(&mut rng)).collect();
        let mut a = MeasurementChain::new();
        let mut b = MeasurementChain::new();
        for (i, p) in pages.iter().enumerate() {
            a.add_page(i as u64 * 4096, p);
            b.add_page(i as u64 * 4096, p);
        }
        assert_eq!(a.finalize(), b.finalize());
    }
}

#[test]
fn any_byte_change_changes_digest() {
    let mut rng = XorShift64::new(0x9A9_0002);
    for _ in 0..CASES {
        let mut p = page(&mut rng);
        let index = rng.next_below(4096) as usize;
        let flip = 1 + (rng.next_u64() % 255) as u8;
        let mut a = MeasurementChain::new();
        a.add_page(0, &p);
        p[index] ^= flip;
        let mut b = MeasurementChain::new();
        b.add_page(0, &p);
        assert_ne!(a.finalize(), b.finalize());
    }
}

#[test]
fn swapping_two_pages_changes_digest() {
    let mut rng = XorShift64::new(0x9A9_0003);
    for _ in 0..CASES {
        let p1 = page(&mut rng);
        let p2 = page(&mut rng);
        if p1 == p2 {
            continue;
        }
        let mut a = MeasurementChain::new();
        a.add_page(0, &p1);
        a.add_page(4096, &p2);
        let mut b = MeasurementChain::new();
        b.add_page(0, &p2);
        b.add_page(4096, &p1);
        assert_ne!(a.finalize(), b.finalize());
    }
}

#[test]
fn region_measurement_equals_manual_pages() {
    let mut rng = XorShift64::new(0x9A9_0004);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 1, 11_999);
        let base = rng.next_below(1000) * 4096;
        let mut via_region = MeasurementChain::new();
        measure_region(&mut via_region, base, &data);
        let mut manual = MeasurementChain::new();
        for (i, chunk) in data.chunks(4096).enumerate() {
            let mut page = [0u8; 4096];
            page[..chunk.len()].copy_from_slice(chunk);
            manual.add_page(base + i as u64 * 4096, &page);
        }
        assert_eq!(via_region.finalize(), manual.finalize());
        assert_eq!(via_region.page_count(), data.len().div_ceil(4096) as u64);
    }
}

#[test]
fn report_wire_roundtrip() {
    let mut rng = XorShift64::new(0x9A9_0005);
    for _ in 0..CASES {
        let mut measurement = [0u8; 48];
        let mut report_data = [0u8; 64];
        for b in &mut measurement {
            *b = rng.next_u64() as u8;
        }
        for b in &mut report_data {
            *b = rng.next_u64() as u8;
        }
        let chip = ChipIdentity::from_seed(&rng.next_u64().to_le_bytes());
        let report = AttestationReport {
            version: 2,
            policy: GuestPolicy::snp(),
            measurement,
            report_data,
            chip_id: chip.chip_id,
            signature: [0u8; 48],
        };
        let mut registry = AmdRootRegistry::new();
        registry.register(chip.clone());
        // An unsigned/garbage-signed report never verifies.
        assert!(!registry.verify(&report));
        let parsed = AttestationReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
    }
}

#[test]
fn tampering_any_report_field_breaks_verification() {
    use sevf_mem::GuestMemory;
    use sevf_sim::cost::SevGeneration;
    use sevf_sim::CostModel;
    let mut rng = XorShift64::new(0x9A9_0006);
    for _ in 0..CASES {
        let flip_at = rng.next_below(150) as usize;
        let flip = 1 + (rng.next_u64() % 255) as u8;
        let mut psp = sevf_psp::Psp::new(CostModel::calibrated(), 77);
        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let mut mem = GuestMemory::new_sev(1 << 20, start.memory_key, SevGeneration::SevSnp);
        mem.host_write(0, b"verifier").unwrap();
        psp.launch_update_data(start.guest, &mut mem, 0, 4096)
            .unwrap();
        psp.launch_finish(start.guest).unwrap();
        let (report, _) = psp.guest_report(start.guest, [7u8; 64]).unwrap();
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        assert!(registry.verify(&report));

        let mut bytes = report.to_bytes();
        bytes[flip_at] ^= flip;
        if let Some(tampered) = AttestationReport::from_bytes(&bytes) {
            assert!(
                !registry.verify(&tampered),
                "tampered byte {flip_at} accepted"
            );
        }
    }
}
