//! The simulated AMD Platform Security Processor (PSP).
//!
//! The PSP is the low-power ARM core that owns SEV key management and the
//! launch flow (§2.2 of the paper). Every command here both *does the work*
//! (chains the SHA-384 launch digest over real page contents, mints real
//! HMAC-signed attestation reports) and *reports its virtual-time cost* from
//! the calibrated model — the per-byte cost of `LAUNCH_UPDATE_DATA` is what
//! makes pre-encrypting a kernel prohibitively expensive (Fig. 4), and the
//! fact that all of this runs on a **single PSP core** is the Fig. 12
//! bottleneck.
//!
//! The launch flow implemented here follows §2.4:
//!
//! 1. [`Psp::launch_start`] — allocate a guest context and memory key.
//! 2. [`Psp::launch_update_data`] — measure + encrypt guest pages.
//! 3. [`Psp::launch_update_vmsa`] — encrypt initial vCPU state (ES/SNP).
//! 4. [`Psp::launch_finish`] — freeze the measurement; further updates fail.
//! 5. [`Psp::guest_report`] — signed attestation report, placed in guest
//!    memory, carrying the launch measurement.
//!
//! # Example
//!
//! ```
//! use sevf_psp::Psp;
//! use sevf_sim::CostModel;
//! use sevf_mem::GuestMemory;
//! use sevf_sim::cost::SevGeneration;
//!
//! let mut psp = Psp::new(CostModel::calibrated(), 1);
//! let start = psp.launch_start(SevGeneration::SevSnp)?;
//! let mut mem = GuestMemory::new_sev(1 << 20, start.memory_key, SevGeneration::SevSnp);
//! psp.launch_update_data(start.guest, &mut mem, 0, 4096)?;
//! let finish = psp.launch_finish(start.guest)?;
//! assert_eq!(finish.measurement.len(), 48);
//! # Ok::<(), sevf_psp::PspError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod launch;
mod measurement;
mod report;
mod template;

pub use error::PspError;
pub use launch::{CommandRecord, FinishOutcome, GuestHandle, LaunchOutcome, Psp, PspWork};
pub use measurement::{
    measure_region, paged_measure, IncrementalChain, MeasurementChain, PageDigestCache, PageRef,
    PageType,
};
pub use report::{AmdRootRegistry, AttestationReport, ChipIdentity, GuestPolicy};
pub use template::TemplateKey;
