//! The PSP command interface and launch state machine.

use std::collections::HashMap;

use sevf_crypto::sha256;
use sevf_mem::GuestMemory;
use sevf_sim::cost::SevGeneration;
use sevf_sim::{CostModel, Nanos};

use crate::error::PspError;
use crate::measurement::MeasurementChain;
use crate::report::{AttestationReport, ChipIdentity, GuestPolicy};

/// Opaque handle to a guest launch context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuestHandle(u64);

/// The virtual-time cost of one PSP command. All PSP work serializes on the
/// single PSP core — callers must schedule these durations on the PSP
/// resource in concurrency experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PspWork {
    /// Time the PSP core is busy executing the command.
    pub duration: Nanos,
}

/// One executed PSP command, as recorded in the command ledger: which
/// mailbox command ran, how long the PSP core was busy, and the firmware
/// epoch it ran in. The ledger is the ground truth the observability
/// layer checks span trees against — the sum of its durations is exactly
/// [`Psp::total_busy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Mailbox command name (`"LAUNCH_START"`, `"SNP_GUEST_REQUEST"`, ...).
    pub name: &'static str,
    /// Time the PSP core was busy executing it.
    pub duration: Nanos,
    /// Firmware epoch the command executed in.
    pub epoch: u64,
}

/// Result of `LAUNCH_START`.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Handle for subsequent launch commands.
    pub guest: GuestHandle,
    /// The guest's new memory-encryption key. On hardware this never leaves
    /// the PSP; here it is handed to the [`GuestMemory`] model, which plays
    /// the part of the memory controller.
    pub memory_key: [u8; 16],
    /// PSP time consumed.
    pub work: PspWork,
}

/// Result of `LAUNCH_FINISH`.
#[derive(Debug, Clone)]
pub struct FinishOutcome {
    /// The frozen launch measurement.
    pub measurement: [u8; 48],
    /// PSP time consumed.
    pub work: PspWork,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaunchState {
    Updating,
    Finished,
}

impl LaunchState {
    fn name(self) -> &'static str {
        match self {
            LaunchState::Updating => "updating",
            LaunchState::Finished => "finished",
        }
    }
}

#[derive(Debug)]
struct GuestContext {
    policy: GuestPolicy,
    state: LaunchState,
    chain: MeasurementChain,
    measurement: Option<[u8; 48]>,
    memory_key: [u8; 16],
}

/// The Platform Security Processor.
///
/// One `Psp` per physical machine: a single instance is shared by all
/// concurrently launching guests, and its single core is the contended
/// resource of Fig. 12.
#[derive(Debug)]
pub struct Psp {
    cost: CostModel,
    chip: ChipIdentity,
    guests: HashMap<u64, GuestContext>,
    next_handle: u64,
    key_counter: u64,
    firmware_epoch: u64,
    ledger: Vec<CommandRecord>,
    /// Total PSP-busy time issued so far (observability for experiments).
    pub total_busy: Nanos,
}

impl Psp {
    /// Creates a PSP with the given cost model and machine seed.
    pub fn new(cost: CostModel, machine_seed: u64) -> Self {
        Psp {
            cost,
            chip: ChipIdentity::from_seed(&machine_seed.to_le_bytes()),
            guests: HashMap::new(),
            next_handle: 1,
            key_counter: 0,
            firmware_epoch: 0,
            ledger: Vec::new(),
            total_busy: Nanos::ZERO,
        }
    }

    /// The chip identity (register it with an `AmdRootRegistry` so guest
    /// owners can verify this machine's reports).
    pub fn chip(&self) -> &ChipIdentity {
        &self.chip
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// How many firmware resets this PSP has been through. Guest handles
    /// issued in an earlier epoch are dead.
    pub fn firmware_epoch(&self) -> u64 {
        self.firmware_epoch
    }

    /// The command ledger: every command this PSP has executed, in issue
    /// order. Survives firmware resets (it is the host's log, not PSP
    /// volatile state); the `SEV_PLATFORM_INIT` entry a reset charges is
    /// recorded in the *new* epoch.
    pub fn ledger(&self) -> &[CommandRecord] {
        &self.ledger
    }

    /// Firmware reset: the PSP reboots and loses **all** volatile state —
    /// every guest launch context (in-flight or finalized) is destroyed, so
    /// old handles now fail with [`PspError::UnknownGuest`] and shared-key
    /// template launches must re-measure from scratch (the §6.2 caveat
    /// exercised under failure). Chip identity and endorsement keys live in
    /// fuses and survive. The returned work models `SEV_PLATFORM_INIT` after
    /// the reboot.
    pub fn firmware_reset(&mut self) -> PspWork {
        self.guests.clear();
        self.firmware_epoch += 1;
        let duration = self.cost.psp_firmware_reset + self.cost.psp_cmd_dispatch;
        self.charge("SEV_PLATFORM_INIT", duration)
    }

    fn charge(&mut self, name: &'static str, duration: Nanos) -> PspWork {
        self.total_busy += duration;
        self.ledger.push(CommandRecord {
            name,
            duration,
            epoch: self.firmware_epoch,
        });
        PspWork { duration }
    }

    fn context(&mut self, guest: GuestHandle) -> Result<&mut GuestContext, PspError> {
        self.guests
            .get_mut(&guest.0)
            .ok_or(PspError::UnknownGuest { guest: guest.0 })
    }

    /// `LAUNCH_START`: allocates a guest context and memory-encryption key.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid generations; returns `Result` for
    /// forward compatibility with policy validation.
    pub fn launch_start(&mut self, generation: SevGeneration) -> Result<LaunchOutcome, PspError> {
        self.key_counter += 1;
        let mut seed = b"sevf-vek".to_vec();
        seed.extend_from_slice(&self.chip.chip_id);
        seed.extend_from_slice(&self.key_counter.to_le_bytes());
        let digest = sha256(&seed);
        let mut memory_key = [0u8; 16];
        memory_key.copy_from_slice(&digest[..16]);

        let handle = self.next_handle;
        self.next_handle += 1;
        self.guests.insert(
            handle,
            GuestContext {
                policy: GuestPolicy::for_generation(generation),
                state: LaunchState::Updating,
                chain: MeasurementChain::new(),
                measurement: None,
                memory_key,
            },
        );
        let duration = self.cost.psp_launch_start + self.cost.psp_cmd_dispatch;
        Ok(LaunchOutcome {
            guest: GuestHandle(handle),
            memory_key,
            work: self.charge("LAUNCH_START", duration),
        })
    }

    /// Shared-key template launch — the PSP-bottleneck mitigation the paper
    /// sketches as future work (§6.2: "allowing multiple VMs to share
    /// encryption keys", cf. the shadow-enclave discussion in §8). The new
    /// guest reuses a *finalized* template's memory-encryption key and
    /// launch measurement, skipping key generation, every
    /// `LAUNCH_UPDATE_DATA`, and `LAUNCH_FINISH`.
    ///
    /// Trust-model caveat (the paper's, §8): all guests sharing a key must
    /// belong to the same owner — identical plaintext at identical guest
    /// addresses now has identical ciphertext across those VMs.
    ///
    /// # Errors
    ///
    /// [`PspError::NotLaunched`] if the template has not executed
    /// `LAUNCH_FINISH`, [`PspError::UnknownGuest`] for a bad handle.
    pub fn launch_start_shared(
        &mut self,
        template: GuestHandle,
    ) -> Result<LaunchOutcome, PspError> {
        let ctx = self.context(template)?;
        let (Some(measurement), key) = (ctx.measurement, ctx.memory_key) else {
            return Err(PspError::NotLaunched);
        };
        let policy = ctx.policy;
        let handle = self.next_handle;
        self.next_handle += 1;
        self.guests.insert(
            handle,
            GuestContext {
                policy,
                state: LaunchState::Finished,
                chain: MeasurementChain::new(),
                measurement: Some(measurement),
                memory_key: key,
            },
        );
        // One mailbox round plus a context copy — no key derivation, no
        // page measurement.
        let duration = self.cost.psp_cmd_dispatch + Nanos::from_micros(200);
        Ok(LaunchOutcome {
            guest: GuestHandle(handle),
            memory_key: key,
            work: self.charge("LAUNCH_START(shared)", duration),
        })
    }

    /// `LAUNCH_UPDATE_DATA`: measures and encrypts `[addr, addr+len)` of
    /// guest memory (page granularity; a partial final page is zero-padded
    /// into the measurement, as [`crate::measurement::measure_region`]).
    ///
    /// # Errors
    ///
    /// * [`PspError::InvalidState`] after `LAUNCH_FINISH`.
    /// * [`PspError::Memory`] for bad ranges.
    pub fn launch_update_data(
        &mut self,
        guest: GuestHandle,
        mem: &mut GuestMemory,
        addr: u64,
        len: u64,
    ) -> Result<PspWork, PspError> {
        let ctx = self.context(guest)?;
        if ctx.state != LaunchState::Updating {
            return Err(PspError::InvalidState {
                command: "LAUNCH_UPDATE_DATA",
                state: ctx.state.name(),
            });
        }
        let plaintext = mem.pre_encrypt(addr, len)?;
        for (i, page) in plaintext.chunks(4096).enumerate() {
            ctx.chain.add_page(addr + i as u64 * 4096, page);
        }
        let duration = self.cost.psp_pre_encrypt_bytes(plaintext.len() as u64);
        Ok(self.charge("LAUNCH_UPDATE_DATA", duration))
    }

    /// `LAUNCH_UPDATE_VMSA`: encrypts and measures the initial register
    /// state of `vcpus` virtual CPUs (SEV-ES and SEV-SNP only, §2.2).
    ///
    /// # Errors
    ///
    /// * [`PspError::VmsaNotSupported`] for plain-SEV guests.
    /// * [`PspError::InvalidState`] after `LAUNCH_FINISH`.
    pub fn launch_update_vmsa(
        &mut self,
        guest: GuestHandle,
        vcpus: u64,
        initial_state: &[u8; 4096],
    ) -> Result<PspWork, PspError> {
        let ctx = self.context(guest)?;
        if ctx.state != LaunchState::Updating {
            return Err(PspError::InvalidState {
                command: "LAUNCH_UPDATE_VMSA",
                state: ctx.state.name(),
            });
        }
        if !ctx.policy.generation.encrypts_vmsa() {
            return Err(PspError::VmsaNotSupported);
        }
        for vcpu in 0..vcpus {
            ctx.chain.add_vmsa(vcpu, initial_state);
        }
        let duration = self.cost.psp_update_vmsas(vcpus);
        Ok(self.charge("LAUNCH_UPDATE_VMSA", duration))
    }

    /// SNP RMP initialization for the guest's memory: PSP-mediated
    /// page-state setup proportional to guest memory size. This is the
    /// dominant serialized cost behind the Fig. 12 slope.
    ///
    /// # Errors
    ///
    /// [`PspError::UnknownGuest`] for a bad handle.
    pub fn rmp_init(&mut self, guest: GuestHandle, mem: &GuestMemory) -> Result<PspWork, PspError> {
        let ctx = self.context(guest)?;
        let duration = if ctx.policy.generation.has_rmp() {
            self.cost.psp_rmp_init(mem.size())
        } else {
            Nanos::ZERO
        };
        Ok(self.charge("RMP_INIT", duration))
    }

    /// `LAUNCH_FINISH`: freezes the measurement; later update commands fail.
    ///
    /// # Errors
    ///
    /// [`PspError::InvalidState`] if already finished.
    pub fn launch_finish(&mut self, guest: GuestHandle) -> Result<FinishOutcome, PspError> {
        let ctx = self.context(guest)?;
        if ctx.state != LaunchState::Updating {
            return Err(PspError::InvalidState {
                command: "LAUNCH_FINISH",
                state: ctx.state.name(),
            });
        }
        ctx.state = LaunchState::Finished;
        let measurement = ctx.chain.finalize();
        ctx.measurement = Some(measurement);
        let duration = self.cost.psp_launch_finish + self.cost.psp_cmd_dispatch;
        Ok(FinishOutcome {
            measurement,
            work: self.charge("LAUNCH_FINISH", duration),
        })
    }

    /// `SNP_GUEST_REQUEST`: produces a signed attestation report carrying
    /// the launch measurement and 64 bytes of guest-chosen `report_data`
    /// (§2.4 step 5/6 — the PSP writes it straight into encrypted guest
    /// memory; our caller does that placement).
    ///
    /// # Errors
    ///
    /// [`PspError::NotLaunched`] before `LAUNCH_FINISH`.
    pub fn guest_report(
        &mut self,
        guest: GuestHandle,
        report_data: [u8; 64],
    ) -> Result<(AttestationReport, PspWork), PspError> {
        let duration = self.cost.psp_report + self.cost.psp_cmd_dispatch;
        let chip_id = self.chip.chip_id;
        let ctx = self.context(guest)?;
        let Some(measurement) = ctx.measurement else {
            return Err(PspError::NotLaunched);
        };
        let mut report = AttestationReport {
            version: 2,
            policy: ctx.policy,
            measurement,
            report_data,
            chip_id,
            signature: [0u8; 48],
        };
        report.signature = self.chip.sign(&report.body_bytes());
        Ok((report, self.charge("SNP_GUEST_REQUEST", duration)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AmdRootRegistry;

    fn setup() -> (Psp, GuestHandle, GuestMemory) {
        let mut psp = Psp::new(CostModel::calibrated(), 7);
        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let mem = GuestMemory::new_sev(1 << 22, start.memory_key, SevGeneration::SevSnp);
        (psp, start.guest, mem)
    }

    #[test]
    fn full_launch_flow() {
        let (mut psp, guest, mut mem) = setup();
        mem.host_write(0, b"boot verifier code").unwrap();
        psp.launch_update_data(guest, &mut mem, 0, 4096).unwrap();
        psp.launch_update_vmsa(guest, 1, &[0u8; 4096]).unwrap();
        let finish = psp.launch_finish(guest).unwrap();
        assert_ne!(finish.measurement, [0u8; 48]);
        let (report, _) = psp.guest_report(guest, [1u8; 64]).unwrap();
        assert_eq!(report.measurement, finish.measurement);
    }

    #[test]
    fn update_after_finish_rejected() {
        let (mut psp, guest, mut mem) = setup();
        psp.launch_finish(guest).unwrap();
        assert!(matches!(
            psp.launch_update_data(guest, &mut mem, 0, 4096),
            Err(PspError::InvalidState { .. })
        ));
        assert!(matches!(
            psp.launch_finish(guest),
            Err(PspError::InvalidState { .. })
        ));
    }

    #[test]
    fn report_before_finish_rejected() {
        let (mut psp, guest, _mem) = setup();
        assert!(matches!(
            psp.guest_report(guest, [0u8; 64]),
            Err(PspError::NotLaunched)
        ));
    }

    #[test]
    fn measurement_reflects_content() {
        let (mut psp, guest, mut mem) = setup();
        mem.host_write(0, b"GOOD").unwrap();
        psp.launch_update_data(guest, &mut mem, 0, 4096).unwrap();
        let a = psp.launch_finish(guest).unwrap().measurement;

        let (mut psp2, guest2, mut mem2) = {
            let mut p = Psp::new(CostModel::calibrated(), 7);
            let s = p.launch_start(SevGeneration::SevSnp).unwrap();
            let m = GuestMemory::new_sev(1 << 22, s.memory_key, SevGeneration::SevSnp);
            (p, s.guest, m)
        };
        mem2.host_write(0, b"EVIL").unwrap();
        psp2.launch_update_data(guest2, &mut mem2, 0, 4096).unwrap();
        let b = psp2.launch_finish(guest2).unwrap().measurement;
        assert_ne!(a, b);
    }

    #[test]
    fn reports_verify_through_registry() {
        let (mut psp, guest, _mem) = setup();
        psp.launch_finish(guest).unwrap();
        let (report, _) = psp.guest_report(guest, [9u8; 64]).unwrap();
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        assert!(registry.verify(&report));
    }

    #[test]
    fn vmsa_requires_es_or_snp() {
        let mut psp = Psp::new(CostModel::calibrated(), 7);
        let start = psp.launch_start(SevGeneration::Sev).unwrap();
        assert!(matches!(
            psp.launch_update_vmsa(start.guest, 1, &[0u8; 4096]),
            Err(PspError::VmsaNotSupported)
        ));
    }

    #[test]
    fn keys_are_unique_per_guest() {
        let mut psp = Psp::new(CostModel::calibrated(), 7);
        let a = psp.launch_start(SevGeneration::SevSnp).unwrap();
        let b = psp.launch_start(SevGeneration::SevSnp).unwrap();
        assert_ne!(a.memory_key, b.memory_key);
        assert_ne!(a.guest, b.guest);
    }

    #[test]
    fn costs_accumulate_and_scale_with_bytes() {
        let (mut psp, guest, mut mem) = setup();
        let small = psp
            .launch_update_data(guest, &mut mem, 0, 4096)
            .unwrap()
            .duration;
        let large = psp
            .launch_update_data(guest, &mut mem, 0x10000, 64 * 4096)
            .unwrap()
            .duration;
        assert!(large > small.scale(32));
        assert!(psp.total_busy >= small + large);
    }

    #[test]
    fn rmp_init_only_charged_for_snp() {
        let (mut psp, guest, mem) = setup();
        assert!(psp.rmp_init(guest, &mem).unwrap().duration > Nanos::ZERO);
        let start = psp.launch_start(SevGeneration::Sev).unwrap();
        let mem2 = GuestMemory::new_sev(1 << 22, start.memory_key, SevGeneration::Sev);
        assert_eq!(
            psp.rmp_init(start.guest, &mem2).unwrap().duration,
            Nanos::ZERO
        );
    }

    #[test]
    fn firmware_reset_drops_contexts_and_bumps_epoch() {
        let (mut psp, guest, mut mem) = setup();
        psp.launch_finish(guest).unwrap();
        assert_eq!(psp.firmware_epoch(), 0);

        let work = psp.firmware_reset();
        assert!(work.duration > Nanos::ZERO);
        assert_eq!(psp.firmware_epoch(), 1);

        // The finalized context is gone: reports and template launches from
        // the stale handle fail with UnknownGuest.
        assert!(matches!(
            psp.guest_report(guest, [0u8; 64]),
            Err(PspError::UnknownGuest { .. })
        ));
        assert!(matches!(
            psp.launch_start_shared(guest),
            Err(PspError::UnknownGuest { .. })
        ));
        assert!(matches!(
            psp.launch_update_data(guest, &mut mem, 0, 4096),
            Err(PspError::UnknownGuest { .. })
        ));

        // The PSP still works after re-init: a fresh launch succeeds.
        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        psp.launch_finish(start.guest).unwrap();
    }

    #[test]
    fn chip_identity_survives_firmware_reset() {
        let (mut psp, guest, _mem) = setup();
        psp.launch_finish(guest).unwrap();
        let chip_before = psp.chip().clone();
        psp.firmware_reset();

        let start = psp.launch_start(SevGeneration::SevSnp).unwrap();
        psp.launch_finish(start.guest).unwrap();
        let (report, _) = psp.guest_report(start.guest, [3u8; 64]).unwrap();
        let mut registry = AmdRootRegistry::new();
        registry.register(chip_before);
        assert!(registry.verify(&report), "fused identity must persist");
    }

    #[test]
    fn ledger_records_every_command_and_sums_to_total_busy() {
        let (mut psp, guest, mut mem) = setup();
        mem.host_write(0, b"payload").unwrap();
        psp.launch_update_data(guest, &mut mem, 0, 4096).unwrap();
        psp.launch_update_vmsa(guest, 2, &[0u8; 4096]).unwrap();
        psp.rmp_init(guest, &mem).unwrap();
        psp.launch_finish(guest).unwrap();
        psp.guest_report(guest, [4u8; 64]).unwrap();
        psp.firmware_reset();

        let names: Vec<&str> = psp.ledger().iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "LAUNCH_START",
                "LAUNCH_UPDATE_DATA",
                "LAUNCH_UPDATE_VMSA",
                "RMP_INIT",
                "LAUNCH_FINISH",
                "SNP_GUEST_REQUEST",
                "SEV_PLATFORM_INIT",
            ]
        );
        let sum: Nanos = psp.ledger().iter().map(|c| c.duration).sum();
        assert_eq!(sum, psp.total_busy, "ledger is the total_busy breakdown");
        // The reset's PLATFORM_INIT is logged in the epoch it creates.
        assert_eq!(psp.ledger().last().unwrap().epoch, 1);
        assert!(psp.ledger()[..6].iter().all(|c| c.epoch == 0));
    }

    #[test]
    fn unknown_guest_rejected() {
        let mut psp = Psp::new(CostModel::calibrated(), 7);
        assert!(matches!(
            psp.launch_finish(GuestHandle(99)),
            Err(PspError::UnknownGuest { .. })
        ));
    }
}
