//! The SEV-SNP launch digest.
//!
//! Each `LAUNCH_UPDATE_DATA` folds one 4 KiB page into a running SHA-384
//! chain together with its guest-physical address and page type, mirroring
//! the shape of the SNP ABI's launch-digest construction:
//!
//! ```text
//! digest' = SHA-384(digest || page_contents || gpa_le64 || page_type)
//! ```
//!
//! The same chain is computed out-of-band by the guest owner's
//! expected-measurement tool (`sevf-attest`), which is what lets remote
//! attestation detect a host that pre-encrypted different bytes (§2.6,
//! attack 2) or a tampered boot verifier (attack 3).

use sevf_crypto::Sha384;

/// Page types distinguished by the launch digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageType {
    /// Normal measured data page.
    Normal,
    /// An encrypted vCPU state save area.
    Vmsa,
}

impl PageType {
    fn tag(self) -> u8 {
        match self {
            PageType::Normal => 0x01,
            PageType::Vmsa => 0x02,
        }
    }
}

/// An incrementally built launch measurement.
///
/// # Example
///
/// ```
/// use sevf_psp::MeasurementChain;
///
/// let mut chain = MeasurementChain::new();
/// chain.add_page(0x1000, &[0u8; 4096]);
/// let digest = chain.finalize();
/// assert_eq!(digest.len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementChain {
    digest: [u8; 48],
    pages: u64,
}

impl Default for MeasurementChain {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementChain {
    /// Starts an empty chain (all-zero digest, as before any update).
    pub fn new() -> Self {
        MeasurementChain {
            digest: [0u8; 48],
            pages: 0,
        }
    }

    /// Folds a measured data page into the chain.
    ///
    /// # Panics
    ///
    /// Panics if `contents` is not exactly 4096 bytes.
    pub fn add_page(&mut self, gpa: u64, contents: &[u8]) {
        self.add_typed(gpa, contents, PageType::Normal);
    }

    /// Folds a VMSA page into the chain.
    pub fn add_vmsa(&mut self, vcpu_index: u64, vmsa: &[u8; 4096]) {
        // VMSAs are keyed by vCPU index rather than GPA.
        self.add_typed(vcpu_index, vmsa, PageType::Vmsa);
    }

    fn add_typed(&mut self, gpa: u64, contents: &[u8], page_type: PageType) {
        assert_eq!(
            contents.len(),
            4096,
            "launch digest operates on whole 4 KiB pages"
        );
        let mut hasher = Sha384::new();
        hasher.update(&self.digest);
        hasher.update(contents);
        hasher.update(&gpa.to_le_bytes());
        hasher.update(&[page_type.tag()]);
        self.digest = hasher.finalize();
        self.pages += 1;
    }

    /// Number of pages folded in so far.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// The current digest value.
    pub fn finalize(&self) -> [u8; 48] {
        self.digest
    }
}

/// Convenience: measures a byte region as consecutive pages starting at
/// `base_gpa` (zero-padding the final partial page), exactly as
/// `LAUNCH_UPDATE_DATA` over that region would.
pub fn measure_region(chain: &mut MeasurementChain, base_gpa: u64, data: &[u8]) {
    for (i, page) in data.chunks(4096).enumerate() {
        if page.len() == 4096 {
            chain.add_page(base_gpa + i as u64 * 4096, page);
        } else {
            let mut padded = [0u8; 4096];
            padded[..page.len()].copy_from_slice(page);
            chain.add_page(base_gpa + i as u64 * 4096, &padded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = MeasurementChain::new();
        let mut b = MeasurementChain::new();
        a.add_page(0, &[1u8; 4096]);
        b.add_page(0, &[1u8; 4096]);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn order_matters() {
        let mut a = MeasurementChain::new();
        a.add_page(0, &[1u8; 4096]);
        a.add_page(4096, &[2u8; 4096]);
        let mut b = MeasurementChain::new();
        b.add_page(4096, &[2u8; 4096]);
        b.add_page(0, &[1u8; 4096]);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn gpa_matters() {
        let mut a = MeasurementChain::new();
        a.add_page(0x1000, &[7u8; 4096]);
        let mut b = MeasurementChain::new();
        b.add_page(0x2000, &[7u8; 4096]);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn page_type_matters() {
        let page = [3u8; 4096];
        let mut a = MeasurementChain::new();
        a.add_page(0, &page);
        let mut b = MeasurementChain::new();
        b.add_vmsa(0, &page);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn region_padding_is_stable() {
        let mut a = MeasurementChain::new();
        measure_region(&mut a, 0, &[9u8; 5000]);
        assert_eq!(a.page_count(), 2);
        let mut b = MeasurementChain::new();
        let mut padded = vec![9u8; 5000];
        padded.resize(8192, 0);
        measure_region(&mut b, 0, &padded);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut page = [0u8; 4096];
        let mut a = MeasurementChain::new();
        a.add_page(0, &page);
        page[4095] ^= 0x80;
        let mut b = MeasurementChain::new();
        b.add_page(0, &page);
        assert_ne!(a.finalize(), b.finalize());
    }
}
