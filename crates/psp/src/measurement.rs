//! The SEV-SNP launch digest.
//!
//! Each `LAUNCH_UPDATE_DATA` folds one 4 KiB page into a running SHA-384
//! chain together with its guest-physical address and page type, mirroring
//! the shape of the SNP ABI's launch-digest construction:
//!
//! ```text
//! digest' = SHA-384(digest || page_contents || gpa_le64 || page_type)
//! ```
//!
//! The same chain is computed out-of-band by the guest owner's
//! expected-measurement tool (`sevf-attest`), which is what lets remote
//! attestation detect a host that pre-encrypted different bytes (§2.6,
//! attack 2) or a tampered boot verifier (attack 3).
//!
//! # The fast paths
//!
//! Measurement dominates real CPU time in the reproduction (it is the one
//! functional operation proportional to guest-image bytes), so this module
//! also carries the raw-speed machinery:
//!
//! * [`IncrementalChain`] — caches the chain's prefix digests so a §6.2
//!   template hit whose image differs in a few pages re-hashes only from the
//!   first dirtied page onward. Bit-exact with [`MeasurementChain`].
//! * [`PagedMeasurement`] + [`PageDigestCache`] — a two-level digest
//!   (per-page digests folded by a cheap 96-byte chain) whose page digests
//!   are content-addressed and therefore shared across kernel configs that
//!   place the same bytes at the same address. Page-digest misses are hashed
//!   through the 4-lane multi-buffer SHA-384 ([`sevf_crypto::sha384_batch`]).

use std::collections::HashMap;

use sevf_crypto::{sha384_batch, Sha384};

/// Page types distinguished by the launch digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageType {
    /// Normal measured data page.
    Normal,
    /// An encrypted vCPU state save area.
    Vmsa,
}

impl PageType {
    fn tag(self) -> u8 {
        match self {
            PageType::Normal => 0x01,
            PageType::Vmsa => 0x02,
        }
    }
}

/// An incrementally built launch measurement.
///
/// # Example
///
/// ```
/// use sevf_psp::MeasurementChain;
///
/// let mut chain = MeasurementChain::new();
/// chain.add_page(0x1000, &[0u8; 4096]);
/// let digest = chain.finalize();
/// assert_eq!(digest.len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementChain {
    digest: [u8; 48],
    pages: u64,
}

impl Default for MeasurementChain {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementChain {
    /// Starts an empty chain (all-zero digest, as before any update).
    pub fn new() -> Self {
        MeasurementChain {
            digest: [0u8; 48],
            pages: 0,
        }
    }

    /// Folds a measured data page into the chain.
    ///
    /// # Panics
    ///
    /// Panics if `contents` is not exactly 4096 bytes.
    pub fn add_page(&mut self, gpa: u64, contents: &[u8]) {
        self.add_typed(gpa, contents, PageType::Normal);
    }

    /// Folds a VMSA page into the chain.
    pub fn add_vmsa(&mut self, vcpu_index: u64, vmsa: &[u8; 4096]) {
        // VMSAs are keyed by vCPU index rather than GPA.
        self.add_typed(vcpu_index, vmsa, PageType::Vmsa);
    }

    fn add_typed(&mut self, gpa: u64, contents: &[u8], page_type: PageType) {
        assert_eq!(
            contents.len(),
            4096,
            "launch digest operates on whole 4 KiB pages"
        );
        self.digest = fold_page(&self.digest, gpa, contents, page_type);
        self.pages += 1;
    }

    /// Number of pages folded in so far.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// The current digest value.
    pub fn finalize(&self) -> [u8; 48] {
        self.digest
    }
}

/// Convenience: measures a byte region as consecutive pages starting at
/// `base_gpa` (zero-padding the final partial page), exactly as
/// `LAUNCH_UPDATE_DATA` over that region would.
pub fn measure_region(chain: &mut MeasurementChain, base_gpa: u64, data: &[u8]) {
    for (i, page) in data.chunks(4096).enumerate() {
        if page.len() == 4096 {
            chain.add_page(base_gpa + i as u64 * 4096, page);
        } else {
            let mut padded = [0u8; 4096];
            padded[..page.len()].copy_from_slice(page);
            chain.add_page(base_gpa + i as u64 * 4096, &padded);
        }
    }
}

/// One chain step: `SHA-384(digest || page || gpa_le64 || type_tag)`.
fn fold_page(digest: &[u8; 48], gpa: u64, contents: &[u8], page_type: PageType) -> [u8; 48] {
    let mut hasher = Sha384::new();
    hasher.update(digest);
    hasher.update(contents);
    hasher.update(&gpa.to_le_bytes());
    hasher.update(&[page_type.tag()]);
    hasher.finalize()
}

/// A borrowed 4 KiB page scheduled for measurement.
#[derive(Debug, Clone, Copy)]
pub struct PageRef<'a> {
    /// Guest-physical address (or vCPU index for VMSA pages).
    pub gpa: u64,
    /// How the launch digest types the page.
    pub page_type: PageType,
    /// The page contents.
    pub data: &'a [u8; 4096],
}

/// Fast 128-bit non-cryptographic fingerprint of `(gpa, type, contents)`.
///
/// Used only to *detect change* for digest-cache reuse inside the
/// simulation — the measurement itself is always full SHA-384 over whatever
/// the fingerprint check decides must be re-hashed, so a collision could at
/// worst reuse a stale digest in a perf cache, never weaken the modeled
/// attestation. (wyhash-style multiply-mix, two independent lanes.)
fn fingerprint(gpa: u64, page_type: PageType, data: &[u8; 4096]) -> (u64, u64) {
    const M0: u64 = 0xa076_1d64_78bd_642f;
    const M1: u64 = 0xe703_7ed1_a0b4_28db;
    let mut h0 = gpa ^ 0x2d35_8dcc_aa6c_78a5;
    let mut h1 = (page_type.tag() as u64).wrapping_mul(M1) ^ 0x8bb8_4b93_962e_acc9;
    for chunk in data.chunks_exact(16) {
        let a = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
        h0 = (h0 ^ a).wrapping_mul(M0).rotate_left(29);
        h1 = (h1 ^ b).wrapping_mul(M1).rotate_left(31);
        h0 ^= h1.rotate_left(7);
    }
    (
        h0.wrapping_mul(M1) ^ (h0 >> 32),
        h1.wrapping_mul(M0) ^ (h1 >> 29),
    )
}

/// A strict-chain measurement with prefix-digest caching.
///
/// Produces digests **bit-identical** to running [`MeasurementChain`] over
/// the same page sequence, but remembers the digest after every prefix: when
/// the same instance measures a page list again (the §6.2 template-hit path,
/// where a config re-launch dirties only the boot-param and CPUID pages),
/// only the suffix from the first changed page is re-hashed.
///
/// Because the chain is strict — page *i*'s digest folds in everything
/// before it — a dirty page invalidates its whole suffix; that is inherent
/// to the SNP launch-digest construction, not a cache limitation. For
/// cross-config content sharing see [`paged_measure`].
///
/// # Example
///
/// ```
/// use sevf_psp::{IncrementalChain, MeasurementChain, PageRef, PageType};
///
/// let pages = [[1u8; 4096], [2u8; 4096]];
/// let refs: Vec<PageRef> = pages
///     .iter()
///     .enumerate()
///     .map(|(i, p)| PageRef { gpa: i as u64 * 4096, page_type: PageType::Normal, data: p })
///     .collect();
/// let mut inc = IncrementalChain::new();
/// let d = inc.measure(&refs);
///
/// let mut full = MeasurementChain::new();
/// for r in &refs {
///     full.add_page(r.gpa, r.data);
/// }
/// assert_eq!(d, full.finalize());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChain {
    /// `prefix[i]` = chain digest after the first `i` pages.
    prefix: Vec<[u8; 48]>,
    /// Fingerprint of page `i` from the last measurement.
    fps: Vec<(u64, u64)>,
    rehashed: u64,
    reused: u64,
}

impl Default for IncrementalChain {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalChain {
    /// A chain with no cached prefixes.
    pub fn new() -> Self {
        IncrementalChain {
            prefix: vec![[0u8; 48]],
            fps: Vec::new(),
            rehashed: 0,
            reused: 0,
        }
    }

    /// Measures `pages`, reusing the longest cached clean prefix. Returns
    /// the same digest a fresh [`MeasurementChain`] over `pages` would.
    pub fn measure(&mut self, pages: &[PageRef<'_>]) -> [u8; 48] {
        let mut keep = 0;
        while keep < pages.len() && keep < self.fps.len() {
            let p = &pages[keep];
            if self.fps[keep] != fingerprint(p.gpa, p.page_type, p.data) {
                break;
            }
            keep += 1;
        }
        self.reused += keep as u64;
        self.fps.truncate(keep);
        self.prefix.truncate(keep + 1);
        let mut digest = self.prefix[keep];
        for p in &pages[keep..] {
            digest = fold_page(&digest, p.gpa, p.data, p.page_type);
            self.fps.push(fingerprint(p.gpa, p.page_type, p.data));
            self.prefix.push(digest);
            self.rehashed += 1;
        }
        digest
    }

    /// Pages actually re-hashed across all measurements.
    pub fn pages_rehashed(&self) -> u64 {
        self.rehashed
    }

    /// Pages skipped via the cached prefix across all measurements.
    pub fn pages_reused(&self) -> u64 {
        self.reused
    }
}

/// Content-addressed cache of per-page digests, shared across kernel
/// configs: two configurations that place the same bytes at the same
/// guest-physical address share one entry.
#[derive(Debug, Clone, Default)]
pub struct PageDigestCache {
    map: HashMap<(u64, u8, u64, u64), [u8; 48]>,
    hits: u64,
    misses: u64,
}

impl PageDigestCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached page digests.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Two-level paged measurement:
///
/// ```text
/// pd_i    = SHA-384(page_i || gpa_le64 || type_tag)     (content-cacheable)
/// digest' = SHA-384(digest || pd_i)                      (96-byte fold)
/// ```
///
/// Unlike the strict chain, the expensive per-page digest `pd_i` depends
/// only on the page itself, so it is cached in [`PageDigestCache`] across
/// measurements *and across kernel configs*; a re-measure with any dirty
/// subset pays full hashing only for the dirty pages plus the cheap fold.
/// Cache misses are hashed four-at-a-time through
/// [`sevf_crypto::sha384_batch`] (all miss messages are the same 4105-byte
/// shape, the multi-buffer fast path).
///
/// The result is deterministic in `pages` alone — cache state never changes
/// the digest, only the work. Note this is a *different* digest scheme from
/// [`MeasurementChain`] (deliberately: the strict chain cannot skip clean
/// pages mid-sequence); it models the template-measurement bookkeeping the
/// control plane keeps, not the PSP's ABI digest.
pub fn paged_measure(pages: &[PageRef<'_>], cache: &mut PageDigestCache) -> [u8; 48] {
    let mut page_digests: Vec<[u8; 48]> = vec![[0u8; 48]; pages.len()];
    let mut miss_idx: Vec<usize> = Vec::new();
    let mut miss_keys: Vec<(u64, u8, u64, u64)> = Vec::new();
    let mut miss_bufs: Vec<Vec<u8>> = Vec::new();
    for (i, p) in pages.iter().enumerate() {
        let (f0, f1) = fingerprint(p.gpa, p.page_type, p.data);
        let key = (p.gpa, p.page_type.tag(), f0, f1);
        if let Some(d) = cache.map.get(&key) {
            cache.hits += 1;
            page_digests[i] = *d;
        } else {
            cache.misses += 1;
            let mut buf = Vec::with_capacity(4096 + 8 + 1);
            buf.extend_from_slice(p.data);
            buf.extend_from_slice(&p.gpa.to_le_bytes());
            buf.push(p.page_type.tag());
            miss_idx.push(i);
            miss_keys.push(key);
            miss_bufs.push(buf);
        }
    }
    let miss_refs: Vec<&[u8]> = miss_bufs.iter().map(|b| b.as_slice()).collect();
    for ((i, key), d) in miss_idx
        .into_iter()
        .zip(miss_keys)
        .zip(sha384_batch(&miss_refs))
    {
        page_digests[i] = d;
        cache.map.insert(key, d);
    }
    let mut digest = [0u8; 48];
    for pd in &page_digests {
        let mut h = Sha384::new();
        h.update(&digest);
        h.update(pd);
        digest = h.finalize();
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = MeasurementChain::new();
        let mut b = MeasurementChain::new();
        a.add_page(0, &[1u8; 4096]);
        b.add_page(0, &[1u8; 4096]);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn order_matters() {
        let mut a = MeasurementChain::new();
        a.add_page(0, &[1u8; 4096]);
        a.add_page(4096, &[2u8; 4096]);
        let mut b = MeasurementChain::new();
        b.add_page(4096, &[2u8; 4096]);
        b.add_page(0, &[1u8; 4096]);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn gpa_matters() {
        let mut a = MeasurementChain::new();
        a.add_page(0x1000, &[7u8; 4096]);
        let mut b = MeasurementChain::new();
        b.add_page(0x2000, &[7u8; 4096]);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn page_type_matters() {
        let page = [3u8; 4096];
        let mut a = MeasurementChain::new();
        a.add_page(0, &page);
        let mut b = MeasurementChain::new();
        b.add_vmsa(0, &page);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn region_padding_is_stable() {
        let mut a = MeasurementChain::new();
        measure_region(&mut a, 0, &[9u8; 5000]);
        assert_eq!(a.page_count(), 2);
        let mut b = MeasurementChain::new();
        let mut padded = vec![9u8; 5000];
        padded.resize(8192, 0);
        measure_region(&mut b, 0, &padded);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut page = [0u8; 4096];
        let mut a = MeasurementChain::new();
        a.add_page(0, &page);
        page[4095] ^= 0x80;
        let mut b = MeasurementChain::new();
        b.add_page(0, &page);
        assert_ne!(a.finalize(), b.finalize());
    }

    /// A deterministic page set with distinct contents, mixed page types.
    fn test_pages(n: usize, salt: u8) -> Vec<([u8; 4096], u64, PageType)> {
        (0..n)
            .map(|i| {
                let mut page = [0u8; 4096];
                for (j, b) in page.iter_mut().enumerate() {
                    *b = (i as u8)
                        .wrapping_mul(37)
                        .wrapping_add(j as u8)
                        .wrapping_add(salt);
                }
                let ty = if i % 5 == 4 {
                    PageType::Vmsa
                } else {
                    PageType::Normal
                };
                (page, i as u64 * 4096, ty)
            })
            .collect()
    }

    fn refs(pages: &[([u8; 4096], u64, PageType)]) -> Vec<PageRef<'_>> {
        pages
            .iter()
            .map(|(data, gpa, ty)| PageRef {
                gpa: *gpa,
                page_type: *ty,
                data,
            })
            .collect()
    }

    fn full_chain(pages: &[([u8; 4096], u64, PageType)]) -> [u8; 48] {
        let mut chain = MeasurementChain::new();
        for (data, gpa, ty) in pages {
            match ty {
                PageType::Normal => chain.add_page(*gpa, data),
                PageType::Vmsa => chain.add_vmsa(*gpa, data),
            }
        }
        chain.finalize()
    }

    #[test]
    fn incremental_equals_full_rehash_for_every_dirty_pattern() {
        const N: usize = 6;
        let base = test_pages(N, 0);
        // Every one of the 2^N dirty subsets, applied to a chain that has
        // already measured the clean sequence.
        for mask in 0u32..(1 << N) {
            let mut inc = IncrementalChain::new();
            assert_eq!(inc.measure(&refs(&base)), full_chain(&base));

            let mut dirtied = base.clone();
            for (i, entry) in dirtied.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    entry.0[17] ^= 0xFF;
                    entry.0[4000] = entry.0[4000].wrapping_add(1);
                }
            }
            let got = inc.measure(&refs(&dirtied));
            assert_eq!(got, full_chain(&dirtied), "mask {mask:06b}");

            // Strict-chain reuse: exactly the clean prefix is skipped.
            let clean_prefix = (0..N).take_while(|i| mask & (1 << i) == 0).count() as u64;
            assert_eq!(
                inc.pages_reused(),
                clean_prefix,
                "mask {mask:06b}: prefix reuse"
            );
        }
    }

    #[test]
    fn incremental_tracks_gpa_and_type_changes_too() {
        let base = test_pages(4, 0);
        let mut inc = IncrementalChain::new();
        inc.measure(&refs(&base));

        // Same bytes, different GPA: must re-hash from that page.
        let mut moved = base.clone();
        moved[2].1 += 4096;
        assert_eq!(inc.measure(&refs(&moved)), full_chain(&moved));

        // Same bytes, different page type: ditto.
        let mut retyped = base.clone();
        retyped[1].2 = PageType::Vmsa;
        assert_eq!(inc.measure(&refs(&retyped)), full_chain(&retyped));

        // Shrunk and grown sequences still match a full re-hash.
        let shorter = &base[..2];
        assert_eq!(inc.measure(&refs(shorter)), full_chain(shorter));
        let longer = test_pages(9, 0);
        assert_eq!(inc.measure(&refs(&longer)), full_chain(&longer));
    }

    #[test]
    fn paged_measure_is_cache_independent_and_deterministic() {
        let pages = test_pages(10, 3);
        let mut cold = PageDigestCache::new();
        let d1 = paged_measure(&refs(&pages), &mut cold);
        assert_eq!(cold.misses(), 10);
        assert_eq!(cold.hits(), 0);

        // Warm re-measure: same digest, all hits, no new entries.
        let d2 = paged_measure(&refs(&pages), &mut cold);
        assert_eq!(d1, d2);
        assert_eq!(cold.hits(), 10);
        assert_eq!(cold.len(), 10);

        // A different cache instance produces the identical digest.
        let mut other = PageDigestCache::new();
        assert_eq!(paged_measure(&refs(&pages), &mut other), d1);

        // Dirtying one mid-sequence page re-hashes exactly that page.
        let mut dirtied = pages.clone();
        dirtied[5].0[0] ^= 1;
        let d3 = paged_measure(&refs(&dirtied), &mut cold);
        assert_ne!(d3, d1);
        assert_eq!(cold.misses(), 11, "only the dirty page misses");
    }

    #[test]
    fn page_digest_cache_shares_across_configs() {
        // Two "kernel configs" overlapping in 6 of 8 pages: the shared pages
        // are hashed once.
        let a = test_pages(8, 0);
        let mut b = a.clone();
        b[3].0[100] ^= 0x55;
        b[7].0[2000] ^= 0x55;
        let mut cache = PageDigestCache::new();
        let da = paged_measure(&refs(&a), &mut cache);
        let db = paged_measure(&refs(&b), &mut cache);
        assert_ne!(da, db);
        assert_eq!(cache.misses(), 8 + 2);
        assert_eq!(cache.hits(), 6);
    }

    #[test]
    fn paged_measure_matches_scalar_construction() {
        // Pin the two-level construction: pd_i = H(page||gpa||tag), folded
        // by H(prev||pd_i) from zero.
        let pages = test_pages(3, 9);
        let mut cache = PageDigestCache::new();
        let got = paged_measure(&refs(&pages), &mut cache);
        let mut digest = [0u8; 48];
        for (data, gpa, ty) in &pages {
            let mut h = Sha384::new();
            h.update(data);
            h.update(&gpa.to_le_bytes());
            h.update(&[ty.tag()]);
            let pd = h.finalize();
            let mut f = Sha384::new();
            f.update(&digest);
            f.update(&pd);
            digest = f.finalize();
        }
        assert_eq!(got, digest);
    }

    #[test]
    fn paged_measure_order_matters() {
        let pages = test_pages(4, 1);
        let mut rev = pages.clone();
        rev.reverse();
        let mut cache = PageDigestCache::new();
        let fwd = paged_measure(&refs(&pages), &mut cache);
        let bwd = paged_measure(&refs(&rev), &mut cache);
        assert_ne!(fwd, bwd);
        // Reordering hits the page-digest cache for every page.
        assert_eq!(cache.hits(), 4);
    }
}
