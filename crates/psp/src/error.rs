//! PSP command errors.

use std::fmt;

use sevf_mem::MemError;

/// Errors returned by PSP commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PspError {
    /// The referenced guest context does not exist.
    UnknownGuest {
        /// The handle that failed to resolve.
        guest: u64,
    },
    /// A launch command was issued in the wrong state — e.g.
    /// `LAUNCH_UPDATE_DATA` after `LAUNCH_FINISH` (§2.4: finish prevents the
    /// hypervisor from encrypting more memory once a report may exist).
    InvalidState {
        /// The command that was attempted.
        command: &'static str,
        /// The state the guest context was in.
        state: &'static str,
    },
    /// The guest's memory rejected the operation.
    Memory(MemError),
    /// `LAUNCH_UPDATE_VMSA` on a guest whose policy has no encrypted state
    /// (plain SEV).
    VmsaNotSupported,
    /// A report was requested before the launch was finalized.
    NotLaunched,
}

impl fmt::Display for PspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PspError::UnknownGuest { guest } => write!(f, "unknown guest context {guest}"),
            PspError::InvalidState { command, state } => {
                write!(f, "{command} not permitted in launch state {state}")
            }
            PspError::Memory(e) => write!(f, "guest memory error: {e}"),
            PspError::VmsaNotSupported => {
                write!(f, "VMSA encryption requires SEV-ES or SEV-SNP")
            }
            PspError::NotLaunched => write!(f, "attestation requires a finalized launch"),
        }
    }
}

impl std::error::Error for PspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PspError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for PspError {
    fn from(e: MemError) -> Self {
        PspError::Memory(e)
    }
}
