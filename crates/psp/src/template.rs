//! Content-addressed keys for shared-key template launches (§6.2).
//!
//! A template launch reuses the memory key and launch measurement of a
//! previously finalized guest: any launch request whose *expected
//! measurement* matches a finalized template can skip per-VM PSP
//! measurement entirely. The measurement therefore doubles as a
//! content-address — two VM configurations share a template exactly when
//! their launch digests agree — and [`TemplateKey`] is that address as a
//! first-class type, used by the fleet control plane's launch cache.

use std::fmt;

/// A content-addressed template identity: the 48-byte SHA-384 launch
/// measurement of the finalized template guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateKey([u8; 48]);

impl TemplateKey {
    /// Wraps a launch measurement as a cache key.
    pub fn from_measurement(measurement: [u8; 48]) -> Self {
        TemplateKey(measurement)
    }

    /// The underlying measurement bytes.
    pub fn as_bytes(&self) -> &[u8; 48] {
        &self.0
    }

    /// Abbreviated hex form (first 8 bytes) for reports and logs.
    pub fn short_hex(&self) -> String {
        self.0[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl From<[u8; 48]> for TemplateKey {
    fn from(measurement: [u8; 48]) -> Self {
        TemplateKey::from_measurement(measurement)
    }
}

impl fmt::Display for TemplateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template:{}", self.short_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_content_addressed() {
        let a = TemplateKey::from_measurement([7u8; 48]);
        let b = TemplateKey::from_measurement([7u8; 48]);
        let c = TemplateKey::from_measurement([8u8; 48]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.short_hex(), "0707070707070707");
        assert_eq!(format!("{a}"), "template:0707070707070707");
    }
}
