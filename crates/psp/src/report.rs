//! Attestation reports and the chip/root key model.
//!
//! On hardware, each PSP holds a chip-unique ECDSA-P384 key (VCEK) whose
//! public half is certified by AMD's root. We model the same trust
//! relationships with a chip-unique *MAC* key known only to the PSP and to
//! the [`AmdRootRegistry`] (standing in for AMD's key-distribution service):
//! the host can neither forge nor tamper with a report, and any guest owner
//! can verify one through the registry. The substitution is documented in
//! DESIGN.md.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sevf_crypto::hex::to_hex;
use sevf_crypto::{hmac_sha384, sha256, sha384};
use sevf_sim::cost::SevGeneration;

/// The guest policy bound into the launch context and every report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuestPolicy {
    /// Which SEV generation the guest runs under.
    pub generation: SevGeneration,
    /// Whether the host may attach a debugger (always false here, as in the
    /// paper's threat model).
    pub debug_allowed: bool,
}

impl GuestPolicy {
    /// The policy used throughout the paper: SNP, no debug.
    pub fn snp() -> Self {
        GuestPolicy {
            generation: SevGeneration::SevSnp,
            debug_allowed: false,
        }
    }

    /// Policy for an arbitrary generation, no debug.
    pub fn for_generation(generation: SevGeneration) -> Self {
        GuestPolicy {
            generation,
            debug_allowed: false,
        }
    }

    fn encode(&self) -> [u8; 2] {
        let gen_tag = match self.generation {
            SevGeneration::None => 0u8,
            SevGeneration::Sev => 1,
            SevGeneration::SevEs => 2,
            SevGeneration::SevSnp => 3,
        };
        [gen_tag, self.debug_allowed as u8]
    }
}

/// A chip-unique identity: ID plus signing key (held by the PSP).
#[derive(Clone)]
pub struct ChipIdentity {
    /// Public chip identifier (hash of the signing key).
    pub chip_id: [u8; 32],
    signing_key: [u8; 48],
}

impl fmt::Debug for ChipIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChipIdentity({}…)", to_hex(&self.chip_id[..4]))
    }
}

impl ChipIdentity {
    /// Derives a chip identity from seed entropy (manufacturing fuse model).
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut input = b"sevf-chip-key".to_vec();
        input.extend_from_slice(seed);
        let signing_key = sha384(&input);
        let chip_id = sha256(&signing_key);
        ChipIdentity {
            chip_id,
            signing_key,
        }
    }

    /// Signs a report body.
    pub(crate) fn sign(&self, body: &[u8]) -> [u8; 48] {
        hmac_sha384(&self.signing_key, body)
    }
}

/// A signed SEV-SNP attestation report (§2.4 steps 5–8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// Report format version.
    pub version: u32,
    /// Guest policy at launch.
    pub policy: GuestPolicy,
    /// The launch measurement chained by the PSP.
    pub measurement: [u8; 48],
    /// 64 bytes supplied by the guest — here, the guest's ephemeral DH
    /// public key plus a nonce, so secrets can be wrapped to the guest.
    pub report_data: [u8; 64],
    /// Which chip signed the report.
    pub chip_id: [u8; 32],
    /// Signature over everything above.
    pub signature: [u8; 48],
}

impl AttestationReport {
    /// Serializes the signed portion of the report.
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 48 + 64 + 32);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.policy.encode());
        out.extend_from_slice(&self.measurement);
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.chip_id);
        out
    }

    /// Full wire encoding (body || signature), as placed into encrypted
    /// guest memory by the PSP.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.body_bytes();
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a wire encoding produced by [`AttestationReport::to_bytes`].
    ///
    /// Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 4 + 2 + 48 + 64 + 32 + 48 {
            return None;
        }
        let version = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let generation = match bytes[4] {
            0 => SevGeneration::None,
            1 => SevGeneration::Sev,
            2 => SevGeneration::SevEs,
            3 => SevGeneration::SevSnp,
            _ => return None,
        };
        let policy = GuestPolicy {
            generation,
            debug_allowed: bytes[5] != 0,
        };
        Some(AttestationReport {
            version,
            policy,
            measurement: bytes[6..54].try_into().ok()?,
            report_data: bytes[54..118].try_into().ok()?,
            chip_id: bytes[118..150].try_into().ok()?,
            signature: bytes[150..198].try_into().ok()?,
        })
    }
}

/// The guest owner's view of AMD's root of trust: can check that a report
/// was signed by a genuine chip, and tracks chips whose keys have been
/// distrusted (the KDS revocation-list model).
#[derive(Debug, Default, Clone)]
pub struct AmdRootRegistry {
    chips: HashMap<[u8; 32], ChipIdentity>,
    revoked: HashSet<[u8; 32]>,
}

impl AmdRootRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a chip (models AMD's manufacturing-time key escrow).
    pub fn register(&mut self, chip: ChipIdentity) {
        self.chips.insert(chip.chip_id, chip);
    }

    /// Distrusts a chip key. Every report that chip ever signed — past or
    /// future — fails verification from this point on; §6.2's templates
    /// derived under that key must die with it.
    pub fn revoke(&mut self, chip_id: &[u8; 32]) {
        self.revoked.insert(*chip_id);
    }

    /// Whether a chip's key has been revoked.
    pub fn is_revoked(&self, chip_id: &[u8; 32]) -> bool {
        self.revoked.contains(chip_id)
    }

    /// Verifies a report's signature against the chip that claims to have
    /// produced it. Returns `false` for unknown chips, revoked chips, or
    /// bad signatures.
    pub fn verify(&self, report: &AttestationReport) -> bool {
        if self.is_revoked(&report.chip_id) {
            return false;
        }
        let Some(chip) = self.chips.get(&report.chip_id) else {
            return false;
        };
        let expected = chip.sign(&report.body_bytes());
        sevf_crypto::hmac::verify_tag(&expected, &report.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(chip: &ChipIdentity) -> AttestationReport {
        let mut report = AttestationReport {
            version: 2,
            policy: GuestPolicy::snp(),
            measurement: [0xabu8; 48],
            report_data: [0x11u8; 64],
            chip_id: chip.chip_id,
            signature: [0u8; 48],
        };
        report.signature = chip.sign(&report.body_bytes());
        report
    }

    #[test]
    fn roundtrip_wire_encoding() {
        let chip = ChipIdentity::from_seed(b"machine-0");
        let report = sample_report(&chip);
        let parsed = AttestationReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn registry_accepts_genuine_reports() {
        let chip = ChipIdentity::from_seed(b"machine-0");
        let mut registry = AmdRootRegistry::new();
        registry.register(chip.clone());
        assert!(registry.verify(&sample_report(&chip)));
    }

    #[test]
    fn registry_rejects_tampered_measurement() {
        let chip = ChipIdentity::from_seed(b"machine-0");
        let mut registry = AmdRootRegistry::new();
        registry.register(chip.clone());
        let mut report = sample_report(&chip);
        report.measurement[0] ^= 1;
        assert!(!registry.verify(&report));
    }

    #[test]
    fn registry_rejects_unknown_chip() {
        let chip = ChipIdentity::from_seed(b"machine-0");
        let registry = AmdRootRegistry::new();
        assert!(!registry.verify(&sample_report(&chip)));
    }

    #[test]
    fn registry_rejects_cross_chip_forgery() {
        // A report signed by chip A but claiming chip B's identity.
        let a = ChipIdentity::from_seed(b"A");
        let b = ChipIdentity::from_seed(b"B");
        let mut registry = AmdRootRegistry::new();
        registry.register(a.clone());
        registry.register(b.clone());
        let mut report = sample_report(&a);
        report.chip_id = b.chip_id;
        report.signature = a.sign(&report.body_bytes());
        assert!(!registry.verify(&report));
    }

    #[test]
    fn revocation_defeats_previously_valid_reports() {
        let chip = ChipIdentity::from_seed(b"machine-0");
        let mut registry = AmdRootRegistry::new();
        registry.register(chip.clone());
        let report = sample_report(&chip);
        assert!(registry.verify(&report));
        registry.revoke(&chip.chip_id);
        assert!(registry.is_revoked(&chip.chip_id));
        assert!(!registry.verify(&report));
        // Other chips are unaffected.
        let other = ChipIdentity::from_seed(b"machine-1");
        registry.register(other.clone());
        assert!(registry.verify(&sample_report(&other)));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(AttestationReport::from_bytes(&[0u8; 10]).is_none());
        let chip = ChipIdentity::from_seed(b"m");
        let mut bytes = sample_report(&chip).to_bytes();
        bytes[4] = 9; // invalid generation tag
        assert!(AttestationReport::from_bytes(&bytes).is_none());
    }

    #[test]
    fn debug_never_prints_signing_key() {
        let chip = ChipIdentity::from_seed(b"m");
        let repr = format!("{chip:?}");
        assert!(repr.starts_with("ChipIdentity("));
        assert!(repr.len() < 40);
    }
}
