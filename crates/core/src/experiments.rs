//! Drivers that regenerate every table and figure of the paper.
//!
//! Each function returns plain data (the benchmark harness renders and
//! serializes it). All take an [`ExperimentScale`]: [`ExperimentScale::full`]
//! reproduces the paper's exact component sizes and run counts (use a
//! release build), while [`ExperimentScale::quick`] shrinks the functional
//! images 16× so integration tests stay fast — compression ratios and all
//! *relative* results are preserved.

use sevf_codec::Codec;
use sevf_image::kernel::KernelConfig;
use sevf_sim::cost::{CostModel, SevGeneration};
use sevf_sim::rng::Jitter;
use sevf_sim::{Nanos, PhaseKind};
use sevf_vmm::concurrent;
use sevf_vmm::footprint::MemoryFootprint;
use sevf_vmm::{BootPolicy, BootReport, Machine, MicroVm, VmConfig, VmmError};

const MB: u64 = 1024 * 1024;

/// How big to run the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Divide functional image sizes by this factor (1 = paper scale).
    pub kernel_div: u64,
    /// Number of jittered samples per CDF series (paper: 100).
    pub cdf_runs: usize,
    /// Concurrency levels for Fig. 12 (paper: 1–50).
    pub concurrency_levels: Vec<usize>,
    /// Jitter seed, for exact reproducibility.
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper-scale: full-size images, 100 runs, concurrency 1–50.
    pub fn full() -> Self {
        ExperimentScale {
            kernel_div: 1,
            cdf_runs: 100,
            concurrency_levels: vec![1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50],
            seed: 0x5EF0,
        }
    }

    /// Test-scale: 16× smaller images, 20 runs, shallow sweep.
    pub fn quick() -> Self {
        ExperimentScale {
            kernel_div: 16,
            cdf_runs: 20,
            concurrency_levels: vec![1, 5, 10, 20],
            seed: 0x5EF0,
        }
    }

    /// The paper's three kernel configs at this scale.
    pub fn kernels(&self) -> Vec<KernelConfig> {
        KernelConfig::paper_configs()
            .into_iter()
            .map(|k| {
                if self.kernel_div == 1 {
                    k
                } else {
                    k.scaled_down(self.kernel_div)
                }
            })
            .collect()
    }

    fn vm_config(&self, policy: BootPolicy, kernel: KernelConfig) -> VmConfig {
        let mut config = VmConfig::paper_default(policy, kernel);
        config.initrd_size = sevf_image::initrd::FULL_SIZE / self.kernel_div;
        config.mem_size = (256 * MB / self.kernel_div).max(64 * MB);
        if policy == BootPolicy::SeverifastVmlinux {
            config.kernel_codec = Codec::None;
        }
        config
    }

    /// Boots one deterministic (jitter-free) VM of the given shape.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmmError`] from the boot path.
    pub fn boot(
        &self,
        machine: &mut Machine,
        policy: BootPolicy,
        kernel: KernelConfig,
    ) -> Result<BootReport, VmmError> {
        let vm = MicroVm::new(self.vm_config(policy, kernel))?;
        if policy.is_sev() {
            vm.register_expected(machine)?;
        }
        vm.boot(machine)
    }
}

/// Draws `runs` jittered end-to-end samples from a deterministic boot by
/// re-noising each span (the Fig. 9 methodology: same boot, run-to-run
/// variance from the host).
pub fn resample_totals(report: &BootReport, seed: u64, runs: usize) -> Vec<f64> {
    let mut jitter = Jitter::new(seed);
    (0..runs)
        .map(|_| {
            report
                .timeline
                .spans()
                .iter()
                .map(|s| s.duration.as_millis_f64() * jitter.factor())
                .sum()
        })
        .collect()
}

// --------------------------------------------------------------------------
// Fig. 3 — OVMF boot phase breakdown under SEV-SNP
// --------------------------------------------------------------------------

/// One slice of the Fig. 3 stacked bar.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSlice {
    /// Phase label.
    pub label: String,
    /// Duration in ms.
    pub ms: f64,
}

/// Fig. 3: the OVMF SNP boot broken into PI phases plus the boot verifier.
///
/// # Errors
///
/// Propagates boot failures.
pub fn fig3_ovmf_phases(scale: &ExperimentScale) -> Result<Vec<PhaseSlice>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let kernel = scale.kernels().remove(1); // AWS config
    let report = scale.boot(&mut machine, BootPolicy::QemuOvmf, kernel)?;
    let mut slices = Vec::new();
    for phase in [
        PhaseKind::OvmfSec,
        PhaseKind::OvmfPei,
        PhaseKind::OvmfDxe,
        PhaseKind::OvmfBds,
        PhaseKind::BootVerification,
    ] {
        slices.push(PhaseSlice {
            label: phase.label().to_string(),
            ms: report.phase(phase).as_millis_f64(),
        });
    }
    Ok(slices)
}

// --------------------------------------------------------------------------
// Fig. 4 — pre-encryption time vs size
// --------------------------------------------------------------------------

/// A point on the Fig. 4 line: pre-encryption cost of `bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct PreEncryptionPoint {
    /// Annotated component name ("" for sweep points).
    pub label: String,
    /// Component size in bytes.
    pub bytes: u64,
    /// Pre-encryption time in ms.
    pub ms: f64,
}

/// Fig. 4: pre-encryption is linear in size; annotated with the candidate
/// initial-boot-code components from §3.2 (always at paper scale — these
/// are pure cost-model evaluations).
pub fn fig4_preencryption() -> Vec<PreEncryptionPoint> {
    let cost = CostModel::calibrated();
    let mut points = Vec::new();
    let mut size = 4 * 1024u64;
    while size <= 64 * MB {
        points.push(PreEncryptionPoint {
            label: String::new(),
            bytes: size,
            ms: cost.psp_pre_encrypt_bytes(size).as_millis_f64(),
        });
        size *= 2;
    }
    let annotated: [(&str, u64); 6] = [
        ("SEVeriFast boot verifier", 13 * 1024),
        ("OVMF (smallest build)", MB),
        ("Lupine bzImage", (33 * MB) / 10),
        ("compressed initrd", 12 * MB),
        ("Lupine vmlinux", 23 * MB),
        ("Ubuntu vmlinux", 61 * MB),
    ];
    for (label, bytes) in annotated {
        points.push(PreEncryptionPoint {
            label: label.to_string(),
            bytes,
            ms: cost.psp_pre_encrypt_bytes(bytes).as_millis_f64(),
        });
    }
    points
}

// --------------------------------------------------------------------------
// Fig. 5 — measured direct boot step costs per codec
// --------------------------------------------------------------------------

/// One bar of Fig. 5: the cost of measured-direct-booting one component
/// compressed with one codec.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredBootRow {
    /// `kernel:<config>` or `initrd`.
    pub component: String,
    /// Codec used.
    pub codec: Codec,
    /// Size actually transferred/hashed (compressed), bytes.
    pub transferred_bytes: u64,
    /// Copy-to-encrypted time, ms.
    pub copy_ms: f64,
    /// SHA-256 time, ms.
    pub hash_ms: f64,
    /// Decompression time, ms.
    pub decompress_ms: f64,
}

impl MeasuredBootRow {
    /// Total measured-direct-boot cost.
    pub fn total_ms(&self) -> f64 {
        self.copy_ms + self.hash_ms + self.decompress_ms
    }
}

/// Fig. 5: per-codec copy/hash/decompress costs for each kernel and for the
/// initrd. The takeaways the paper draws: LZ4 bzImage beats everything for
/// the kernel; the initrd is best left uncompressed.
pub fn fig5_measured_direct_boot(scale: &ExperimentScale) -> Vec<MeasuredBootRow> {
    let cost = CostModel::calibrated();
    let mut rows = Vec::new();
    for kernel in scale.kernels() {
        let image = kernel.build();
        let raw_len = image.vmlinux().len() as u64;
        for codec in Codec::ALL {
            let transferred = match codec {
                Codec::None => raw_len,
                c => image.bzimage(c).len() as u64,
            };
            rows.push(MeasuredBootRow {
                component: format!("kernel:{}", kernel.name),
                codec,
                transferred_bytes: transferred,
                copy_ms: cost.cpu_copy_to_encrypted(transferred).as_millis_f64(),
                hash_ms: cost.cpu_sha256(transferred).as_millis_f64(),
                decompress_ms: cost.decompress(codec, raw_len).as_millis_f64(),
            });
        }
    }
    let initrd = sevf_image::initrd::build_initrd(sevf_image::initrd::FULL_SIZE / scale.kernel_div);
    let raw_len = initrd.len() as u64;
    for codec in Codec::ALL {
        let transferred = match codec {
            Codec::None => raw_len,
            c => c.compress(&initrd).len() as u64,
        };
        rows.push(MeasuredBootRow {
            component: "initrd".to_string(),
            codec,
            transferred_bytes: transferred,
            copy_ms: cost.cpu_copy_to_encrypted(transferred).as_millis_f64(),
            hash_ms: cost.cpu_sha256(transferred).as_millis_f64(),
            decompress_ms: cost.decompress(codec, raw_len).as_millis_f64(),
        });
    }
    rows
}

// --------------------------------------------------------------------------
// Fig. 7 — boot data structures: pre-encrypt or generate?
// --------------------------------------------------------------------------

/// A row of the Fig. 7 table.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureRow {
    /// Structure name.
    pub name: &'static str,
    /// Its purpose.
    pub purpose: &'static str,
    /// Structure size in bytes (for 1 vCPU where applicable).
    pub struct_bytes: u64,
    /// Size of the code that could generate it in the verifier.
    pub code_bytes: u64,
    /// The decision the §4.2 rule produces.
    pub decision: &'static str,
}

/// Fig. 7: pre-encrypt a structure iff the generating code is larger.
pub fn fig7_structures() -> Vec<StructureRow> {
    use sevf_verifier::binary::code_size;
    let rows = vec![
        StructureRow {
            name: "mptable",
            purpose: "CPU config",
            struct_bytes: sevf_vmm::mptable::table_size(1),
            code_bytes: code_size::MPTABLE_GEN,
            decision: "pre-encrypt",
        },
        StructureRow {
            name: "cmdline",
            purpose: "kernel args",
            struct_bytes: 155,
            code_bytes: 0, // client-supplied; cannot be generated
            decision: "pre-encrypt",
        },
        StructureRow {
            name: "boot_params",
            purpose: "system info",
            struct_bytes: 4096,
            code_bytes: code_size::BOOT_PARAMS_GEN,
            decision: "pre-encrypt",
        },
        StructureRow {
            name: "page tables",
            purpose: "paging in guest",
            struct_bytes: 4096,
            code_bytes: code_size::PAGE_TABLES,
            decision: "generate",
        },
    ];
    rows
}

// --------------------------------------------------------------------------
// Fig. 8 — kernel configurations
// --------------------------------------------------------------------------

/// A row of the Fig. 8 table.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Config name.
    pub config: String,
    /// vmlinux size in bytes.
    pub vmlinux_bytes: u64,
    /// LZ4 bzImage size in bytes.
    pub bzimage_bytes: u64,
}

/// Fig. 8: vmlinux and bzImage sizes for the three configs.
pub fn fig8_kernels(scale: &ExperimentScale) -> Vec<KernelRow> {
    scale
        .kernels()
        .into_iter()
        .map(|k| {
            let image = k.build();
            KernelRow {
                config: k.name.clone(),
                vmlinux_bytes: image.vmlinux().len() as u64,
                bzimage_bytes: image.bzimage(Codec::Lz4).len() as u64,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Fig. 9 — end-to-end CDF, SEVeriFast vs QEMU
// --------------------------------------------------------------------------

/// One CDF series of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSeries {
    /// Policy booted.
    pub policy: BootPolicy,
    /// Kernel config name.
    pub kernel: String,
    /// End-to-end samples in ms (boot + attestation where applicable).
    pub samples_ms: Vec<f64>,
}

impl CdfSeries {
    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
    }
}

/// Fig. 9: serial launches of SEVeriFast and QEMU/OVMF across the three
/// kernels, end-to-end including attestation.
///
/// # Errors
///
/// Propagates boot failures.
pub fn fig9_boot_cdfs(scale: &ExperimentScale) -> Result<Vec<CdfSeries>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let mut series = Vec::new();
    for policy in [BootPolicy::Severifast, BootPolicy::QemuOvmf] {
        for kernel in scale.kernels() {
            let name = kernel.name.clone();
            let report = scale.boot(&mut machine, policy, kernel)?;
            series.push(CdfSeries {
                policy,
                kernel: name,
                samples_ms: resample_totals(&report, scale.seed ^ policy as u64, scale.cdf_runs),
            });
        }
    }
    Ok(series)
}

// --------------------------------------------------------------------------
// Fig. 10 — pre-encryption and firmware/boot-verification breakdown
// --------------------------------------------------------------------------

/// A row of the Fig. 10 table.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Policy booted.
    pub policy: BootPolicy,
    /// Kernel config name.
    pub kernel: String,
    /// Pre-encryption time, ms.
    pub pre_encryption_ms: f64,
    /// Firmware runtime + boot verification, ms.
    pub firmware_ms: f64,
}

/// Fig. 10: where SEVeriFast saves its time relative to QEMU/OVMF.
///
/// # Errors
///
/// Propagates boot failures.
pub fn fig10_breakdown(scale: &ExperimentScale) -> Result<Vec<Fig10Row>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let mut rows = Vec::new();
    for policy in [BootPolicy::QemuOvmf, BootPolicy::Severifast] {
        for kernel in scale.kernels() {
            let name = kernel.name.clone();
            let report = scale.boot(&mut machine, policy, kernel)?;
            rows.push(Fig10Row {
                policy,
                kernel: name,
                pre_encryption_ms: report.pre_encryption().as_millis_f64(),
                firmware_ms: report.firmware_total().as_millis_f64(),
            });
        }
    }
    Ok(rows)
}

// --------------------------------------------------------------------------
// Fig. 11 — stock FC vs SEVeriFast (bzImage and vmlinux) breakdown
// --------------------------------------------------------------------------

/// A stacked bar of Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Policy booted.
    pub policy: BootPolicy,
    /// Kernel config name.
    pub kernel: String,
    /// Time in the VMM, including the SEV launch flow (the paper folds
    /// pre-encryption into its "Firecracker" bar), ms.
    pub vmm_ms: f64,
    /// Boot verification, ms.
    pub verification_ms: f64,
    /// bzImage bootstrap loader, ms.
    pub loader_ms: f64,
    /// Linux boot, ms.
    pub linux_ms: f64,
}

impl Fig11Row {
    /// Total boot time (attestation excluded, as in the figure).
    pub fn total_ms(&self) -> f64 {
        self.vmm_ms + self.verification_ms + self.loader_ms + self.linux_ms
    }
}

/// Fig. 11: the cost SEVeriFast adds over a non-SEV microVM boot.
///
/// # Errors
///
/// Propagates boot failures.
pub fn fig11_breakdown(scale: &ExperimentScale) -> Result<Vec<Fig11Row>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let mut rows = Vec::new();
    for policy in [
        BootPolicy::StockFirecracker,
        BootPolicy::Severifast,
        BootPolicy::SeverifastVmlinux,
    ] {
        for kernel in scale.kernels() {
            let name = kernel.name.clone();
            let report = scale.boot(&mut machine, policy, kernel)?;
            rows.push(Fig11Row {
                policy,
                kernel: name,
                vmm_ms: (report.phase(PhaseKind::VmmSetup) + report.pre_encryption())
                    .as_millis_f64(),
                verification_ms: report.phase(PhaseKind::BootVerification).as_millis_f64(),
                loader_ms: report.phase(PhaseKind::BootstrapLoader).as_millis_f64(),
                linux_ms: report.phase(PhaseKind::LinuxBoot).as_millis_f64(),
            });
        }
    }
    Ok(rows)
}

// --------------------------------------------------------------------------
// Fig. 12 — concurrent launches
// --------------------------------------------------------------------------

/// One point of a Fig. 12 series.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyRow {
    /// Policy booted.
    pub policy: BootPolicy,
    /// Concurrency level.
    pub concurrency: usize,
    /// Mean boot latency, ms (attestation excluded).
    pub mean_ms: f64,
    /// Max boot latency, ms.
    pub max_ms: f64,
}

/// Fig. 12: average boot time of 1–50 concurrent launches, SEV vs non-SEV.
/// SEV grows linearly (PSP serialization); non-SEV stays nearly flat.
///
/// # Errors
///
/// Propagates boot failures.
pub fn fig12_concurrency(scale: &ExperimentScale) -> Result<Vec<ConcurrencyRow>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let mut rows = Vec::new();
    for policy in [BootPolicy::Severifast, BootPolicy::StockFirecracker] {
        let kernel = scale.kernels().remove(1); // AWS config
        let mut report = scale.boot(&mut machine, policy, kernel)?;
        // Boot time, not end-to-end: strip attestation before replaying.
        report.timeline = report.timeline.filtered(|p| p.counts_as_boot());
        for point in concurrent::sweep(&report, &scale.concurrency_levels) {
            rows.push(ConcurrencyRow {
                policy,
                concurrency: point.concurrency,
                mean_ms: point.summary.mean,
                max_ms: point.summary.max,
            });
        }
    }
    Ok(rows)
}

/// Future work (§6.2/§8): the same Fig. 12 sweep with shared-key template
/// launches — the PSP-bottleneck mitigation the paper sketches. One cold
/// template boot pays full cost; subsequent launches bypass the PSP, so the
/// curve flattens toward the non-SEV one.
///
/// # Errors
///
/// Propagates boot failures.
pub fn futurework_shared_key_concurrency(
    scale: &ExperimentScale,
) -> Result<Vec<ConcurrencyRow>, VmmError> {
    use sevf_vmm::config::LaunchMode;
    let mut machine = Machine::new(scale.seed);
    let kernel = scale.kernels().remove(1); // AWS config
    let mut config = scale.vm_config(BootPolicy::Severifast, kernel);
    config.launch_mode = LaunchMode::SharedKeyTemplate;
    let vm = MicroVm::new(config)?;
    vm.register_expected(&mut machine)?;
    let _cold = vm.boot(&mut machine)?; // warms the template
    let mut warm = vm.boot(&mut machine)?;
    warm.timeline = warm.timeline.filtered(|p| p.counts_as_boot());
    let mut rows = Vec::new();
    for point in concurrent::sweep(&warm, &scale.concurrency_levels) {
        rows.push(ConcurrencyRow {
            policy: BootPolicy::Severifast,
            concurrency: point.concurrency,
            mean_ms: point.summary.mean,
            max_ms: point.summary.max,
        });
    }
    Ok(rows)
}

/// One row of the §7.1 warm-start analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartRow {
    /// Boot policy.
    pub policy: BootPolicy,
    /// Cold boot time (to init), ms.
    pub cold_boot_ms: f64,
    /// Warm invocation latency into a kept-alive guest, ms.
    pub warm_invoke_ms: f64,
    /// Host memory one keep-alive holds, bytes.
    pub resident_bytes: u64,
    /// Fraction of host-visible pages a KSM-style deduplicator could
    /// reclaim across two identical keep-alives.
    pub dedupable_fraction: f64,
}

/// §7.1: the warm-start trade-off. Keep-alive makes invocations ~1000×
/// faster than cold boot, but under SEV the kept-alive memory cannot be
/// deduplicated, so the rent is paid in full per VM.
///
/// # Errors
///
/// Propagates boot and memory failures.
pub fn warm_start_analysis(scale: &ExperimentScale) -> Result<Vec<WarmStartRow>, VmmError> {
    use sevf_vmm::warm::dedupable_fraction;
    let mut machine = Machine::new(scale.seed);
    let mut rows = Vec::new();
    for policy in [BootPolicy::Severifast, BootPolicy::StockFirecracker] {
        let kernel = scale.kernels().remove(1); // AWS config
        let vm = MicroVm::new(scale.vm_config(policy, kernel))?;
        if policy.is_sev() {
            vm.register_expected(&mut machine)?;
        }
        let (cold_a, mut alive_a) = vm.boot_keep_alive(&mut machine)?;
        let (_cold_b, alive_b) = vm.boot_keep_alive(&mut machine)?;
        let warm = alive_a.invoke(&machine.cost);
        rows.push(WarmStartRow {
            policy,
            cold_boot_ms: cold_a.boot_time().as_millis_f64(),
            warm_invoke_ms: warm.latency.as_millis_f64(),
            resident_bytes: alive_a.resident_bytes(),
            dedupable_fraction: dedupable_fraction(&[&alive_a, &alive_b]).map_err(VmmError::Mem)?,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------------------
// §6.3 — memory footprint
// --------------------------------------------------------------------------

/// A row of the memory-footprint table.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintRow {
    /// Policy.
    pub policy: BootPolicy,
    /// Monitor binary size, bytes.
    pub binary_bytes: u64,
    /// Runtime overhead (pmap minus binary minus guest memory), bytes.
    pub overhead_bytes: u64,
}

/// §6.3: SEV support adds ~50 KB of binary and ~16 KB per guest.
pub fn footprint_table() -> Vec<FootprintRow> {
    [
        BootPolicy::StockFirecracker,
        BootPolicy::Severifast,
        BootPolicy::QemuOvmf,
    ]
    .into_iter()
    .map(|policy| {
        let config = VmConfig::paper_default(policy, KernelConfig::aws());
        let fp = MemoryFootprint::of(&config);
        FootprintRow {
            policy,
            binary_bytes: fp.binary,
            overhead_bytes: fp.overhead(),
        }
    })
    .collect()
}

/// The headline claim of the abstract: SEVeriFast cuts end-to-end SEV boot
/// by 86–93 % relative to QEMU/OVMF. Returns (kernel, reduction) pairs.
///
/// # Errors
///
/// Propagates boot failures.
pub fn headline_reductions(scale: &ExperimentScale) -> Result<Vec<(String, f64)>, VmmError> {
    let mut machine = Machine::new(scale.seed);
    let mut out = Vec::new();
    for kernel in scale.kernels() {
        let name = kernel.name.clone();
        let sevf = scale.boot(&mut machine, BootPolicy::Severifast, kernel.clone())?;
        let qemu = scale.boot(&mut machine, BootPolicy::QemuOvmf, kernel)?;
        let reduction = 1.0 - sevf.total_time().as_millis_f64() / qemu.total_time().as_millis_f64();
        out.push((name, reduction));
    }
    Ok(out)
}

/// Convenience wrapper for Nanos → ms used in renderers.
pub fn ms(n: Nanos) -> f64 {
    n.as_millis_f64()
}

/// The SEV generations compared by the ablation bench.
pub fn generations() -> [SevGeneration; 4] {
    [
        SevGeneration::None,
        SevGeneration::Sev,
        SevGeneration::SevEs,
        SevGeneration::SevSnp,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_phases_total_over_3s() {
        let slices = fig3_ovmf_phases(&ExperimentScale::quick()).unwrap();
        let total: f64 = slices.iter().map(|s| s.ms).sum();
        assert!(total > 3000.0, "OVMF total {total} ms");
        // Boot verifier is a small fraction (the paper's key observation).
        let verifier = slices.last().unwrap();
        assert_eq!(verifier.label, "Boot Verification");
        assert!(verifier.ms < total * 0.05);
    }

    #[test]
    fn fig4_is_linear() {
        let points = fig4_preencryption();
        let sweep: Vec<&PreEncryptionPoint> =
            points.iter().filter(|p| p.label.is_empty()).collect();
        // Doubling size roughly doubles cost at the large end.
        let last = sweep.last().unwrap();
        let prev = sweep[sweep.len() - 2];
        let ratio = last.ms / prev.ms;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
        // §3.2 anchors.
        let vmlinux = points
            .iter()
            .find(|p| p.label.contains("Lupine vmlinux"))
            .unwrap();
        assert!((5000.0..6500.0).contains(&vmlinux.ms), "{}", vmlinux.ms);
        let ovmf = points.iter().find(|p| p.label.contains("OVMF")).unwrap();
        assert!((240.0..280.0).contains(&ovmf.ms), "{}", ovmf.ms);
    }

    #[test]
    fn fig5_lz4_kernel_wins_and_raw_initrd_wins() {
        let rows = fig5_measured_direct_boot(&ExperimentScale::quick());
        for kernel in ["lupine", "aws", "ubuntu"] {
            let component = format!("kernel:{kernel}-div16");
            let of = |codec: Codec| {
                rows.iter()
                    .find(|r| r.component == component && r.codec == codec)
                    .unwrap()
                    .total_ms()
            };
            assert!(of(Codec::Lz4) < of(Codec::None), "{kernel}: lz4 vs none");
            assert!(
                of(Codec::Lz4) < of(Codec::Deflate),
                "{kernel}: lz4 vs deflate"
            );
            assert!(of(Codec::Lz4) < of(Codec::Zstd), "{kernel}: lz4 vs zstd");
        }
        let initrd = |codec: Codec| {
            rows.iter()
                .find(|r| r.component == "initrd" && r.codec == codec)
                .unwrap()
                .total_ms()
        };
        assert!(initrd(Codec::None) < initrd(Codec::Lz4), "raw initrd wins");
        assert!(initrd(Codec::None) < initrd(Codec::Deflate));
    }

    #[test]
    fn fig7_decision_rule_holds() {
        for row in fig7_structures() {
            match row.decision {
                "pre-encrypt" => assert!(
                    row.code_bytes == 0 || row.code_bytes > row.struct_bytes,
                    "{}: should only pre-encrypt when code > struct",
                    row.name
                ),
                "generate" => assert!(row.code_bytes < row.struct_bytes + 4096),
                other => panic!("unknown decision {other}"),
            }
        }
        // Fig. 7's mptable row: 304 B struct vs ~4 KB code.
        let mp = &fig7_structures()[0];
        assert_eq!(mp.struct_bytes, 304);
    }

    #[test]
    fn fig9_severifast_far_left_of_qemu() {
        let series = fig9_boot_cdfs(&ExperimentScale::quick()).unwrap();
        for kernel in ["lupine-div16", "aws-div16", "ubuntu-div16"] {
            let sevf = series
                .iter()
                .find(|s| s.policy == BootPolicy::Severifast && s.kernel == kernel)
                .unwrap();
            let qemu = series
                .iter()
                .find(|s| s.policy == BootPolicy::QemuOvmf && s.kernel == kernel)
                .unwrap();
            let reduction = 1.0 - sevf.mean() / qemu.mean();
            assert!(reduction > 0.8, "{kernel}: reduction {reduction}");
        }
    }

    #[test]
    fn fig12_sev_linear_non_sev_flat() {
        let rows = fig12_concurrency(&ExperimentScale::quick()).unwrap();
        let sev: Vec<&ConcurrencyRow> = rows
            .iter()
            .filter(|r| r.policy == BootPolicy::Severifast)
            .collect();
        let stock: Vec<&ConcurrencyRow> = rows
            .iter()
            .filter(|r| r.policy == BootPolicy::StockFirecracker)
            .collect();
        assert!(sev.last().unwrap().mean_ms > sev[0].mean_ms * 2.0);
        assert!(stock.last().unwrap().mean_ms < stock[0].mean_ms * 1.3);
    }

    #[test]
    fn headline_reduction_in_band() {
        let reductions = headline_reductions(&ExperimentScale::quick()).unwrap();
        for (kernel, r) in reductions {
            assert!((0.80..0.99).contains(&r), "{kernel}: {r}");
        }
    }

    #[test]
    fn shared_key_flattens_the_psp_curve() {
        let scale = ExperimentScale::quick();
        let normal = fig12_concurrency(&scale).unwrap();
        let shared = futurework_shared_key_concurrency(&scale).unwrap();
        let last_normal = normal
            .iter()
            .rfind(|r| r.policy == BootPolicy::Severifast)
            .unwrap();
        let last_shared = shared.last().unwrap();
        assert_eq!(last_normal.concurrency, last_shared.concurrency);
        assert!(
            last_shared.mean_ms < last_normal.mean_ms / 2.0,
            "shared {} vs normal {}",
            last_shared.mean_ms,
            last_normal.mean_ms
        );
    }

    #[test]
    fn warm_start_tradeoff_holds() {
        let rows = warm_start_analysis(&ExperimentScale::quick()).unwrap();
        let sev = rows
            .iter()
            .find(|r| r.policy == BootPolicy::Severifast)
            .unwrap();
        let plain = rows
            .iter()
            .find(|r| r.policy == BootPolicy::StockFirecracker)
            .unwrap();
        // Warm invocation is orders of magnitude faster than cold boot.
        assert!(sev.cold_boot_ms / sev.warm_invoke_ms > 100.0);
        // §7.1: plain VMs dedup well, SEV VMs barely.
        assert!(
            plain.dedupable_fraction > 0.4,
            "{}",
            plain.dedupable_fraction
        );
        assert!(
            sev.dedupable_fraction < plain.dedupable_fraction / 2.0,
            "sev {} plain {}",
            sev.dedupable_fraction,
            plain.dedupable_fraction
        );
    }

    #[test]
    fn footprint_matches_s6_3() {
        let rows = footprint_table();
        let stock = rows
            .iter()
            .find(|r| r.policy == BootPolicy::StockFirecracker)
            .unwrap();
        let sevf = rows
            .iter()
            .find(|r| r.policy == BootPolicy::Severifast)
            .unwrap();
        assert_eq!(sevf.binary_bytes, stock.binary_bytes);
        assert_eq!(sevf.overhead_bytes - stock.overhead_bytes, 16 * 1024);
    }
}
