//! # SEVeriFast — minimal root of trust for fast SEV microVM startup
//!
//! A from-scratch reproduction of *SEVeriFast: Minimizing the root of trust
//! for fast startup of SEV microVMs* (ASPLOS 2024) as a simulation-backed
//! Rust library. See DESIGN.md for the substitution table (what ran on AMD
//! hardware in the paper vs. what this crate models) and EXPERIMENTS.md for
//! paper-vs-measured numbers.
//!
//! ## Quick start
//!
//! ```
//! use severifast::prelude::*;
//!
//! // One host machine: a single PSP, 32 cores, a guest owner.
//! let mut machine = Machine::new(42);
//!
//! // The paper's flagship configuration: SEVeriFast boot of the AWS
//! // microVM kernel (scaled down here so doctests stay fast).
//! let config = VmConfig::test_tiny(BootPolicy::Severifast);
//! let vm = MicroVm::new(config)?;
//!
//! // The tenant computes the expected launch digest out of band (§4.2)...
//! vm.register_expected(&mut machine)?;
//!
//! // ...and the boot runs: pre-encryption, boot verification, bootstrap
//! // loader, Linux, remote attestation.
//! let report = vm.boot(&mut machine)?;
//! assert_eq!(report.outcome, BootOutcome::Running);
//! println!("booted in {}", report.boot_time());
//! # Ok::<(), severifast::VmmError>(())
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`crypto`] | SHA-2, HMAC, AES-XEX/CTR, DH (from scratch) |
//! | [`codec`] | LZ4 block codec, LZSS+Huffman (deflate/zstd-class) |
//! | [`sim`] | virtual time, calibrated cost model, DES engine |
//! | [`mem`] | guest memory, RMP, C-bit, #VC semantics |
//! | [`psp`] | SEV launch commands, launch digest, attestation reports |
//! | [`image`] | ELF/bzImage/CPIO synthesis, kernel configs |
//! | [`verifier`] | the SEVeriFast boot verifier |
//! | [`ovmf`] | the QEMU/OVMF baseline |
//! | [`attest`] | guest owner, expected-measurement tool, secret channel |
//! | [`vmm`] | the Firecracker-like monitor and boot policies |
//! | [`fleet`] | serverless fleet control plane: load gen, admission, launch cache, warm pools |
//! | [`cluster`] | sharded multi-host serving: placement router, host outage failover, rebalancing |
//! | [`experiments`] | drivers that regenerate every paper figure/table |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

/// Re-export: cryptographic primitives.
pub use sevf_crypto as crypto;

/// Re-export: compression codecs.
pub use sevf_codec as codec;

/// Re-export: simulation substrate.
pub use sevf_sim as sim;

/// Re-export: guest memory model.
pub use sevf_mem as mem;

/// Re-export: the PSP.
pub use sevf_psp as psp;

/// Re-export: boot images.
pub use sevf_image as image;

/// Re-export: the boot verifier.
pub use sevf_verifier as verifier;

/// Re-export: the OVMF baseline.
pub use sevf_ovmf as ovmf;

/// Re-export: remote attestation.
pub use sevf_attest as attest;

/// Re-export: the microVM monitor.
pub use sevf_vmm as vmm;

/// Re-export: the serverless fleet control plane.
pub use sevf_fleet as fleet;

/// Re-export: sharded multi-host serving with PSP-aware placement.
pub use sevf_cluster as cluster;

pub use sevf_codec::Codec;
pub use sevf_image::kernel::KernelConfig;
pub use sevf_sim::cost::SevGeneration;
pub use sevf_sim::{CostModel, Nanos, PhaseKind};
pub use sevf_vmm::{BootOutcome, BootPolicy, BootReport, Machine, MicroVm, VmConfig, VmmError};

/// The common imports for working with the library.
pub mod prelude {
    pub use crate::{
        BootOutcome, BootPolicy, BootReport, Codec, CostModel, KernelConfig, Machine, MicroVm,
        Nanos, PhaseKind, SevGeneration, VmConfig, VmmError,
    };
    pub use sevf_vmm::concurrent;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_boots_a_vm() {
        let mut machine = Machine::new(7);
        let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
        vm.register_expected(&mut machine).unwrap();
        let report = vm.boot(&mut machine).unwrap();
        assert_eq!(report.outcome, BootOutcome::Running);
    }
}
