//! From-scratch cryptographic primitives for the SEVeriFast reproduction.
//!
//! The SEVeriFast boot path leans on a small set of primitives:
//!
//! * **SHA-256** — the boot verifier hashes the kernel/initrd during measured
//!   direct boot (the paper uses the `sha2` crate with x86 SHA extensions).
//! * **SHA-384** — the PSP chains `LAUNCH_UPDATE_DATA` pages into the SEV-SNP
//!   launch digest and signs attestation reports over it.
//! * **AES-128 (XEX mode)** — stands in for the memory-controller encryption
//!   engine: equal plaintexts at different guest-physical addresses yield
//!   different ciphertexts (the property the paper cites in §6.2 when
//!   explaining why KVM pins guest pages).
//! * **AES-128 (CTR mode) + HMAC** — encrypt-then-MAC secret wrapping on the
//!   attestation channel.
//! * **Diffie–Hellman over GF(2²⁵⁵ − 19)** — session-key agreement between
//!   the guest and the guest owner after attestation.
//!
//! Everything here is implemented from first principles: the SHA-2 round
//! constants are derived from the fractional parts of prime roots and the AES
//! S-box from GF(2⁸) inversion, then validated against the published FIPS and
//! NIST test vectors in this crate's test suite.
//!
//! # Example
//!
//! ```
//! use sevf_crypto::sha256;
//!
//! let digest = sha256(b"severifast");
//! assert_eq!(digest.len(), 32);
//! ```
//!
//! This code is a simulation substrate for systems research; it is **not**
//! hardened against side channels and must not be used to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bigint;
pub mod ctr;
pub mod dh;
pub mod hex;
pub mod hmac;
pub mod sha2;
pub mod xex;

pub use aes::Aes128;
pub use bigint::BigUint;
pub use ctr::AesCtr;
pub use dh::{DhKeyPair, DhPublicKey, DhSharedSecret};
pub use hmac::{hmac_sha256, hmac_sha384};
pub use sha2::{sha256, sha384, sha384_batch, sha384_x4, sha512, Sha256, Sha384, Sha512};
pub use xex::XexCipher;

/// A 256-bit digest produced by [`Sha256`].
pub type Digest256 = [u8; 32];

/// A 384-bit digest produced by [`Sha384`].
pub type Digest384 = [u8; 48];
