//! HMAC over the SHA-2 family (RFC 2104 / FIPS 198-1).
//!
//! Used for attestation-report signatures (HMAC-SHA-384 under the simulated
//! chip-unique key — the stand-in for ECDSA-P384 documented in DESIGN.md) and
//! for the encrypt-then-MAC secret wrapping on the attestation channel.

use crate::sha2::{Sha256, Sha384};

/// Computes HMAC-SHA-256 of `data` under `key`.
///
/// # Example
///
/// ```
/// let tag = sevf_crypto::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha2::sha256(key);
        key_block[..32].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Computes HMAC-SHA-384 of `data` under `key`.
///
/// # Example
///
/// ```
/// let tag = sevf_crypto::hmac_sha384(b"chip key", b"attestation report");
/// assert_eq!(tag.len(), 48);
/// ```
pub fn hmac_sha384(key: &[u8], data: &[u8]) -> [u8; 48] {
    const BLOCK: usize = 128;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha2::sha384(key);
        key_block[..48].copy_from_slice(&d);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha384::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha384::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-style tag comparison (length check plus accumulated XOR).
///
/// # Example
///
/// ```
/// assert!(sevf_crypto::hmac::verify_tag(&[1, 2, 3], &[1, 2, 3]));
/// assert!(!sevf_crypto::hmac::verify_tag(&[1, 2, 3], &[1, 2, 4]));
/// ```
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn rfc4231_test_case_1_sha256() {
        // Key = 0x0b repeated 20 times, data = "Hi There".
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2_sha256() {
        // Key = "Jefe", data = "what do ya want for nothing?".
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let long_key = vec![0xaau8; 200];
        let short = crate::sha2::sha256(&long_key);
        assert_eq!(hmac_sha256(&long_key, b"m"), hmac_sha256(&short, b"m"));

        let long_key384 = vec![0xbbu8; 300];
        let short384 = crate::sha2::sha384(&long_key384);
        assert_eq!(
            hmac_sha384(&long_key384, b"m"),
            hmac_sha384(&short384, b"m")
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha384(b"k1", b"data"), hmac_sha384(b"k2", b"data"));
        assert_ne!(hmac_sha384(b"k", b"data1"), hmac_sha384(b"k", b"data2"));
    }

    #[test]
    fn verify_tag_rejects_length_mismatch() {
        assert!(!verify_tag(&[1, 2, 3], &[1, 2]));
        assert!(verify_tag(&[], &[]));
    }
}
