//! SHA-256, SHA-384, and SHA-512 (FIPS 180-4).
//!
//! The SEVeriFast boot verifier hashes boot components with SHA-256 (the
//! paper picked the `sha2` crate for its use of the x86 SHA extensions — the
//! *speed* of that hardware path lives in the cost model, not here). The PSP
//! computes the SEV-SNP launch digest with SHA-384.
//!
//! Rather than transcribing the 64 + 80 round constants, this module derives
//! them the way FIPS 180-4 defines them: the initial hash values are the
//! first 32/64 bits of the fractional parts of the square roots of the first
//! primes, and the round constants come from the cube roots. The derivation
//! uses exact integer n-th roots ([`crate::bigint::BigUint::nth_root`]); the
//! test suite pins the resulting digests to the official "abc" test vectors.

use std::sync::OnceLock;

use crate::bigint::BigUint;

/// Returns the first `n` prime numbers.
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while primes.len() < n {
        if primes.iter().all(|p| !candidate.is_multiple_of(*p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// First `bits` bits of the fractional part of `prime^(1/degree)`.
///
/// Computed exactly: `floor(p^(1/degree) * 2^bits) mod 2^bits` equals
/// `floor((p << (degree * bits))^(1/degree)) mod 2^bits`.
fn root_fraction_bits(prime: u64, degree: u32, bits: usize) -> u64 {
    let shifted = BigUint::from_u64(prime).shl(degree as usize * bits);
    let root = shifted.nth_root(degree);
    // Keep only the fractional bits (drop the integer part above `bits`).
    let mask_len = bits;
    let frac = root.rem(&BigUint::one().shl(mask_len));
    frac.low_u64()
}

fn sha256_iv() -> &'static [u32; 8] {
    static IV: OnceLock<[u32; 8]> = OnceLock::new();
    IV.get_or_init(|| {
        let primes = first_primes(8);
        let mut iv = [0u32; 8];
        for (i, &p) in primes.iter().enumerate() {
            iv[i] = root_fraction_bits(p, 2, 32) as u32;
        }
        iv
    })
}

fn sha256_k() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            k[i] = root_fraction_bits(p, 3, 32) as u32;
        }
        k
    })
}

fn sha512_iv() -> &'static [u64; 8] {
    static IV: OnceLock<[u64; 8]> = OnceLock::new();
    IV.get_or_init(|| {
        let primes = first_primes(8);
        let mut iv = [0u64; 8];
        for (i, &p) in primes.iter().enumerate() {
            iv[i] = root_fraction_bits(p, 2, 64);
        }
        iv
    })
}

/// SHA-384 IV: fractional square roots of the 9th through 16th primes.
fn sha384_iv() -> &'static [u64; 8] {
    static IV: OnceLock<[u64; 8]> = OnceLock::new();
    IV.get_or_init(|| {
        let primes = first_primes(16);
        let mut iv = [0u64; 8];
        for (i, &p) in primes[8..].iter().enumerate() {
            iv[i] = root_fraction_bits(p, 2, 64);
        }
        iv
    })
}

fn sha512_k() -> &'static [u64; 80] {
    static K: OnceLock<[u64; 80]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(80);
        let mut k = [0u64; 80];
        for (i, &p) in primes.iter().enumerate() {
            k[i] = root_fraction_bits(p, 3, 64);
        }
        k
    })
}

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use sevf_crypto::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"sever");
/// hasher.update(b"ifast");
/// assert_eq!(hasher.finalize(), sevf_crypto::sha256(b"severifast"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: *sha256_iv(),
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                compress256(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }
        // Aligned input compresses straight from the caller's slice — no
        // staging copy per block.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress256(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the computation and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` also advanced total_len; that's fine, we captured it above.
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress256(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

fn compress256(state: &mut [u32; 8], block: &[u8; 64]) {
    let k = sha256_k();
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(k[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Core SHA-512 family state (SHA-512 and SHA-384 differ only in the IV and
/// output truncation).
#[derive(Clone, Debug)]
struct Sha512Core {
    state: [u64; 8],
    buffer: [u8; 128],
    buffer_len: usize,
    total_len: u128,
}

impl Sha512Core {
    fn new(iv: [u64; 8]) -> Self {
        Sha512Core {
            state: iv,
            buffer: [0u8; 128],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (128 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 128 {
                compress512(&mut self.state, &self.buffer);
                self.buffer_len = 0;
            }
        }
        // Aligned input compresses straight from the caller's slice — no
        // staging copy per block. On the measurement path (one 4 KiB page
        // per update) this removes 32 × 128-byte copies per page.
        let mut chunks = data.chunks_exact(128);
        for block in &mut chunks {
            compress512(&mut self.state, block.try_into().expect("128-byte chunk"));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    fn finalize(mut self) -> [u64; 8] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 112 {
            self.update(&[0]);
        }
        let mut block = self.buffer;
        block[112..128].copy_from_slice(&bit_len.to_be_bytes());
        compress512(&mut self.state, &block);
        self.state
    }
}

fn compress512(state: &mut [u64; 8], block: &[u8; 128]) {
    let k = sha512_k();
    let mut w = [0u64; 80];
    for (i, chunk) in block.chunks_exact(8).enumerate() {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(chunk);
        w[i] = u64::from_be_bytes(bytes);
    }
    for i in 16..80 {
        let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
        let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..80 {
        let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(k[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Lanes processed together by the multi-buffer compressor. Four 64-bit
/// lanes fill a 256-bit vector register; the per-round loops below are
/// written lane-innermost so the compiler can autovectorize them.
const LANES: usize = 4;

/// Compresses one 128-byte block into each of four independent SHA-512
/// states. The message schedule and round state are kept transposed
/// (`[round][lane]`) so each line of the round function is four independent
/// u64 operations.
fn compress512x4(states: &mut [[u64; 8]; LANES], blocks: [&[u8; 128]; LANES]) {
    let k = sha512_k();
    let mut w = [[0u64; LANES]; 80];
    for (l, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            w[i][l] = u64::from_be_bytes(bytes);
        }
    }
    for i in 16..80 {
        let mut row = [0u64; LANES];
        for (l, slot) in row.iter_mut().enumerate() {
            let w15 = w[i - 15][l];
            let w2 = w[i - 2][l];
            let s0 = w15.rotate_right(1) ^ w15.rotate_right(8) ^ (w15 >> 7);
            let s1 = w2.rotate_right(19) ^ w2.rotate_right(61) ^ (w2 >> 6);
            *slot = w[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][l])
                .wrapping_add(s1);
        }
        w[i] = row;
    }
    let mut v = [[0u64; LANES]; 8];
    for (j, row) in v.iter_mut().enumerate() {
        for l in 0..LANES {
            row[l] = states[l][j];
        }
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = v;
    for i in 0..80 {
        for l in 0..LANES {
            let s1 = e[l].rotate_right(14) ^ e[l].rotate_right(18) ^ e[l].rotate_right(41);
            let ch = (e[l] & f[l]) ^ ((!e[l]) & g[l]);
            let t1 = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i][l]);
            let s0 = a[l].rotate_right(28) ^ a[l].rotate_right(34) ^ a[l].rotate_right(39);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            let t2 = s0.wrapping_add(maj);
            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l].wrapping_add(t1);
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = t1.wrapping_add(t2);
        }
    }
    let rows = [a, b, c, d, e, f, g, h];
    for (j, row) in rows.iter().enumerate() {
        for l in 0..LANES {
            states[l][j] = states[l][j].wrapping_add(row[l]);
        }
    }
}

/// SHA-384 over four equal-length messages at once through the multi-buffer
/// compressor. Bit-exact with four scalar [`sha384`] calls.
///
/// # Panics
///
/// Panics unless all four messages have the same length (lanes must share
/// one block schedule).
pub fn sha384_x4(msgs: [&[u8]; LANES]) -> [[u8; 48]; LANES] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "multi-buffer lanes must have equal lengths"
    );
    let mut states = [*sha384_iv(); LANES];
    let full = len / 128;
    for b in 0..full {
        compress512x4(
            &mut states,
            [
                msgs[0][b * 128..(b + 1) * 128].try_into().expect("block"),
                msgs[1][b * 128..(b + 1) * 128].try_into().expect("block"),
                msgs[2][b * 128..(b + 1) * 128].try_into().expect("block"),
                msgs[3][b * 128..(b + 1) * 128].try_into().expect("block"),
            ],
        );
    }
    // Padding tail: equal lengths mean every lane has the same tail shape
    // (one block when the 0x80 + 16 length bytes fit, two otherwise).
    let rem = len % 128;
    let tail_blocks = if rem < 112 { 1 } else { 2 };
    let bit_len = (len as u128).wrapping_mul(8);
    let mut tails = [[0u8; 256]; LANES];
    for (l, tail) in tails.iter_mut().enumerate() {
        tail[..rem].copy_from_slice(&msgs[l][full * 128..]);
        tail[rem] = 0x80;
        let end = tail_blocks * 128;
        tail[end - 16..end].copy_from_slice(&bit_len.to_be_bytes());
    }
    for b in 0..tail_blocks {
        compress512x4(
            &mut states,
            [
                tails[0][b * 128..(b + 1) * 128].try_into().expect("block"),
                tails[1][b * 128..(b + 1) * 128].try_into().expect("block"),
                tails[2][b * 128..(b + 1) * 128].try_into().expect("block"),
                tails[3][b * 128..(b + 1) * 128].try_into().expect("block"),
            ],
        );
    }
    let mut out = [[0u8; 48]; LANES];
    for (l, state) in states.iter().enumerate() {
        for (i, word) in state.iter().take(6).enumerate() {
            out[l][i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
    }
    out
}

/// SHA-384 over a batch of messages. Runs of four equal-length messages go
/// through the 4-lane multi-buffer path ([`sha384_x4`]); stragglers and
/// mixed lengths fall back to the scalar hasher. Output order matches input
/// order and every digest is bit-exact with [`sha384`].
pub fn sha384_batch(msgs: &[&[u8]]) -> Vec<[u8; 48]> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut i = 0;
    while i < msgs.len() {
        if i + LANES <= msgs.len() {
            let len = msgs[i].len();
            if msgs[i + 1..i + LANES].iter().all(|m| m.len() == len) {
                out.extend_from_slice(&sha384_x4([msgs[i], msgs[i + 1], msgs[i + 2], msgs[i + 3]]));
                i += LANES;
                continue;
            }
        }
        out.push(sha384(msgs[i]));
        i += 1;
    }
    out
}

/// Streaming SHA-512 hasher.
///
/// # Example
///
/// ```
/// use sevf_crypto::Sha512;
///
/// let mut hasher = Sha512::new();
/// hasher.update(b"abc");
/// let digest = hasher.finalize();
/// assert_eq!(digest[0], 0xdd);
/// ```
#[derive(Clone, Debug)]
pub struct Sha512(Sha512Core);

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha512(Sha512Core::new(*sha512_iv()))
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.0.update(data);
    }

    /// Finishes the computation and returns the 64-byte digest.
    pub fn finalize(self) -> [u8; 64] {
        let state = self.0.finalize();
        let mut out = [0u8; 64];
        for (i, word) in state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Streaming SHA-384 hasher (used for the SEV-SNP launch digest).
///
/// # Example
///
/// ```
/// use sevf_crypto::Sha384;
///
/// let mut hasher = Sha384::new();
/// hasher.update(b"launch page");
/// let digest = hasher.finalize();
/// assert_eq!(digest.len(), 48);
/// ```
#[derive(Clone, Debug)]
pub struct Sha384(Sha512Core);

impl Default for Sha384 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha384 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha384(Sha512Core::new(*sha384_iv()))
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.0.update(data);
    }

    /// Finishes the computation and returns the 48-byte digest.
    pub fn finalize(self) -> [u8; 48] {
        let state = self.0.finalize();
        let mut out = [0u8; 48];
        for (i, word) in state.iter().take(6).enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256.
///
/// # Example
///
/// ```
/// let d = sevf_crypto::sha256(b"");
/// assert_eq!(d[..4], [0xe3, 0xb0, 0xc4, 0x42]);
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-384.
pub fn sha384(data: &[u8]) -> [u8; 48] {
    let mut h = Sha384::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-512.
pub fn sha512(data: &[u8]) -> [u8; 64] {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn derived_sha256_constants_match_fips() {
        // Spot-check the first and last derived constants against FIPS 180-4.
        let iv = sha256_iv();
        assert_eq!(iv[0], 0x6a09e667);
        assert_eq!(iv[7], 0x5be0cd19);
        let k = sha256_k();
        assert_eq!(k[0], 0x428a2f98);
        assert_eq!(k[1], 0x71374491);
        assert_eq!(k[63], 0xc67178f2);
    }

    #[test]
    fn derived_sha512_constants_match_fips() {
        let iv = sha512_iv();
        assert_eq!(iv[0], 0x6a09e667f3bcc908);
        let k = sha512_k();
        assert_eq!(k[0], 0x428a2f98d728ae22);
        let iv384 = sha384_iv();
        assert_eq!(iv384[0], 0xcbbb9d5dc1059ed8);
    }

    #[test]
    fn sha256_empty_vector() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc_vector() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_vector() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha384_abc_vector() {
        assert_eq!(
            to_hex(&sha384(b"abc")),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed\
             8086072ba1e7cc2358baeca134c825a7"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_abc_vector() {
        assert_eq!(
            to_hex(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn streaming_matches_one_shot_across_block_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 129, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");

            let mut h = Sha384::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha384(&data), "sha384 split at {split}");
        }
    }

    #[test]
    fn multi_buffer_matches_scalar_across_lengths() {
        // Cover both tail shapes (1 and 2 padding blocks), the empty
        // message, exact block multiples, and the measurement-path length
        // (48 + 4096 + 8 + 1 and 4096 + 8 + 1).
        for len in [0usize, 1, 111, 112, 127, 128, 129, 255, 256, 4105, 4153] {
            let msgs: Vec<Vec<u8>> = (0..4u8)
                .map(|l| {
                    (0..len)
                        .map(|i| (i as u8).wrapping_mul(3).wrapping_add(l))
                        .collect()
                })
                .collect();
            let refs: [&[u8]; 4] = [&msgs[0], &msgs[1], &msgs[2], &msgs[3]];
            let wide = sha384_x4(refs);
            for l in 0..4 {
                assert_eq!(wide[l], sha384(refs[l]), "len {len} lane {l}");
            }
        }
    }

    #[test]
    fn batch_handles_mixed_lengths_and_stragglers() {
        let msgs: Vec<Vec<u8>> = (0..11usize).map(|i| vec![i as u8; i * 37]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let out = sha384_batch(&refs);
        assert_eq!(out.len(), refs.len());
        for (i, d) in out.iter().enumerate() {
            assert_eq!(*d, sha384(refs[i]), "msg {i}");
        }
        // Equal-length batch exercises the wide path end to end.
        let eq: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 4105]).collect();
        let eq_refs: Vec<&[u8]> = eq.iter().map(|m| m.as_slice()).collect();
        for (i, d) in sha384_batch(&eq_refs).iter().enumerate() {
            assert_eq!(*d, sha384(eq_refs[i]), "eq msg {i}");
        }
        assert!(sha384_batch(&[]).is_empty());
    }

    #[test]
    fn million_a_vector() {
        // FIPS 180-4 long message vector: one million 'a' characters.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
