//! A minimal arbitrary-precision unsigned integer.
//!
//! Used in two places:
//!
//! * deriving the SHA-2 round constants from the fractional parts of the
//!   square/cube roots of the first primes (see [`crate::sha2`]), which needs
//!   exact integer n-th roots of numbers around 2²⁰⁰; and
//! * the Diffie–Hellman key agreement in [`crate::dh`], which needs modular
//!   exponentiation with a 255-bit prime modulus.
//!
//! Limbs are `u64`, stored little-endian (least-significant limb first), with
//! the invariant that the most significant limb is non-zero (the value zero
//! is represented by an empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use sevf_crypto::BigUint;
///
/// let a = BigUint::from_u64(1u64 << 63);
/// let b = a.mul(&a);
/// assert_eq!(b.bit_len(), 127);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, limb) in self.limbs.iter().rev().enumerate() {
                if i == 0 {
                    write!(f, "{limb:x}")?;
                } else {
                    write!(f, "{limb:016x}")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a big integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Creates a big integer from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut nbits = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << nbits;
            nbits += 8;
            if nbits == 64 {
                limbs.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            limbs.push(acc);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes, left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one, growing the representation as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint::sub would underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `self >> bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let lo = self.limbs[i] >> bit_shift;
                let hi = if i + 1 < self.limbs.len() {
                    self.limbs[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Returns `(self / divisor, self % divisor)` via binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = BigUint::zero();
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient.set_bit(i);
            }
            shifted = shifted.shr(1);
        }
        quotient.normalize();
        (quotient, remainder)
    }

    /// Returns `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Returns `(self * other) % modulus`.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Returns `self^exponent % modulus` (left-to-right square and multiply).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus == &BigUint::one() {
            return BigUint::zero();
        }
        let base = self.rem(modulus);
        let mut acc = BigUint::one();
        for i in (0..exponent.bit_len()).rev() {
            acc = acc.mulmod(&acc, modulus);
            if exponent.bit(i) {
                acc = acc.mulmod(&base, modulus);
            }
        }
        acc
    }

    /// Returns `self^n` for a small exponent.
    pub fn pow_small(&self, n: u32) -> BigUint {
        let mut acc = BigUint::one();
        for _ in 0..n {
            acc = acc.mul(self);
        }
        acc
    }

    /// Returns `floor(self^(1/n))` via bitwise binary search.
    ///
    /// Used to extract the fractional bits of prime roots when deriving the
    /// SHA-2 constants: `floor(p^(1/n) * 2^k) = floor((p << n*k)^(1/n))`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn nth_root(&self, n: u32) -> BigUint {
        assert!(n > 0, "0th root is undefined");
        if self.is_zero() {
            return BigUint::zero();
        }
        let max_bits = self.bit_len() / n as usize + 1;
        let mut root = BigUint::zero();
        for i in (0..=max_bits).rev() {
            let mut candidate = root.clone();
            candidate.set_bit(i);
            if candidate.pow_small(n) <= *self {
                root = candidate;
            }
        }
        root
    }

    /// Returns the low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_displays() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(format!("{z:?}"), "BigUint(0x0)");
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let c = a.add(&b);
        assert_eq!(c.bit_len(), 65);
        assert_eq!(c.sub(&b), a);
        assert_eq!(c.sub(&a), b);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_cafe_babeu64;
        let b = 0x1234_5678_9abc_def0u64;
        let expect = (a as u128) * (b as u128);
        let got = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let bytes = got.to_bytes_be_padded(16);
        let mut arr = [0u8; 16];
        arr.copy_from_slice(&bytes);
        assert_eq!(u128::from_be_bytes(arr), expect);
    }

    #[test]
    fn div_rem_small() {
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.low_u64(), 142);
        assert_eq!(r.low_u64(), 6);
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = BigUint::from_bytes_be(&[0xff; 24]);
        let b = BigUint::from_bytes_be(&[0x3b; 9]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shifts_are_inverse_for_multiples() {
        let a = BigUint::from_bytes_be(&[0xab; 17]);
        assert_eq!(a.shl(67).shr(67), a);
        assert_eq!(a.shl(64).shr(64), a);
    }

    #[test]
    fn modpow_small_cases() {
        let p = BigUint::from_u64(97);
        let g = BigUint::from_u64(5);
        // 5^96 mod 97 == 1 by Fermat's little theorem.
        assert_eq!(g.modpow(&BigUint::from_u64(96), &p), BigUint::one());
        assert_eq!(g.modpow(&BigUint::zero(), &p), BigUint::one());
        assert_eq!(g.modpow(&BigUint::one(), &p), g);
    }

    #[test]
    fn nth_root_exact_and_floor() {
        let x = BigUint::from_u64(144);
        assert_eq!(x.nth_root(2).low_u64(), 12);
        let y = BigUint::from_u64(145);
        assert_eq!(y.nth_root(2).low_u64(), 12);
        let z = BigUint::from_u64(27);
        assert_eq!(z.nth_root(3).low_u64(), 3);
        let w = BigUint::from_u64(26);
        assert_eq!(w.nth_root(3).low_u64(), 2);
    }

    #[test]
    fn nth_root_large() {
        // floor(sqrt(2 << 128)) should square to <= 2<<128 and (r+1)^2 > it.
        let x = BigUint::from_u64(2).shl(128);
        let r = x.nth_root(2);
        assert!(r.pow_small(2) <= x);
        let r1 = r.add(&BigUint::one());
        assert!(r1.pow_small(2) > x);
    }

    #[test]
    fn bytes_roundtrip() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(v.to_bytes_be(), bytes.to_vec());
        assert_eq!(v.to_bytes_be_padded(12)[..3], [0, 0, 0]);
    }

    #[test]
    fn ordering_ignores_leading_zero_limbs() {
        let a = BigUint::from_bytes_be(&[0, 0, 0, 1]);
        let b = BigUint::from_u64(1);
        assert_eq!(a, b);
        assert!(BigUint::from_u64(2) > b);
    }
}
