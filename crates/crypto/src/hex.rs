//! Tiny hexadecimal helpers used by tests, tooling, and report displays.

/// Encodes bytes as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(sevf_crypto::hex::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// # Errors
///
/// Returns `None` if the string has odd length or contains a non-hex digit.
///
/// # Example
///
/// ```
/// assert_eq!(sevf_crypto::hex::from_hex("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(sevf_crypto::hex::from_hex("xz"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00u8, 0x01, 0x7f, 0x80, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data.to_vec());
    }

    #[test]
    fn rejects_odd_length_and_bad_digits() {
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(""), Some(vec![]));
    }

    #[test]
    fn accepts_uppercase() {
        assert_eq!(from_hex("DEAD"), Some(vec![0xde, 0xad]));
    }
}
