//! AES-128 block cipher (FIPS 197).
//!
//! Backs the simulated SEV memory-encryption engine ([`crate::xex`]) and the
//! attestation secret channel ([`crate::ctr`]). The S-box is not transcribed:
//! it is generated from its definition — multiplicative inversion in
//! GF(2⁸)/(x⁸+x⁴+x³+x+1) followed by the affine transform — and the test
//! suite checks the cipher against the FIPS 197 Appendix C vector.

use std::fmt;
use std::sync::OnceLock;

/// Multiplication in GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1 (0x11b).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(2⁸) via x^254 (x·x^254 = x^255 = 1).
fn gf_inv(x: u8) -> u8 {
    if x == 0 {
        return 0;
    }
    let mut result = 1u8;
    let mut base = x;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn sbox() -> &'static ([u8; 256], [u8; 256]) {
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut fwd = [0u8; 256];
        let mut inv = [0u8; 256];
        for i in 0..256u16 {
            let x = gf_inv(i as u8);
            // Affine transform: s = x ^ rotl1(x) ^ rotl2(x) ^ rotl3(x) ^ rotl4(x) ^ 0x63.
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            fwd[i as usize] = s;
            inv[s as usize] = i as u8;
        }
        (fwd, inv)
    })
}

/// An expanded AES-128 key, ready for block encryption and decryption.
///
/// # Example
///
/// ```
/// use sevf_crypto::Aes128;
///
/// let cipher = Aes128::new(&[0u8; 16]);
/// let block = [42u8; 16];
/// let ct = cipher.encrypt_block(&block);
/// assert_eq!(cipher.decrypt_block(&ct), block);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "Aes128(<expanded key>)")
    }
}

impl Aes128 {
    /// Expands a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let (fwd, _) = sbox();
        let mut words = [[0u8; 4]; 44];
        for i in 0..4 {
            words[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = fwd[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for w in 0..4 {
                rk[w * 4..w * 4 + 4].copy_from_slice(&words[r * 4 + w]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (fwd, _) = sbox();
        let mut state = *block;
        xor_into(&mut state, &self.round_keys[0]);
        for round in 1..=10 {
            for b in state.iter_mut() {
                *b = fwd[*b as usize];
            }
            shift_rows(&mut state);
            if round != 10 {
                mix_columns(&mut state);
            }
            xor_into(&mut state, &self.round_keys[round]);
        }
        state
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (_, inv) = sbox();
        let mut state = *block;
        xor_into(&mut state, &self.round_keys[10]);
        for round in (0..10).rev() {
            inv_shift_rows(&mut state);
            for b in state.iter_mut() {
                *b = inv[*b as usize];
            }
            xor_into(&mut state, &self.round_keys[round]);
            if round != 0 {
                inv_mix_columns(&mut state);
            }
        }
        state
    }
}

fn xor_into(state: &mut [u8; 16], key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(key) {
        *s ^= k;
    }
}

/// AES state is column-major: byte `r + 4c` is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let orig = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = orig[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let orig = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = orig[r + 4 * c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::from_hex;

    #[test]
    fn sbox_known_entries() {
        let (fwd, inv) = sbox();
        assert_eq!(fwd[0x00], 0x63);
        assert_eq!(fwd[0x01], 0x7c);
        assert_eq!(fwd[0x53], 0xed);
        assert_eq!(inv[0x63], 0x00);
        // The S-box is a permutation.
        let mut seen = [false; 256];
        for &v in fwd.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "inverse of {x:#x}");
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let expect: [u8; 16] = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a")
            .unwrap()
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        assert_eq!(cipher.encrypt_block(&pt), expect);
        assert_eq!(cipher.decrypt_block(&expect), pt);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let cipher = Aes128::new(b"sixteen byte key");
        for i in 0..64u8 {
            let block = [i; 16];
            assert_eq!(cipher.decrypt_block(&cipher.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let block = [7u8; 16];
        assert_ne!(a.encrypt_block(&block), b.encrypt_block(&block));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let cipher = Aes128::new(&[0xaa; 16]);
        assert!(!format!("{cipher:?}").contains("aa"));
    }
}
