//! AES-128 in counter (CTR) mode.
//!
//! Used on the attestation channel: after remote attestation succeeds, the
//! guest owner wraps secrets (e.g. a disk decryption key) with AES-CTR under
//! the Diffie–Hellman session key and authenticates them with HMAC
//! (encrypt-then-MAC, assembled in `sevf-attest`).

use crate::aes::Aes128;

/// A CTR-mode keystream generator / cipher.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream), so only [`AesCtr::apply`] is provided.
///
/// # Example
///
/// ```
/// use sevf_crypto::AesCtr;
///
/// let ctr = AesCtr::new(&[7u8; 16], &[0u8; 12]);
/// let ct = ctr.apply(b"wrapped disk key");
/// assert_eq!(ctr.apply(&ct), b"wrapped disk key");
/// ```
#[derive(Clone, Debug)]
pub struct AesCtr {
    cipher: Aes128,
    nonce: [u8; 12],
}

impl AesCtr {
    /// Creates a CTR cipher from a key and a 96-bit nonce.
    ///
    /// The block counter occupies the final 32 bits of the counter block and
    /// starts at zero, so a single (key, nonce) pair can process up to
    /// 2³² · 16 bytes.
    pub fn new(key: &[u8; 16], nonce: &[u8; 12]) -> Self {
        AesCtr {
            cipher: Aes128::new(key),
            nonce: *nonce,
        }
    }

    /// XORs `data` with the keystream, returning the result.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the 2³²-block (64 GiB) keyspace of the
    /// 32-bit counter — continuing would reuse keystream.
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        assert!(
            data.len() as u64 <= (u32::MAX as u64) * 16,
            "payload exceeds the CTR counter keyspace"
        );
        let mut out = Vec::with_capacity(data.len());
        for (block_index, chunk) in data.chunks(16).enumerate() {
            let mut counter_block = [0u8; 16];
            counter_block[..12].copy_from_slice(&self.nonce);
            counter_block[12..].copy_from_slice(&(block_index as u32).to_be_bytes());
            let keystream = self.cipher.encrypt_block(&counter_block);
            for (i, byte) in chunk.iter().enumerate() {
                out.push(byte ^ keystream[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let ctr = AesCtr::new(&[1u8; 16], &[2u8; 12]);
        for len in [0, 1, 15, 16, 17, 31, 32, 100] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(ctr.apply(&ctr.apply(&data)), data, "len {len}");
        }
    }

    #[test]
    fn nonce_separates_streams() {
        let a = AesCtr::new(&[1u8; 16], &[0u8; 12]);
        let b = AesCtr::new(&[1u8; 16], &[1u8; 12]);
        assert_ne!(a.apply(b"same plaintext"), b.apply(b"same plaintext"));
    }

    #[test]
    fn keystream_blocks_differ() {
        // Ensure the counter actually increments per block.
        let ctr = AesCtr::new(&[3u8; 16], &[4u8; 12]);
        let zeros = vec![0u8; 32];
        let ks = ctr.apply(&zeros);
        assert_ne!(ks[..16], ks[16..]);
    }
}
