//! Diffie–Hellman key agreement over GF(2²⁵⁵ − 19).
//!
//! After remote attestation, the guest and the guest owner need a shared
//! session key for secret provisioning (§2.4 step 8 of the paper). The
//! artifact uses scripts from AMD's `sev-guest` repository; we implement a
//! classic Diffie–Hellman exchange over the prime field GF(p) with
//! p = 2²⁵⁵ − 19 (the curve25519 prime, used here as a *field* DH modulus,
//! not as an elliptic curve — documented substitution in DESIGN.md).
//!
//! Public keys are generated inside encrypted guest memory at attestation
//! time, so they never appear in the plain-text initrd (§2.6,
//! "Secret-free Construction").

use std::fmt;
use std::sync::OnceLock;

use crate::bigint::BigUint;
use crate::sha2::sha256;

/// p = 2²⁵⁵ − 19.
fn modulus() -> &'static BigUint {
    static P: OnceLock<BigUint> = OnceLock::new();
    P.get_or_init(|| BigUint::one().shl(255).sub(&BigUint::from_u64(19)))
}

/// Generator g = 2.
fn generator() -> &'static BigUint {
    static G: OnceLock<BigUint> = OnceLock::new();
    G.get_or_init(|| BigUint::from_u64(2))
}

/// A Diffie–Hellman public key (32 bytes, big-endian field element).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DhPublicKey(pub [u8; 32]);

impl fmt::Debug for DhPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DhPublicKey({}…)", crate::hex::to_hex(&self.0[..4]))
    }
}

/// A derived 32-byte shared secret: SHA-256 of the raw DH output.
#[derive(Clone, PartialEq, Eq)]
pub struct DhSharedSecret(pub [u8; 32]);

impl fmt::Debug for DhSharedSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        write!(f, "DhSharedSecret(<32 bytes>)")
    }
}

impl DhSharedSecret {
    /// Splits the shared secret into an AES key and a MAC key
    /// (encrypt-then-MAC key separation via domain-tagged SHA-256).
    pub fn derive_keys(&self) -> ([u8; 16], [u8; 32]) {
        let mut enc_input = b"sevf-enc".to_vec();
        enc_input.extend_from_slice(&self.0);
        let enc = sha256(&enc_input);
        let mut mac_input = b"sevf-mac".to_vec();
        mac_input.extend_from_slice(&self.0);
        let mac = sha256(&mac_input);
        let mut enc_key = [0u8; 16];
        enc_key.copy_from_slice(&enc[..16]);
        (enc_key, mac)
    }
}

/// A Diffie–Hellman key pair.
///
/// # Example
///
/// ```
/// use sevf_crypto::DhKeyPair;
///
/// let guest = DhKeyPair::from_seed(b"guest entropy");
/// let owner = DhKeyPair::from_seed(b"owner entropy");
/// let a = guest.shared_secret(&owner.public_key());
/// let b = owner.shared_secret(&guest.public_key());
/// assert_eq!(a, b);
/// ```
#[derive(Clone)]
pub struct DhKeyPair {
    private: BigUint,
    public: DhPublicKey,
}

impl fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DhKeyPair(public: {:?})", self.public)
    }
}

impl DhKeyPair {
    /// Derives a key pair deterministically from seed entropy.
    ///
    /// The private scalar is SHA-256 of the seed (domain-tagged), clamped to
    /// 254 bits so it is nonzero and less than the modulus.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut input = b"sevf-dh-priv".to_vec();
        input.extend_from_slice(seed);
        let mut scalar_bytes = sha256(&input);
        scalar_bytes[0] &= 0x3f; // < 2^254 < p
        scalar_bytes[31] |= 0x01; // nonzero
        let private = BigUint::from_bytes_be(&scalar_bytes);
        let public_value = generator().modpow(&private, modulus());
        let public = DhPublicKey(
            public_value
                .to_bytes_be_padded(32)
                .try_into()
                .expect("field element fits in 32 bytes"),
        );
        DhKeyPair { private, public }
    }

    /// Returns the public key.
    pub fn public_key(&self) -> DhPublicKey {
        self.public.clone()
    }

    /// Computes the shared secret with a peer's public key.
    pub fn shared_secret(&self, peer: &DhPublicKey) -> DhSharedSecret {
        let peer_value = BigUint::from_bytes_be(&peer.0);
        let raw = peer_value.modpow(&self.private, modulus());
        let mut input = b"sevf-dh-shared".to_vec();
        input.extend_from_slice(&raw.to_bytes_be_padded(32));
        DhSharedSecret(sha256(&input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_2_255_minus_19() {
        let p = modulus();
        assert_eq!(p.bit_len(), 255);
        assert_eq!(p.add(&BigUint::from_u64(19)), BigUint::one().shl(255));
    }

    #[test]
    fn key_agreement_commutes() {
        let a = DhKeyPair::from_seed(b"alpha");
        let b = DhKeyPair::from_seed(b"bravo");
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }

    #[test]
    fn different_peers_different_secrets() {
        let a = DhKeyPair::from_seed(b"alpha");
        let b = DhKeyPair::from_seed(b"bravo");
        let c = DhKeyPair::from_seed(b"charlie");
        assert_ne!(
            a.shared_secret(&b.public_key()),
            a.shared_secret(&c.public_key())
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let a1 = DhKeyPair::from_seed(b"same");
        let a2 = DhKeyPair::from_seed(b"same");
        assert_eq!(a1.public_key(), a2.public_key());
    }

    #[test]
    fn derive_keys_are_independent() {
        let a = DhKeyPair::from_seed(b"alpha");
        let b = DhKeyPair::from_seed(b"bravo");
        let s = a.shared_secret(&b.public_key());
        let (enc, mac) = s.derive_keys();
        assert_ne!(&enc[..], &mac[..16]);
    }

    #[test]
    fn debug_impls_hide_secrets() {
        let a = DhKeyPair::from_seed(b"alpha");
        let s = a.shared_secret(&a.public_key());
        assert_eq!(format!("{s:?}"), "DhSharedSecret(<32 bytes>)");
        assert!(!format!("{a:?}").contains("private"));
    }
}
