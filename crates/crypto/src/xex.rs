//! AES-128 in XEX (xor–encrypt–xor) tweakable mode.
//!
//! This is the model for the SEV memory-encryption engine embedded in the
//! memory controller. The tweak is derived from the *physical address* of
//! each 16-byte unit, which reproduces the property the paper leans on in
//! §6.2 and §7.1: **identical plaintext at different physical locations has
//! different ciphertext**, which is why KVM pins guest pages during boot and
//! why page deduplication is incompatible with SEV.
//!
//! XEX(K, T, P) = E(K, P ⊕ Δ) ⊕ Δ where Δ = E(K, T) multiplied by αʲ in
//! GF(2¹²⁸) for the j-th block of a page.

use crate::aes::Aes128;

/// A tweakable XEX cipher bound to one guest's memory-encryption key.
///
/// # Example
///
/// ```
/// use sevf_crypto::XexCipher;
///
/// let engine = XexCipher::new(&[9u8; 16]);
/// let page = vec![0xabu8; 4096];
/// let ct_a = engine.encrypt(0x1000, &page);
/// let ct_b = engine.encrypt(0x2000, &page);
/// assert_ne!(ct_a, ct_b, "same plaintext, different addresses");
/// assert_eq!(engine.decrypt(0x1000, &ct_a), page);
/// ```
#[derive(Clone, Debug)]
pub struct XexCipher {
    cipher: Aes128,
}

/// Doubling (multiplication by α = x) in GF(2¹²⁸) with the XTS polynomial
/// x¹²⁸ + x⁷ + x² + x + 1, operating on a little-endian 16-byte value.
fn gf128_double(block: &mut [u8; 16]) {
    let mut carry = 0u8;
    for b in block.iter_mut() {
        let new_carry = *b >> 7;
        *b = (*b << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        block[0] ^= 0x87;
    }
}

impl XexCipher {
    /// Creates an engine with the given 16-byte memory-encryption key.
    pub fn new(key: &[u8; 16]) -> Self {
        XexCipher {
            cipher: Aes128::new(key),
        }
    }

    /// Encrypts `data` located at guest-physical address `address`.
    ///
    /// `data` is processed in 16-byte units; a trailing partial unit is
    /// covered with a CTR-style keystream so arbitrary lengths work.
    pub fn encrypt(&self, address: u64, data: &[u8]) -> Vec<u8> {
        self.apply(address, data, true)
    }

    /// Decrypts `data` located at guest-physical address `address`.
    pub fn decrypt(&self, address: u64, data: &[u8]) -> Vec<u8> {
        self.apply(address, data, false)
    }

    fn tweak_for(&self, address: u64) -> [u8; 16] {
        let mut tweak_block = [0u8; 16];
        tweak_block[..8].copy_from_slice(&address.to_le_bytes());
        self.cipher.encrypt_block(&tweak_block)
    }

    fn apply(&self, address: u64, data: &[u8], encrypt: bool) -> Vec<u8> {
        let mut delta = self.tweak_for(address);
        let mut out = Vec::with_capacity(data.len());
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            for (b, d) in block.iter_mut().zip(&delta) {
                *b ^= d;
            }
            let transformed = if encrypt {
                self.cipher.encrypt_block(&block)
            } else {
                self.cipher.decrypt_block(&block)
            };
            for (t, d) in transformed.iter().zip(&delta) {
                out.push(t ^ d);
            }
            gf128_double(&mut delta);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            // Partial final unit: XOR with E(K, Δ) keystream (direction-agnostic).
            let keystream = self.cipher.encrypt_block(&delta);
            for (i, byte) in tail.iter().enumerate() {
                out.push(byte ^ keystream[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned_and_partial() {
        let engine = XexCipher::new(&[5u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 48, 100, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = engine.encrypt(0xdead_0000, &data);
            assert_eq!(engine.decrypt(0xdead_0000, &ct), data, "len {len}");
        }
    }

    #[test]
    fn address_tweak_changes_ciphertext() {
        let engine = XexCipher::new(&[5u8; 16]);
        let data = vec![0x11u8; 64];
        assert_ne!(engine.encrypt(0x1000, &data), engine.encrypt(0x1010, &data));
    }

    #[test]
    fn per_block_tweak_differs_within_a_page() {
        let engine = XexCipher::new(&[5u8; 16]);
        let data = vec![0x22u8; 32];
        let ct = engine.encrypt(0, &data);
        assert_ne!(ct[..16], ct[16..], "identical blocks must not repeat");
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let a = XexCipher::new(&[1u8; 16]);
        let b = XexCipher::new(&[2u8; 16]);
        let data = b"the guest's secrets live here!!!".to_vec();
        let ct = a.encrypt(0x8000, &data);
        assert_ne!(b.decrypt(0x8000, &ct), data);
    }

    #[test]
    fn gf_double_carry_path() {
        let mut block = [0u8; 16];
        block[15] = 0x80;
        gf128_double(&mut block);
        assert_eq!(block[0], 0x87);
        assert_eq!(block[15], 0x00);
    }

    #[test]
    fn ciphertext_same_length_as_plaintext() {
        let engine = XexCipher::new(&[0u8; 16]);
        for len in [3usize, 16, 33] {
            assert_eq!(engine.encrypt(0, &vec![0; len]).len(), len);
        }
    }
}
