//! Property-based tests for the cryptographic primitives.
//!
//! Seeded XorShift64 case generation keeps the sweep deterministic without
//! an external property-testing dependency.

use sevf_crypto::{Aes128, AesCtr, BigUint, DhKeyPair, XexCipher};
use sevf_sim::rng::XorShift64;

const CASES: u64 = 64;

fn bytes(rng: &mut XorShift64, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len as u64 + rng.next_below((max_len - min_len) as u64 + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn array<const N: usize>(rng: &mut XorShift64) -> [u8; N] {
    let mut out = [0u8; N];
    for b in &mut out {
        *b = rng.next_u64() as u8;
    }
    out
}

#[test]
fn biguint_add_commutes() {
    let mut rng = XorShift64::new(0xC4A_0001);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&bytes(&mut rng, 0, 39));
        let y = BigUint::from_bytes_be(&bytes(&mut rng, 0, 39));
        assert_eq!(x.add(&y), y.add(&x));
    }
}

#[test]
fn biguint_mul_commutes_and_distributes() {
    let mut rng = XorShift64::new(0xC4A_0002);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&bytes(&mut rng, 0, 23));
        let y = BigUint::from_bytes_be(&bytes(&mut rng, 0, 23));
        let z = BigUint::from_bytes_be(&bytes(&mut rng, 0, 23));
        assert_eq!(x.mul(&y), y.mul(&x));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }
}

#[test]
fn biguint_div_rem_invariant() {
    let mut rng = XorShift64::new(0xC4A_0003);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&bytes(&mut rng, 0, 31));
        let divisor: Vec<u8> = (0..1 + rng.next_below(15))
            .map(|_| 1 + (rng.next_u64() % 255) as u8)
            .collect();
        let y = BigUint::from_bytes_be(&divisor);
        let (q, r) = x.div_rem(&y);
        assert!(r < y);
        assert_eq!(q.mul(&y).add(&r), x);
    }
}

#[test]
fn biguint_nth_root_bounds() {
    let mut rng = XorShift64::new(0xC4A_0004);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&bytes(&mut rng, 1, 19));
        let n = 1 + (rng.next_below(4) as u32);
        let r = x.nth_root(n);
        assert!(r.pow_small(n) <= x);
        assert!(r.add(&BigUint::one()).pow_small(n) > x);
    }
}

#[test]
fn biguint_bytes_roundtrip() {
    let mut rng = XorShift64::new(0xC4A_0005);
    for _ in 0..CASES {
        let x = BigUint::from_bytes_be(&bytes(&mut rng, 0, 63));
        assert_eq!(BigUint::from_bytes_be(&x.to_bytes_be()), x);
    }
}

#[test]
fn aes_block_roundtrip() {
    let mut rng = XorShift64::new(0xC4A_0006);
    for _ in 0..CASES {
        let key: [u8; 16] = array(&mut rng);
        let block: [u8; 16] = array(&mut rng);
        let cipher = Aes128::new(&key);
        assert_eq!(cipher.decrypt_block(&cipher.encrypt_block(&block)), block);
    }
}

#[test]
fn ctr_roundtrip() {
    let mut rng = XorShift64::new(0xC4A_0007);
    for _ in 0..CASES {
        let key: [u8; 16] = array(&mut rng);
        let nonce: [u8; 12] = array(&mut rng);
        let data = bytes(&mut rng, 0, 511);
        let ctr = AesCtr::new(&key, &nonce);
        assert_eq!(ctr.apply(&ctr.apply(&data)), data);
    }
}

#[test]
fn xex_roundtrip() {
    let mut rng = XorShift64::new(0xC4A_0008);
    for _ in 0..CASES {
        let key: [u8; 16] = array(&mut rng);
        let addr = rng.next_u64();
        let data = bytes(&mut rng, 0, 511);
        let engine = XexCipher::new(&key);
        let ct = engine.encrypt(addr, &data);
        assert_eq!(ct.len(), data.len());
        assert_eq!(engine.decrypt(addr, &ct), data);
    }
}

#[test]
fn xex_address_binding() {
    let mut rng = XorShift64::new(0xC4A_0009);
    for _ in 0..CASES {
        let key: [u8; 16] = array(&mut rng);
        let addr = rng.next_u64();
        let data = bytes(&mut rng, 16, 127);
        let engine = XexCipher::new(&key);
        let ct = engine.encrypt(addr, &data);
        let moved = engine.decrypt(addr.wrapping_add(16), &ct);
        assert_ne!(moved, data, "relocating ciphertext must corrupt plaintext");
    }
}

#[test]
fn dh_agreement() {
    let mut rng = XorShift64::new(0xC4A_000A);
    for _ in 0..CASES {
        let a = DhKeyPair::from_seed(&bytes(&mut rng, 1, 31));
        let b = DhKeyPair::from_seed(&bytes(&mut rng, 1, 31));
        assert_eq!(
            a.shared_secret(&b.public_key()),
            b.shared_secret(&a.public_key())
        );
    }
}

#[test]
fn hmac_is_deterministic_and_key_sensitive() {
    let mut rng = XorShift64::new(0xC4A_000B);
    for _ in 0..CASES {
        let key = bytes(&mut rng, 1, 63);
        let data = bytes(&mut rng, 0, 255);
        let t1 = sevf_crypto::hmac_sha384(&key, &data);
        let t2 = sevf_crypto::hmac_sha384(&key, &data);
        assert_eq!(t1, t2);
        let mut other_key = key.clone();
        other_key[0] ^= 1;
        assert_ne!(t1, sevf_crypto::hmac_sha384(&other_key, &data));
    }
}

#[test]
fn sha256_streaming_equivalence() {
    let mut rng = XorShift64::new(0xC4A_000C);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 0, 1023);
        let split = (rng.next_u64() as usize % 1024).min(data.len());
        let mut h = sevf_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        assert_eq!(h.finalize(), sevf_crypto::sha256(&data));
    }
}
