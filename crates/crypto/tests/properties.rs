//! Property-based tests for the cryptographic primitives.

use proptest::prelude::*;
use sevf_crypto::{AesCtr, Aes128, BigUint, DhKeyPair, XexCipher};

proptest! {
    #[test]
    fn biguint_add_commutes(a in proptest::collection::vec(any::<u8>(), 0..40),
                            b in proptest::collection::vec(any::<u8>(), 0..40)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        prop_assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn biguint_mul_commutes_and_distributes(
        a in proptest::collection::vec(any::<u8>(), 0..24),
        b in proptest::collection::vec(any::<u8>(), 0..24),
        c in proptest::collection::vec(any::<u8>(), 0..24)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        let z = BigUint::from_bytes_be(&c);
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
    }

    #[test]
    fn biguint_div_rem_invariant(
        a in proptest::collection::vec(any::<u8>(), 0..32),
        b in proptest::collection::vec(1u8..=255, 1..16)) {
        let x = BigUint::from_bytes_be(&a);
        let y = BigUint::from_bytes_be(&b);
        let (q, r) = x.div_rem(&y);
        prop_assert!(r < y);
        prop_assert_eq!(q.mul(&y).add(&r), x);
    }

    #[test]
    fn biguint_nth_root_bounds(
        a in proptest::collection::vec(any::<u8>(), 1..20),
        n in 1u32..5) {
        let x = BigUint::from_bytes_be(&a);
        let r = x.nth_root(n);
        prop_assert!(r.pow_small(n) <= x);
        prop_assert!(r.add(&BigUint::one()).pow_small(n) > x);
    }

    #[test]
    fn biguint_bytes_roundtrip(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        let x = BigUint::from_bytes_be(&a);
        prop_assert_eq!(BigUint::from_bytes_be(&x.to_bytes_be()), x);
    }

    #[test]
    fn aes_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        prop_assert_eq!(cipher.decrypt_block(&cipher.encrypt_block(&block)), block);
    }

    #[test]
    fn ctr_roundtrip(key in any::<[u8; 16]>(), nonce in any::<[u8; 12]>(),
                     data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ctr = AesCtr::new(&key, &nonce);
        prop_assert_eq!(ctr.apply(&ctr.apply(&data)), data);
    }

    #[test]
    fn xex_roundtrip(key in any::<[u8; 16]>(), addr in any::<u64>(),
                     data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let engine = XexCipher::new(&key);
        let ct = engine.encrypt(addr, &data);
        prop_assert_eq!(ct.len(), data.len());
        prop_assert_eq!(engine.decrypt(addr, &ct), data);
    }

    #[test]
    fn xex_address_binding(key in any::<[u8; 16]>(), addr in any::<u64>(),
                           data in proptest::collection::vec(any::<u8>(), 16..128)) {
        let engine = XexCipher::new(&key);
        let ct = engine.encrypt(addr, &data);
        let moved = engine.decrypt(addr.wrapping_add(16), &ct);
        prop_assert_ne!(moved, data, "relocating ciphertext must corrupt plaintext");
    }

    #[test]
    fn dh_agreement(seed_a in proptest::collection::vec(any::<u8>(), 1..32),
                    seed_b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let a = DhKeyPair::from_seed(&seed_a);
        let b = DhKeyPair::from_seed(&seed_b);
        prop_assert_eq!(a.shared_secret(&b.public_key()), b.shared_secret(&a.public_key()));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let t1 = sevf_crypto::hmac_sha384(&key, &data);
        let t2 = sevf_crypto::hmac_sha384(&key, &data);
        prop_assert_eq!(t1, t2);
        let mut other_key = key.clone();
        other_key[0] ^= 1;
        prop_assert_ne!(t1, sevf_crypto::hmac_sha384(&other_key, &data));
    }

    #[test]
    fn sha256_streaming_equivalence(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        split in 0usize..1024) {
        let split = split.min(data.len());
        let mut h = sevf_crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sevf_crypto::sha256(&data));
    }
}
