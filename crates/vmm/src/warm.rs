//! Warm start for SEV microVMs (§7.1 of the paper).
//!
//! The paper argues cold start must come first, because the obvious warm
//! paths all run into SEV's guarantees:
//!
//! * **Keep-alive** windows are functionally correct but hold the guest's
//!   whole working set, and unlike plain-text VMs the pages **cannot be
//!   deduplicated** — identical plaintext has different ciphertext across
//!   VMs (different VEKs, and an address tweak within a VM), and the host
//!   cannot even *read* plaintext to compare. [`dedupable_fraction`]
//!   measures this directly.
//! * **Snapshot restore** needs the host to place pages, but under SNP the
//!   host cannot write guest-owned pages; every lazy-load scheme needs
//!   guest cooperation. [`KeepAliveVm::restore`] models the functionally
//!   correct variant: restoring *into the same live PSP context* during a
//!   keep-alive window (same key), with the copy cost paid eagerly.
//!
//! [`KeepAliveVm`] holds a booted guest (memory + PSP context) so warm
//! invocations skip the entire boot path; the experiments quantify the
//! memory rent this charges.

use sevf_crypto::sha256;
use sevf_mem::{MemError, PAGE_SIZE};
use sevf_sim::{CostModel, Nanos};

use crate::config::VmConfig;
use crate::vmm::LiveGuest;

/// A booted guest kept resident for warm invocations.
pub struct KeepAliveVm {
    config: VmConfig,
    live: LiveGuest,
    invocations: u64,
}

impl std::fmt::Debug for KeepAliveVm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeepAliveVm")
            .field("kernel", &self.config.kernel.name)
            .field("resident_bytes", &self.resident_bytes())
            .field("invocations", &self.invocations)
            .finish()
    }
}

/// Timing of one warm invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmInvocation {
    /// Virtual time from request to the function entry point — no VMM
    /// spawn, no launch, no verification, no kernel boot.
    pub latency: Nanos,
}

impl KeepAliveVm {
    pub(crate) fn new(config: VmConfig, live: LiveGuest) -> Self {
        KeepAliveVm {
            config,
            live,
            invocations: 0,
        }
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Host memory this keep-alive holds (its resident guest pages) — the
    /// rent §7.1 warns about.
    pub fn resident_bytes(&self) -> u64 {
        self.live.mem.resident_pages() as u64 * PAGE_SIZE
    }

    /// Dispatches a warm invocation into the running guest: wake the vCPU,
    /// deliver the request, enter the function. No boot path is executed.
    pub fn invoke(&mut self, cost: &CostModel) -> WarmInvocation {
        self.invocations += 1;
        // vCPU kick (one exit), request copy, scheduler wakeup.
        WarmInvocation {
            latency: cost.vc_exit + Nanos::from_micros(180),
        }
    }

    /// Number of warm invocations served.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The running kernel's entry point (differs across boots under KASLR).
    pub fn kernel_entry(&self) -> u64 {
        self.live.kernel_entry
    }

    /// Hashes of every *host-visible* resident page, for dedup analysis:
    /// this is what a KSM-style scanner could see (ciphertext for private
    /// pages, plaintext for shared ones).
    pub fn host_page_digests(&self) -> Result<Vec<[u8; 32]>, MemError> {
        let mem = &self.live.mem;
        let mut digests = Vec::new();
        // Only resident (touched) pages have host backing; untouched pages
        // are not materialized and cost a deduplicator nothing.
        for addr in mem.resident_page_addrs() {
            let page = mem.host_read(addr, PAGE_SIZE)?;
            digests.push(sha256(&page));
        }
        Ok(digests)
    }

    /// Takes a snapshot of the live guest (memory image + entry point).
    pub fn snapshot(&self) -> VmSnapshot {
        VmSnapshot {
            config: self.config.clone(),
            mem_image: self.live.mem.clone_pages(),
            kernel_entry: self.live.kernel_entry,
        }
    }

    /// Restores a snapshot *into this keep-alive's PSP context* (same
    /// memory-encryption key — the only restore SEV permits without guest
    /// cooperation, §7.1). Returns the virtual-time cost of the eager copy.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, and rejects snapshots from a different
    /// configuration.
    pub fn restore(&mut self, snapshot: &VmSnapshot, cost: &CostModel) -> Result<Nanos, MemError> {
        assert_eq!(
            snapshot.config, self.config,
            "snapshots only restore into their own configuration"
        );
        let bytes = self.live.mem.restore_pages(&snapshot.mem_image);
        self.live.kernel_entry = snapshot.kernel_entry;
        Ok(cost.cpu_copy_to_encrypted(bytes))
    }
}

/// A captured guest memory image.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    config: VmConfig,
    mem_image: sevf_mem::MemoryImage,
    kernel_entry: u64,
}

impl VmSnapshot {
    /// Size of the captured image in bytes.
    pub fn image_bytes(&self) -> u64 {
        self.mem_image.byte_len()
    }
}

/// Fraction of host-visible page content shared by at least two of the
/// given VMs — what a KSM-style deduplicator could reclaim. Under SEV this
/// collapses to (nearly) the plain-text staging pages only.
///
/// # Errors
///
/// Propagates memory faults.
///
/// # Panics
///
/// Panics if `vms` is empty.
pub fn dedupable_fraction(vms: &[&KeepAliveVm]) -> Result<f64, MemError> {
    assert!(!vms.is_empty());
    let mut counts: std::collections::HashMap<[u8; 32], u64> = std::collections::HashMap::new();
    let mut total = 0u64;
    for vm in vms {
        for digest in vm.host_page_digests()? {
            *counts.entry(digest).or_insert(0) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return Ok(0.0);
    }
    // A page is "dedupable" if its content appears more than once: all but
    // one copy could be reclaimed.
    let reclaimable: u64 = counts.values().map(|&c| c.saturating_sub(1)).sum();
    Ok(reclaimable as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BootPolicy;
    use crate::machine::Machine;
    use crate::vmm::MicroVm;

    fn keep_alive(policy: BootPolicy, machine: &mut Machine) -> KeepAliveVm {
        let vm = MicroVm::new(VmConfig::test_tiny(policy)).unwrap();
        if policy.is_sev() {
            vm.register_expected(machine).unwrap();
        }
        vm.boot_keep_alive(machine).unwrap().1
    }

    #[test]
    fn warm_invocation_is_orders_of_magnitude_faster_than_cold() {
        let mut m = Machine::new(71);
        let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
        vm.register_expected(&mut m).unwrap();
        let (cold, mut warm_vm) = vm.boot_keep_alive(&mut m).unwrap();
        let warm = warm_vm.invoke(&m.cost);
        assert!(cold.boot_time() > warm.latency.scale(100));
        assert_eq!(warm_vm.invocations(), 1);
    }

    #[test]
    fn keep_alive_charges_memory_rent() {
        let mut m = Machine::new(71);
        let vm = keep_alive(BootPolicy::Severifast, &mut m);
        // The resident set covers at least the kernel + initrd copies.
        assert!(vm.resident_bytes() > 1024 * 1024, "{}", vm.resident_bytes());
    }

    #[test]
    fn sev_keep_alives_barely_dedup_plain_ones_dedup_well() {
        let mut m = Machine::new(71);
        let sev_a = keep_alive(BootPolicy::Severifast, &mut m);
        let sev_b = keep_alive(BootPolicy::Severifast, &mut m);
        let sev_fraction = dedupable_fraction(&[&sev_a, &sev_b]).unwrap();

        let plain_a = keep_alive(BootPolicy::StockFirecracker, &mut m);
        let plain_b = keep_alive(BootPolicy::StockFirecracker, &mut m);
        let plain_fraction = dedupable_fraction(&[&plain_a, &plain_b]).unwrap();

        // §7.1: identical plain-text VMs dedup nearly half their pages
        // (two identical copies), SEV VMs only their shared staging pages.
        assert!(plain_fraction > 0.4, "plain {plain_fraction}");
        assert!(
            sev_fraction < plain_fraction / 2.0,
            "sev {sev_fraction} vs plain {plain_fraction}"
        );
    }

    #[test]
    fn snapshot_restore_roundtrips_into_same_context() {
        let mut m = Machine::new(71);
        let mut vm = keep_alive(BootPolicy::Severifast, &mut m);
        let snapshot = vm.snapshot();
        assert!(snapshot.image_bytes() > 0);
        // Mutate the live guest, then restore.
        let before = vm.host_page_digests().unwrap();
        vm.invoke(&m.cost);
        let cost = vm.restore(&snapshot, &m.cost).unwrap();
        assert!(cost > Nanos::ZERO);
        assert_eq!(vm.host_page_digests().unwrap(), before);
    }

    #[test]
    #[should_panic(expected = "own configuration")]
    fn snapshot_rejects_foreign_configuration() {
        let mut m = Machine::new(71);
        let sev = keep_alive(BootPolicy::Severifast, &mut m);
        let mut plain = keep_alive(BootPolicy::StockFirecracker, &mut m);
        let snapshot = sev.snapshot();
        let _ = plain.restore(&snapshot, &m.cost);
    }
}
