//! The kernel command line.
//!
//! §4.2: the cmdline is supplied by the client, has a 4 KiB maximum, and
//! Firecracker's default is 155 bytes — small enough that pre-encrypting it
//! is cheaper than adding hash-and-verify plumbing for it.

/// Maximum command line length Linux accepts.
pub const CMDLINE_MAX: usize = 4096;

/// The Firecracker-style default command line used throughout the paper's
/// experiments (sized to the 155 bytes Fig. 7 reports).
pub fn default_cmdline() -> String {
    let mut cmdline = "console=ttyS0 reboot=k panic=1 pci=off nomodule 8250.nr_uarts=0 \
         i8042.noaux i8042.nomux i8042.nopnp i8042.dumbkbd tsc=reliable ipv6.disable=1 \
         quiet"
        .to_string();
    debug_assert!(cmdline.len() <= 155);
    // Pad with spaces to exactly the paper's 155 bytes for size fidelity.
    while cmdline.len() < 155 {
        cmdline.push(' ');
    }
    cmdline
}

/// Validates a client-supplied command line.
///
/// # Errors
///
/// Rejects empty, oversized, or non-ASCII/NUL-containing command lines.
pub fn validate(cmdline: &str) -> Result<(), &'static str> {
    if cmdline.is_empty() {
        return Err("command line is empty");
    }
    if cmdline.len() > CMDLINE_MAX {
        return Err("command line exceeds 4096 bytes");
    }
    if cmdline.bytes().any(|b| b == 0 || !b.is_ascii()) {
        return Err("command line must be NUL-free ASCII");
    }
    Ok(())
}

/// Serializes the command line into its pre-encrypted page (NUL-terminated).
pub fn to_page(cmdline: &str) -> [u8; 4096] {
    let mut page = [0u8; 4096];
    page[..cmdline.len()].copy_from_slice(cmdline.as_bytes());
    page
}

/// Reads a command line back from its page.
pub fn from_page(page: &[u8]) -> String {
    let end = page.iter().position(|&b| b == 0).unwrap_or(page.len());
    String::from_utf8_lossy(&page[..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_155_bytes() {
        // Fig. 7: the default Firecracker cmdline is 155 B.
        let c = default_cmdline();
        assert_eq!(c.len(), 155);
        assert!(validate(&c).is_ok());
        assert!(c.contains("console=ttyS0"));
    }

    #[test]
    fn page_roundtrip() {
        let c = default_cmdline();
        assert_eq!(from_page(&to_page(&c)), c);
    }

    #[test]
    fn validation_limits() {
        assert!(validate("").is_err());
        assert!(validate(&"x".repeat(4097)).is_err());
        assert!(validate(&"x".repeat(4096)).is_ok());
        assert!(validate("has\0nul").is_err());
        assert!(validate("émoji").is_err());
    }
}
