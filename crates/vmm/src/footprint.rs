//! Memory-footprint accounting (§6.3).
//!
//! The paper measures, with `pmap`, that SEV support adds about 50 KB to
//! the Firecracker binary (total ≈ 4.2 MB) and about 16 KB of runtime
//! overhead per guest — so SEV density on a host is essentially unchanged.

use crate::config::{BootPolicy, VmConfig};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Stock Firecracker binary size.
pub const FC_BINARY_BASE: u64 = 4 * MB + 150 * KB;
/// Binary growth from the SEV support module (§6.3: "about 50K").
pub const SEV_BINARY_DELTA: u64 = 50 * KB;
/// Runtime (pmap minus binary minus guest memory) overhead of a stock VM —
/// Firecracker's ~3 MB working overhead.
pub const VMM_RUNTIME_OVERHEAD: u64 = 3 * MB;
/// Extra runtime overhead of an SEV guest (§6.3: "about 16K").
pub const SEV_RUNTIME_DELTA: u64 = 16 * KB;
/// QEMU's footprint, for contrast (two orders of magnitude heavier).
pub const QEMU_BINARY: u64 = 38 * MB;
/// QEMU per-VM runtime overhead.
pub const QEMU_RUNTIME_OVERHEAD: u64 = 90 * MB;

/// The pmap-style decomposition of one running VM's host memory use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Monitor binary (shared across VMs, counted once per VM as pmap does).
    pub binary: u64,
    /// Runtime overhead excluding binary and guest memory.
    pub runtime_overhead: u64,
    /// Guest memory size.
    pub guest_memory: u64,
}

impl MemoryFootprint {
    /// Footprint of a VM under the given configuration.
    pub fn of(config: &VmConfig) -> Self {
        let (binary, runtime_overhead) = match config.policy {
            BootPolicy::StockFirecracker => {
                (FC_BINARY_BASE + SEV_BINARY_DELTA, VMM_RUNTIME_OVERHEAD)
            }
            BootPolicy::Severifast | BootPolicy::SeverifastVmlinux => (
                // Same binary as stock (§6.1: one binary serves both paths),
                // plus the per-guest SEV overhead at runtime.
                FC_BINARY_BASE + SEV_BINARY_DELTA,
                VMM_RUNTIME_OVERHEAD + SEV_RUNTIME_DELTA,
            ),
            BootPolicy::QemuOvmf => (QEMU_BINARY, QEMU_RUNTIME_OVERHEAD + SEV_RUNTIME_DELTA),
        };
        MemoryFootprint {
            binary,
            runtime_overhead,
            guest_memory: config.mem_size,
        }
    }

    /// Total host bytes attributable to the VM.
    pub fn total(&self) -> u64 {
        self.binary + self.runtime_overhead + self.guest_memory
    }

    /// The §6.3 metric: pmap total minus binary minus guest memory.
    pub fn overhead(&self) -> u64 {
        self.runtime_overhead
    }
}

/// How many VMs of this configuration fit in `host_bytes` of RAM (binary
/// counted once — it is shared).
pub fn density(config: &VmConfig, host_bytes: u64) -> u64 {
    let fp = MemoryFootprint::of(config);
    let per_vm = fp.runtime_overhead + fp.guest_memory;
    host_bytes.saturating_sub(fp.binary) / per_vm.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sev_adds_16k_runtime_overhead() {
        let stock = MemoryFootprint::of(&VmConfig::test_tiny(BootPolicy::StockFirecracker));
        let sevf = MemoryFootprint::of(&VmConfig::test_tiny(BootPolicy::Severifast));
        assert_eq!(sevf.overhead() - stock.overhead(), SEV_RUNTIME_DELTA);
        assert_eq!(sevf.binary, stock.binary, "one binary serves both paths");
    }

    #[test]
    fn binary_is_about_4_2_mb() {
        let fp = MemoryFootprint::of(&VmConfig::test_tiny(BootPolicy::Severifast));
        let mb = fp.binary as f64 / MB as f64;
        assert!((4.1..4.3).contains(&mb), "binary {mb} MB");
    }

    #[test]
    fn density_nearly_unchanged_by_sev() {
        // §6.3: "the number of guests that can run concurrently with our
        // design is roughly the same as the number of stock Firecracker VMs".
        let host = 128 * 1024 * MB; // the paper machine's 128 GB
        let stock = density(
            &VmConfig::paper_default(
                BootPolicy::StockFirecracker,
                sevf_image::kernel::KernelConfig::aws(),
            ),
            host,
        );
        let sevf = density(
            &VmConfig::paper_default(
                BootPolicy::Severifast,
                sevf_image::kernel::KernelConfig::aws(),
            ),
            host,
        );
        assert!(stock > 0 && sevf > 0);
        let loss = (stock - sevf) as f64 / stock as f64;
        assert!(loss < 0.001, "density loss {loss}");
    }

    #[test]
    fn qemu_is_much_heavier() {
        let q = MemoryFootprint::of(&VmConfig::test_tiny(BootPolicy::QemuOvmf));
        let f = MemoryFootprint::of(&VmConfig::test_tiny(BootPolicy::Severifast));
        assert!(q.binary + q.runtime_overhead > 10 * (f.binary + f.runtime_overhead));
    }
}
