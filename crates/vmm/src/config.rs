//! VM configuration and boot policies.

use sevf_codec::Codec;
use sevf_image::kernel::KernelConfig;
use sevf_sim::cost::SevGeneration;

const MB: u64 = 1024 * 1024;

/// Which boot path a VM takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootPolicy {
    /// Stock Firecracker: non-SEV, direct uncompressed-vmlinux boot (§2.1).
    StockFirecracker,
    /// SEVeriFast: minimal boot verifier + LZ4 bzImage (§4).
    Severifast,
    /// SEVeriFast with the optimized uncompressed-vmlinux loader (§5).
    SeverifastVmlinux,
    /// The QEMU/OVMF baseline (§2.5).
    QemuOvmf,
}

impl BootPolicy {
    /// Label used in figures.
    pub fn name(self) -> &'static str {
        match self {
            BootPolicy::StockFirecracker => "Stock FC",
            BootPolicy::Severifast => "SEVeriFast",
            BootPolicy::SeverifastVmlinux => "SEVeriFast vmlinux",
            BootPolicy::QemuOvmf => "QEMU/OVMF",
        }
    }

    /// Whether this policy launches an SEV guest.
    pub fn is_sev(self) -> bool {
        !matches!(self, BootPolicy::StockFirecracker)
    }

    /// Whether the kernel image is a compressed bzImage under this policy.
    pub fn uses_bzimage(self) -> bool {
        matches!(self, BootPolicy::Severifast | BootPolicy::QemuOvmf)
    }
}

impl std::fmt::Display for BootPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the SEV launch context is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchMode {
    /// Full launch: fresh key, every root-of-trust byte measured by the PSP
    /// (the paper's design).
    Normal,
    /// Shared-key template launch (the paper's future-work sketch, §6.2):
    /// after one full launch of a configuration, subsequent identical VMs
    /// reuse its key and measurement, skipping almost all PSP work. Weakens
    /// isolation between VMs of the same owner (§8).
    SharedKeyTemplate,
}

/// Kernel address-space layout randomization strategy (§8's related-work
/// discussion: "SEVeriFast breaks in-monitor KASLR").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KaslrMode {
    /// No randomization (the paper's evaluation setting).
    Off,
    /// In-monitor KASLR (Holmes et al., EuroSys'22): the *VMM* picks the
    /// randomized base. Only possible for non-SEV direct boot — under SEV
    /// the relocation would change measured state, and a randomization the
    /// host chooses protects nobody from the host.
    InMonitor,
    /// Guest-side KASLR: the bzImage's bootstrap loader randomizes the
    /// vmlinux placement *inside encrypted memory*, invisible to the host
    /// and to the launch measurement.
    GuestSide,
}

/// Full configuration of one microVM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Boot path.
    pub policy: BootPolicy,
    /// SEV launch-context creation mode.
    pub launch_mode: LaunchMode,
    /// KASLR strategy.
    pub kaslr: KaslrMode,
    /// SEV generation for SEV policies (§6.1: the paper evaluates SNP).
    pub generation: SevGeneration,
    /// Guest kernel.
    pub kernel: KernelConfig,
    /// bzImage payload codec (Fig. 5; LZ4 is the design choice of §4.4).
    pub kernel_codec: Codec,
    /// Initrd codec (§3.3: None — compression does not pay for the initrd).
    pub initrd_codec: Codec,
    /// Uncompressed initrd payload size.
    pub initrd_size: u64,
    /// Number of vCPUs (paper: 1).
    pub vcpus: u64,
    /// Guest memory (paper: 256 MB).
    pub mem_size: u64,
    /// Transparent huge pages on the host (paper: enabled).
    pub huge_pages: bool,
    /// Jitter seed; `None` disables noise (deterministic breakdowns).
    pub jitter_seed: Option<u64>,
}

impl VmConfig {
    /// The paper's standard VM: 1 vCPU, 256 MB, SNP, LZ4 bzImage,
    /// uncompressed initrd, huge pages on.
    pub fn paper_default(policy: BootPolicy, kernel: KernelConfig) -> Self {
        VmConfig {
            policy,
            launch_mode: LaunchMode::Normal,
            kaslr: KaslrMode::Off,
            generation: if policy.is_sev() {
                SevGeneration::SevSnp
            } else {
                SevGeneration::None
            },
            kernel,
            kernel_codec: Codec::Lz4,
            initrd_codec: Codec::None,
            initrd_size: sevf_image::initrd::FULL_SIZE,
            vcpus: 1,
            mem_size: 256 * MB,
            huge_pages: true,
            jitter_seed: None,
        }
    }

    /// A small, fast configuration for tests (tiny kernel, 64 MB guest,
    /// 64 KiB initrd).
    pub fn test_tiny(policy: BootPolicy) -> Self {
        VmConfig {
            initrd_size: 64 * 1024,
            mem_size: 64 * MB,
            ..Self::paper_default(policy, KernelConfig::test_tiny())
        }
    }

    /// Sets the jitter seed (builder style).
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.vcpus == 0 {
            return Err("at least one vCPU required");
        }
        if self.mem_size < 32 * MB {
            return Err("guest memory must be at least 32 MB");
        }
        if self.policy.is_sev() != self.generation.is_sev() {
            return Err("policy and SEV generation disagree");
        }
        if self.policy == BootPolicy::SeverifastVmlinux && self.kernel_codec != Codec::None {
            return Err("vmlinux policy boots an uncompressed kernel");
        }
        if self.kaslr == KaslrMode::InMonitor && self.policy.is_sev() {
            return Err("in-monitor KASLR is incompatible with SEV (§8): the VMM \
                        cannot relocate measured state, and host-chosen \
                        randomization protects nothing from the host");
        }
        if self.kaslr == KaslrMode::GuestSide && !self.policy.uses_bzimage() {
            return Err("guest-side KASLR lives in the bzImage bootstrap loader");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = VmConfig::paper_default(BootPolicy::Severifast, KernelConfig::aws());
        assert_eq!(c.vcpus, 1);
        assert_eq!(c.mem_size, 256 * MB);
        assert_eq!(c.kernel_codec, Codec::Lz4);
        assert_eq!(c.initrd_codec, Codec::None);
        assert!(c.huge_pages);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn stock_policy_is_non_sev() {
        let c = VmConfig::paper_default(BootPolicy::StockFirecracker, KernelConfig::aws());
        assert_eq!(c.generation, SevGeneration::None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut c = VmConfig::paper_default(BootPolicy::Severifast, KernelConfig::aws());
        c.generation = SevGeneration::None;
        assert!(c.validate().is_err());

        let mut c = VmConfig::paper_default(BootPolicy::SeverifastVmlinux, KernelConfig::aws());
        assert!(c.validate().is_err(), "vmlinux policy must use Codec::None");
        c.kernel_codec = Codec::None;
        assert!(c.validate().is_ok());

        let mut c = VmConfig::test_tiny(BootPolicy::Severifast);
        c.vcpus = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_predicates() {
        assert!(!BootPolicy::StockFirecracker.is_sev());
        assert!(BootPolicy::Severifast.uses_bzimage());
        assert!(!BootPolicy::SeverifastVmlinux.uses_bzimage());
        assert_eq!(BootPolicy::QemuOvmf.to_string(), "QEMU/OVMF");
    }
}
