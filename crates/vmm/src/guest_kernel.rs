//! The guest-kernel runtime: from kernel entry to `init`.
//!
//! Stands in for executing Linux. Two stages:
//!
//! * **Bootstrap loader** (bzImage boots only, Fig. 11's third bar): the
//!   setup stub decompresses the payload — really decompressed here, with
//!   the codec's calibrated throughput — parses the inner ELF, and places
//!   its segments.
//! * **Linux boot**: validates `boot_params`, the mptable, and the command
//!   line (all read from pre-encrypted memory), unpacks the initrd CPIO and
//!   checks `/init` is runnable, then replays the boot-phase costs from the
//!   kernel's embedded descriptor, multiplied by the SEV generation factor
//!   (§6.2: ≈ 2.3× under SNP from #VC handling and RMP-checked writes).

use sevf_image::bzimage;
use sevf_image::cpio;
use sevf_image::elf::ElfImage;
use sevf_image::kernel::KernelDescriptor;
use sevf_mem::{GuestMemory, PAGE_SIZE};
use sevf_sim::cost::{CostModel, SevGeneration};
use sevf_sim::Nanos;
use sevf_verifier::layout::{BOOT_PARAMS_ADDR, CMDLINE_ADDR, KERNEL_DEST, MPTABLE_ADDR};
use sevf_verifier::loader::Step;

use crate::boot_params::BootParams;
use crate::cmdline;
use crate::mptable;

/// Errors from the guest kernel's own boot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestBootError {
    /// Memory fault while the kernel ran.
    Memory(sevf_mem::MemError),
    /// The bzImage payload failed to decompress or parse.
    Image(sevf_image::ImageError),
    /// A pre-encrypted boot structure failed validation.
    BadStructure(&'static str),
    /// The initrd was unusable (bad CPIO, missing /init).
    BadInitrd(&'static str),
}

impl std::fmt::Display for GuestBootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestBootError::Memory(e) => write!(f, "guest memory fault: {e}"),
            GuestBootError::Image(e) => write!(f, "kernel image error: {e}"),
            GuestBootError::BadStructure(w) => write!(f, "boot structure invalid: {w}"),
            GuestBootError::BadInitrd(w) => write!(f, "initrd invalid: {w}"),
        }
    }
}

impl std::error::Error for GuestBootError {}

impl From<sevf_mem::MemError> for GuestBootError {
    fn from(e: sevf_mem::MemError) -> Self {
        GuestBootError::Memory(e)
    }
}

impl From<sevf_image::ImageError> for GuestBootError {
    fn from(e: sevf_image::ImageError) -> Self {
        GuestBootError::Image(e)
    }
}

/// Result of the bootstrap-loader stage.
#[derive(Debug, Clone)]
pub struct LoaderStage {
    /// Entry point of the decompressed, placed vmlinux.
    pub vmlinux_entry: u64,
    /// Costed steps.
    pub steps: Vec<Step>,
}

/// Runs the bzImage bootstrap loader: decompress the payload at
/// `bzimage_addr` and place the inner vmlinux's segments (all in private
/// memory).
///
/// # Errors
///
/// Propagates image and memory faults as [`GuestBootError`].
pub fn run_bootstrap_loader(
    mem: &mut GuestMemory,
    bzimage_addr: u64,
    bzimage_len: u64,
    cost: &CostModel,
) -> Result<LoaderStage, GuestBootError> {
    run_bootstrap_loader_kaslr(mem, bzimage_addr, bzimage_len, cost, 0)
}

/// [`run_bootstrap_loader`] with a guest-side KASLR slide: every segment
/// (and the entry point) is placed `slide` bytes above its linked address.
/// The slide is chosen *inside the guest* (§8: unlike in-monitor KASLR,
/// this survives SEV — the host never learns the placement and the launch
/// measurement is unchanged).
///
/// # Errors
///
/// Propagates image and memory faults as [`GuestBootError`].
///
/// # Panics
///
/// Panics if `slide` is not 2 MiB aligned.
pub fn run_bootstrap_loader_kaslr(
    mem: &mut GuestMemory,
    bzimage_addr: u64,
    bzimage_len: u64,
    cost: &CostModel,
    slide: u64,
) -> Result<LoaderStage, GuestBootError> {
    assert_eq!(
        slide % (2 * 1024 * 1024),
        0,
        "KASLR slide must be 2 MiB aligned"
    );
    let mut steps = Vec::new();
    let image = mem.guest_read(bzimage_addr, bzimage_len, true)?;
    let (payload, codec) = bzimage::parse(&image)?;
    let vmlinux = codec
        .decompress(&payload)
        .map_err(sevf_image::ImageError::from)?;
    steps.push(Step::new(
        format!(
            "decompress {} payload ({} → {} B)",
            codec,
            payload.len(),
            vmlinux.len()
        ),
        cost.decompress(codec, vmlinux.len() as u64),
    ));
    let elf = ElfImage::parse(&vmlinux)?;
    let mut placed = 0u64;
    for seg in &elf.segments {
        mem.guest_write(seg.vaddr + slide, &seg.data, true)?;
        if seg.bss > 0 {
            mem.guest_write(
                seg.vaddr + slide + seg.data.len() as u64,
                &vec![0u8; seg.bss as usize],
                true,
            )?;
        }
        placed += seg.mem_size();
    }
    let label = if slide == 0 {
        format!("place {} ELF segments ({placed} B)", elf.segments.len())
    } else {
        format!(
            "place {} ELF segments ({placed} B, KASLR slide {:#x})",
            elf.segments.len(),
            slide
        )
    };
    steps.push(Step::new(
        label,
        cost.cpu_copy_to_encrypted(placed)
            + cost.elf_segment_overhead.scale(elf.segments.len() as u64),
    ));
    Ok(LoaderStage {
        vmlinux_entry: elf.entry + slide,
        steps,
    })
}

/// Result of the Linux boot stage.
#[derive(Debug, Clone)]
pub struct KernelStage {
    /// The descriptor found at the entry point.
    pub descriptor: KernelDescriptor,
    /// Parsed boot_params.
    pub boot_params: BootParams,
    /// Number of initrd files unpacked.
    pub initrd_files: usize,
    /// Costed steps.
    pub steps: Vec<Step>,
}

/// Runs the guest kernel from its entry point to `init`.
///
/// `encrypted` is false for non-SEV guests (everything is plain memory).
///
/// # Errors
///
/// [`GuestBootError`] on any validation failure — a kernel that cannot
/// trust its boot structures refuses to come up.
pub fn run_kernel(
    mem: &mut GuestMemory,
    entry: u64,
    generation: SevGeneration,
    cost: &CostModel,
) -> Result<KernelStage, GuestBootError> {
    let encrypted = generation.is_sev();
    let mut steps = Vec::new();

    // The descriptor sits at the kernel entry point.
    let head = mem.guest_read(entry, 256, encrypted)?;
    let descriptor = KernelDescriptor::from_bytes(&head)?;
    let multiplier = cost.linux_boot_multiplier(generation);

    // Early boot: paging, consoles, per-CPU. Validates boot_params.
    let bp_bytes = mem.guest_read(BOOT_PARAMS_ADDR, PAGE_SIZE, encrypted)?;
    let boot_params = BootParams::from_page(&bp_bytes).map_err(GuestBootError::BadStructure)?;
    let cl_page = mem.guest_read(boot_params.cmdline_ptr, PAGE_SIZE, encrypted)?;
    let cl = cmdline::from_page(&cl_page);
    cmdline::validate(&cl).map_err(GuestBootError::BadStructure)?;
    if boot_params.cmdline_ptr != CMDLINE_ADDR {
        return Err(GuestBootError::BadStructure("cmdline pointer unexpected"));
    }
    steps.push(Step::new(
        "early boot (paging, boot_params, cmdline)",
        Nanos::from_micros(descriptor.phases.early_us as u64).scale_f64(multiplier),
    ));

    // Driver init: scans the mptable.
    let mp_bytes = mem.guest_read(MPTABLE_ADDR, PAGE_SIZE, encrypted)?;
    let mp = mptable::validate(&mp_bytes).map_err(GuestBootError::BadStructure)?;
    if u64::from(boot_params.vcpus) != mp.vcpus {
        return Err(GuestBootError::BadStructure(
            "mptable CPU count disagrees with boot_params",
        ));
    }
    steps.push(Step::new(
        format!("driver init ({} CPUs)", mp.vcpus),
        Nanos::from_micros(descriptor.phases.drivers_us as u64).scale_f64(multiplier),
    ));

    // Late boot: unpack the initrd and exec /init. A compressed initrd
    // (the Fig. 5 comparison point; not the recommended configuration) is
    // decompressed first, paying the codec's calibrated cost.
    let staged = mem.guest_read(boot_params.initrd_addr, boot_params.initrd_size, encrypted)?;
    let initrd = match detect_initrd_codec(&staged) {
        None => staged,
        Some(codec) => {
            let unpacked = codec
                .decompress(&staged)
                .map_err(|_| GuestBootError::BadInitrd("initrd decompression failed"))?;
            steps.push(Step::new(
                format!(
                    "decompress {} initrd ({} → {} B)",
                    codec,
                    staged.len(),
                    unpacked.len()
                ),
                cost.decompress(codec, unpacked.len() as u64)
                    .scale_f64(multiplier),
            ));
            unpacked
        }
    };
    let entries = cpio::parse(&initrd).map_err(|_| GuestBootError::BadInitrd("bad CPIO"))?;
    let init = entries
        .iter()
        .find(|e| e.name == "init")
        .ok_or(GuestBootError::BadInitrd("missing /init"))?;
    if init.mode & 0o111 == 0 {
        return Err(GuestBootError::BadInitrd("/init not executable"));
    }
    let unpack_cost = cost.cpu_copy_plain(boot_params.initrd_size)
        + cost.cpio_entry_overhead.scale(entries.len() as u64);
    steps.push(Step::new(
        format!("unpack initrd ({} files)", entries.len()),
        unpack_cost.scale_f64(multiplier),
    ));
    steps.push(Step::new(
        "late boot, mount rootfs, exec /init",
        Nanos::from_micros(descriptor.phases.late_us as u64).scale_f64(multiplier),
    ));

    Ok(KernelStage {
        descriptor,
        boot_params,
        initrd_files: entries.len(),
        steps,
    })
}

/// Convenience: the total baseline (non-SEV) kernel boot time for checks.
pub fn baseline_kernel_time(descriptor: &KernelDescriptor) -> Nanos {
    Nanos::from_micros(descriptor.phases.total_us())
}

/// The guest kernel's entry point after a bzImage boot is the decompressed
/// vmlinux base; after a direct boot it is the staged entry.
pub fn default_entry() -> u64 {
    KERNEL_DEST
}

/// Detects whether a staged initrd is wrapped in one of the `sevf-codec`
/// containers (`None` = a raw CPIO archive).
pub fn detect_initrd_codec(bytes: &[u8]) -> Option<sevf_codec::Codec> {
    use sevf_codec::Codec;
    if bytes.len() < 6 {
        return None;
    }
    match &bytes[..4] {
        b"SVST" => Some(Codec::None),
        b"SVL4" => Some(Codec::Lz4),
        b"SVLZ" => {
            // The window-log byte distinguishes the two LZH profiles.
            if bytes[4] as u32 >= sevf_codec::lzh::ZSTD_WINDOW_LOG {
                Some(Codec::Zstd)
            } else {
                Some(Codec::Deflate)
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BootPolicy, VmConfig};
    use sevf_codec::Codec;
    use sevf_verifier::layout::GuestLayout;

    /// Builds a guest where the verifier has already placed everything
    /// (private memory populated directly for unit-testing the kernel).
    fn guest_after_verifier() -> (GuestMemory, u64, u64) {
        let config = VmConfig::test_tiny(BootPolicy::Severifast);
        let image = config.kernel.build();
        let bz = image.bzimage(Codec::Lz4);
        let initrd = sevf_image::initrd::build_initrd(config.initrd_size);
        let layout =
            GuestLayout::plan(config.mem_size, bz.len() as u64, initrd.len() as u64).unwrap();

        let mut mem = GuestMemory::new_sev(config.mem_size, [7u8; 16], SevGeneration::SevSnp);
        mem.rmp_assign(0, layout.staging_base).unwrap();
        mem.pvalidate(0, layout.staging_base).unwrap();
        mem.guest_write(layout.kernel_dest, &bz, true).unwrap();
        mem.guest_write(layout.initrd_dest, &initrd, true).unwrap();
        let bp = BootParams::build(&config, &layout);
        mem.guest_write(BOOT_PARAMS_ADDR, &bp.to_page(), true)
            .unwrap();
        mem.guest_write(MPTABLE_ADDR, &mptable::build(config.vcpus), true)
            .unwrap();
        mem.guest_write(
            CMDLINE_ADDR,
            &cmdline::to_page(&cmdline::default_cmdline()),
            true,
        )
        .unwrap();
        (mem, layout.kernel_dest, bz.len() as u64)
    }

    #[test]
    fn bootstrap_loader_decompresses_and_places() {
        let (mut mem, bz_addr, bz_len) = guest_after_verifier();
        let stage =
            run_bootstrap_loader(&mut mem, bz_addr, bz_len, &CostModel::calibrated()).unwrap();
        assert_eq!(stage.vmlinux_entry, sevf_image::kernel::KERNEL_BASE);
        assert!(stage.steps.iter().any(|s| s.label.contains("decompress")));
        // Descriptor readable at the placed entry.
        let head = mem.guest_read(stage.vmlinux_entry, 128, true).unwrap();
        assert!(KernelDescriptor::from_bytes(&head).is_ok());
    }

    #[test]
    fn kernel_boots_to_init() {
        let (mut mem, bz_addr, bz_len) = guest_after_verifier();
        let cost = CostModel::calibrated();
        let loader = run_bootstrap_loader(&mut mem, bz_addr, bz_len, &cost).unwrap();
        let stage =
            run_kernel(&mut mem, loader.vmlinux_entry, SevGeneration::SevSnp, &cost).unwrap();
        assert_eq!(stage.descriptor.name, "test-tiny");
        assert!(stage.initrd_files >= 5);
        assert!(stage.steps.iter().any(|s| s.label.contains("/init")));
    }

    #[test]
    fn snp_multiplier_slows_kernel_boot() {
        let cost = CostModel::calibrated();
        let (mut mem_a, bz_addr, bz_len) = guest_after_verifier();
        let loader = run_bootstrap_loader(&mut mem_a, bz_addr, bz_len, &cost).unwrap();
        let snp = run_kernel(
            &mut mem_a,
            loader.vmlinux_entry,
            SevGeneration::SevSnp,
            &cost,
        )
        .unwrap();
        let snp_total: Nanos = snp.steps.iter().map(|s| s.duration).sum();
        // §6.2: about 2.3× the baseline.
        let baseline = baseline_kernel_time(&snp.descriptor);
        let ratio = snp_total.as_millis_f64() / baseline.as_millis_f64();
        assert!(
            (1.8..2.6).contains(&ratio),
            "SNP multiplier landed at {ratio:.2}"
        );
    }

    #[test]
    fn corrupt_boot_params_refuse_boot() {
        let (mut mem, bz_addr, bz_len) = guest_after_verifier();
        let cost = CostModel::calibrated();
        let loader = run_bootstrap_loader(&mut mem, bz_addr, bz_len, &cost).unwrap();
        mem.guest_write(BOOT_PARAMS_ADDR, &[0xffu8; 64], true)
            .unwrap();
        assert!(matches!(
            run_kernel(&mut mem, loader.vmlinux_entry, SevGeneration::SevSnp, &cost),
            Err(GuestBootError::BadStructure(_))
        ));
    }

    #[test]
    fn corrupt_mptable_refuses_boot() {
        let (mut mem, bz_addr, bz_len) = guest_after_verifier();
        let cost = CostModel::calibrated();
        let loader = run_bootstrap_loader(&mut mem, bz_addr, bz_len, &cost).unwrap();
        let mut mp = mem.guest_read(MPTABLE_ADDR, PAGE_SIZE, true).unwrap();
        mp[50] ^= 0xff;
        mem.guest_write(MPTABLE_ADDR, &mp, true).unwrap();
        assert!(run_kernel(&mut mem, loader.vmlinux_entry, SevGeneration::SevSnp, &cost).is_err());
    }

    #[test]
    fn missing_init_refuses_boot() {
        let (mut mem, bz_addr, bz_len) = guest_after_verifier();
        let cost = CostModel::calibrated();
        let loader = run_bootstrap_loader(&mut mem, bz_addr, bz_len, &cost).unwrap();
        // Replace the initrd with a valid CPIO that lacks /init.
        let bogus = sevf_image::cpio::build(&[sevf_image::cpio::CpioEntry::file(
            "not-init",
            vec![1, 2, 3],
        )]);
        let bp_bytes = mem.guest_read(BOOT_PARAMS_ADDR, PAGE_SIZE, true).unwrap();
        let mut bp = BootParams::from_page(&bp_bytes).unwrap();
        mem.guest_write(bp.initrd_addr, &bogus, true).unwrap();
        bp.initrd_size = bogus.len() as u64;
        mem.guest_write(BOOT_PARAMS_ADDR, &bp.to_page(), true)
            .unwrap();
        assert!(matches!(
            run_kernel(&mut mem, loader.vmlinux_entry, SevGeneration::SevSnp, &cost),
            Err(GuestBootError::BadInitrd(_))
        ));
    }

    #[test]
    fn plain_guest_runs_without_encryption() {
        // Stock Firecracker path: same kernel logic, plain memory.
        let config = VmConfig::test_tiny(BootPolicy::StockFirecracker);
        let image = config.kernel.build();
        let initrd = sevf_image::initrd::build_initrd(config.initrd_size);
        let layout = GuestLayout::plan(
            config.mem_size,
            image.vmlinux().len() as u64,
            initrd.len() as u64,
        )
        .unwrap();
        let mut mem = GuestMemory::new_plain(config.mem_size);
        for seg in &image.elf().segments {
            mem.host_write(seg.vaddr, &seg.data).unwrap();
        }
        mem.host_write(layout.initrd_dest, &initrd).unwrap();
        let bp = BootParams::build(&config, &layout);
        mem.host_write(BOOT_PARAMS_ADDR, &bp.to_page()).unwrap();
        mem.host_write(MPTABLE_ADDR, &mptable::build(1)).unwrap();
        mem.host_write(CMDLINE_ADDR, &cmdline::to_page(&cmdline::default_cmdline()))
            .unwrap();
        let stage = run_kernel(
            &mut mem,
            image.elf().entry,
            SevGeneration::None,
            &CostModel::calibrated(),
        )
        .unwrap();
        assert_eq!(stage.descriptor.name, "test-tiny");
    }
}
