//! Out-of-band component hashing (§4.3).
//!
//! Hashing the kernel and initrd in the VMM "could add up to 23 ms of boot
//! time", so SEVeriFast moves it off the critical path: a tool hashes the
//! components ahead of time and the VMM is handed the hash file. The hashes
//! end up pre-encrypted (and thus in the launch measurement), so this does
//! not weaken the trust story. Hash files are cached per component set,
//! modelling the paper's assumption that thousands of VMs share one kernel.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use sevf_crypto::sha256;
use sevf_image::elf::{EHDR_SIZE, PHDR_SIZE};
use sevf_verifier::hashes::{HashPage, KernelHashes};

use crate::config::BootPolicy;

/// Computes (or fetches) the hash page for a kernel image + initrd pair
/// under the given policy.
///
/// For bzImage policies the kernel hash covers the whole image file; for
/// the vmlinux policy it is the three fw_cfg piece hashes (§5).
///
/// # Errors
///
/// Returns an error if the vmlinux policy is asked to hash a non-ELF image.
pub fn precomputed_hash_page(
    policy: BootPolicy,
    kernel_image: &[u8],
    initrd: &[u8],
) -> Result<HashPage, sevf_image::ImageError> {
    /// Cache key: (kernel digest, initrd digest, vmlinux-mode flag).
    type HashKey = ([u8; 32], [u8; 32], bool);
    static CACHE: OnceLock<Mutex<HashMap<HashKey, HashPage>>> = OnceLock::new();
    let vmlinux_mode = policy == BootPolicy::SeverifastVmlinux;
    // Key the cache by content digests (cheap relative to re-deriving the
    // fw_cfg pieces on every boot).
    let key = (sha256(kernel_image), sha256(initrd), vmlinux_mode);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(page) = cache.lock().expect("hash cache").get(&key) {
        return Ok(*page);
    }
    let kernel = if vmlinux_mode {
        // The staged image is the fw_cfg concatenation
        // [ehdr][phdrs][segment data] — split it the way the verifier's
        // loader will consume it.
        if kernel_image.len() < EHDR_SIZE || &kernel_image[..4] != b"\x7fELF" {
            return Err(sevf_image::ImageError::BadElf(
                "staged fw_cfg image lacks an ELF header",
            ));
        }
        let phnum = u16::from_le_bytes(kernel_image[56..58].try_into().expect("2 bytes")) as usize;
        let phdrs_end = EHDR_SIZE + phnum * PHDR_SIZE;
        if phnum == 0 || phdrs_end > kernel_image.len() {
            return Err(sevf_image::ImageError::BadElf(
                "staged fw_cfg program headers out of bounds",
            ));
        }
        KernelHashes::FwCfg {
            ehdr: sha256(&kernel_image[..EHDR_SIZE]),
            phdrs: sha256(&kernel_image[EHDR_SIZE..phdrs_end]),
            segments: sha256(&kernel_image[phdrs_end..]),
        }
    } else {
        KernelHashes::WholeImage(key.0)
    };
    let page = HashPage {
        kernel,
        initrd: key.1,
    };
    cache.lock().expect("hash cache").insert(key, page);
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_codec::Codec;
    use sevf_image::kernel::KernelConfig;

    #[test]
    fn bzimage_mode_hashes_whole_file() {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let page = precomputed_hash_page(BootPolicy::Severifast, &bz, b"initrd").unwrap();
        assert_eq!(page.kernel, KernelHashes::WholeImage(sha256(&bz)));
        assert_eq!(page.initrd, sha256(b"initrd"));
    }

    #[test]
    fn vmlinux_mode_hashes_three_pieces() {
        let image = KernelConfig::test_tiny().build();
        let (ehdr, phdrs, segs) = image.elf().fw_cfg_pieces();
        let mut staged = ehdr.clone();
        staged.extend_from_slice(&phdrs);
        staged.extend_from_slice(&segs);
        let page =
            precomputed_hash_page(BootPolicy::SeverifastVmlinux, &staged, b"initrd").unwrap();
        assert_eq!(
            page.kernel,
            KernelHashes::FwCfg {
                ehdr: sha256(&ehdr),
                phdrs: sha256(&phdrs),
                segments: sha256(&segs),
            }
        );
    }

    #[test]
    fn vmlinux_mode_rejects_non_elf() {
        assert!(precomputed_hash_page(BootPolicy::SeverifastVmlinux, b"not an elf", b"i").is_err());
    }

    #[test]
    fn cache_is_consistent() {
        let image = KernelConfig::test_tiny().build();
        let bz = image.bzimage(Codec::Lz4);
        let a = precomputed_hash_page(BootPolicy::Severifast, &bz, b"initrd").unwrap();
        let b = precomputed_hash_page(BootPolicy::Severifast, &bz, b"initrd").unwrap();
        assert_eq!(a, b);
    }
}
