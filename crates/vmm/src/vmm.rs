//! The microVM monitor: boot orchestration for all four policies.

use std::sync::Arc;

use sevf_attest::{expected_measurement, AttestError, GuestAttestClient, MeasuredItem};
use sevf_codec::Codec;
use sevf_image::ImageError;
use sevf_mem::{GuestMemory, MemError};
use sevf_ovmf::{OvmfImage, OVMF_BASE};
use sevf_psp::PspError;
use sevf_sim::cost::SevGeneration;
use sevf_sim::rng::Jitter;
use sevf_sim::{EventChannel, Nanos, PhaseKind, ResourceClass, Timeline};
use sevf_verifier::binary::{VerifierBinary, VerifierFeatures};
use sevf_verifier::layout::{
    GuestLayout, BOOT_PARAMS_ADDR, CMDLINE_ADDR, HASH_PAGE_ADDR, MPTABLE_ADDR, VERIFIER_ADDR,
};
use sevf_verifier::verify::{self, KernelKind, VerifierConfig};
use sevf_verifier::VerifierError;

use crate::boot_params::BootParams;
use crate::cmdline;
use crate::config::{BootPolicy, KaslrMode, LaunchMode, VmConfig};
use crate::guest_kernel::{self, GuestBootError};
use crate::hashes_file::precomputed_hash_page;
use crate::machine::Machine;
use crate::mptable;
use crate::report::{BootOutcome, BootReport};

/// Errors surfaced by a boot attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum VmmError {
    /// The configuration is inconsistent.
    Config(&'static str),
    /// The components do not fit the guest memory map.
    Layout(&'static str),
    /// A PSP command failed.
    Psp(PspError),
    /// A host-side memory operation failed.
    Mem(MemError),
    /// The boot verifier refused to boot.
    Verifier(VerifierError),
    /// The guest kernel refused to boot.
    Guest(GuestBootError),
    /// Remote attestation failed.
    Attest(AttestError),
    /// A boot image could not be built or parsed.
    Image(ImageError),
}

impl std::fmt::Display for VmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmmError::Config(w) => write!(f, "invalid configuration: {w}"),
            VmmError::Layout(w) => write!(f, "layout error: {w}"),
            VmmError::Psp(e) => write!(f, "PSP error: {e}"),
            VmmError::Mem(e) => write!(f, "memory error: {e}"),
            VmmError::Verifier(e) => write!(f, "boot verifier: {e}"),
            VmmError::Guest(e) => write!(f, "guest kernel: {e}"),
            VmmError::Attest(e) => write!(f, "attestation: {e}"),
            VmmError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl std::error::Error for VmmError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for VmmError {
            fn from(e: $ty) -> Self {
                VmmError::$variant(e)
            }
        }
    };
}
from_err!(Psp, PspError);
from_err!(Mem, MemError);
from_err!(Verifier, VerifierError);
from_err!(Guest, GuestBootError);
from_err!(Attest, AttestError);
from_err!(Image, ImageError);

/// A configured microVM, ready to boot on a [`Machine`].
#[derive(Debug, Clone)]
pub struct MicroVm {
    config: VmConfig,
}

/// A booted guest's live state, for warm-start experiments (§7.1).
pub(crate) struct LiveGuest {
    /// The guest's memory, exactly as left at `init`.
    pub(crate) mem: GuestMemory,
    /// The PSP launch context (SEV boots) — kept alive so the PSP retains
    /// the guest's key for the duration of a keep-alive window.
    #[allow(dead_code)]
    pub(crate) guest: Option<sevf_psp::GuestHandle>,
    /// The loaded kernel's entry point.
    pub(crate) kernel_entry: u64,
}

/// Everything boot needs that is derivable from the config alone.
struct Artifacts {
    kernel_bytes: Arc<Vec<u8>>,
    initrd_bytes: Vec<u8>,
    layout: GuestLayout,
    verifier: Option<VerifierBinary>,
    ovmf: Option<OvmfImage>,
}

impl MicroVm {
    /// Validates the configuration and wraps it.
    ///
    /// # Errors
    ///
    /// [`VmmError::Config`] on inconsistent configurations.
    pub fn new(config: VmConfig) -> Result<Self, VmmError> {
        config.validate().map_err(VmmError::Config)?;
        Ok(MicroVm { config })
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    fn artifacts(&self) -> Result<Artifacts, VmmError> {
        let image = self.config.kernel.build();
        let kernel_bytes: Arc<Vec<u8>> = match self.config.policy {
            BootPolicy::Severifast | BootPolicy::QemuOvmf => {
                image.bzimage(self.config.kernel_codec)
            }
            BootPolicy::SeverifastVmlinux => {
                // fw_cfg staging: [ehdr][phdrs][segments] back to back.
                let (ehdr, phdrs, segs) = image.elf().fw_cfg_pieces();
                let mut staged = ehdr;
                staged.extend_from_slice(&phdrs);
                staged.extend_from_slice(&segs);
                Arc::new(staged)
            }
            BootPolicy::StockFirecracker => Arc::new(image.vmlinux().to_vec()),
        };
        let raw_initrd = sevf_image::initrd::build_initrd(self.config.initrd_size);
        let initrd_bytes = match self.config.initrd_codec {
            Codec::None => (*raw_initrd).clone(),
            codec => codec.compress(&raw_initrd),
        };
        let layout = GuestLayout::plan_with_expansion(
            self.config.mem_size,
            kernel_bytes.len() as u64,
            initrd_bytes.len() as u64,
            self.config.policy.uses_bzimage(),
        )
        .map_err(VmmError::Layout)?;
        let (verifier, ovmf) = match self.config.policy {
            BootPolicy::Severifast => (
                Some(VerifierBinary::build(VerifierFeatures::severifast())),
                None,
            ),
            BootPolicy::SeverifastVmlinux => (
                Some(VerifierBinary::build(VerifierFeatures::severifast_vmlinux())),
                None,
            ),
            BootPolicy::QemuOvmf => (None, Some(OvmfImage::build())),
            BootPolicy::StockFirecracker => (None, None),
        };
        Ok(Artifacts {
            kernel_bytes,
            initrd_bytes,
            layout,
            verifier,
            ovmf,
        })
    }

    /// The ordered pre-encryption plan (firmware, hash page, boot_params,
    /// mptable, cmdline) — the input to the expected-measurement tool
    /// (§4.2) and the exact sequence [`MicroVm::boot`] executes.
    ///
    /// # Errors
    ///
    /// [`VmmError::Config`] for non-SEV policies.
    pub fn pre_encryption_plan(&self) -> Result<Vec<MeasuredItem>, VmmError> {
        if !self.config.policy.is_sev() {
            return Err(VmmError::Config("non-SEV boots pre-encrypt nothing"));
        }
        let artifacts = self.artifacts()?;
        self.plan_from_artifacts(&artifacts)
    }

    /// [`MicroVm::pre_encryption_plan`] over artifacts the caller already
    /// built (the boot path holds them; rebuilding would re-hash the kernel).
    fn plan_from_artifacts(&self, artifacts: &Artifacts) -> Result<Vec<MeasuredItem>, VmmError> {
        let mut items = Vec::new();
        match self.config.policy {
            BootPolicy::QemuOvmf => {
                let ovmf = artifacts.ovmf.as_ref().expect("ovmf policy has image");
                let mut data = ovmf.bytes().to_vec();
                data.resize(ovmf.pre_encrypted_size() as usize, 0); // metadata pages
                items.push(MeasuredItem {
                    gpa: OVMF_BASE,
                    data,
                    label: "OVMF firmware + SNP metadata",
                });
            }
            _ => {
                let verifier = artifacts
                    .verifier
                    .as_ref()
                    .expect("sev policy has verifier");
                items.push(MeasuredItem {
                    gpa: VERIFIER_ADDR,
                    data: verifier.bytes().to_vec(),
                    label: "boot verifier",
                });
            }
        }
        let hash_page = precomputed_hash_page(
            self.config.policy,
            &artifacts.kernel_bytes,
            &artifacts.initrd_bytes,
        )?;
        items.push(MeasuredItem {
            gpa: HASH_PAGE_ADDR,
            data: hash_page.to_page().to_vec(),
            label: "kernel/initrd hash page",
        });
        items.push(MeasuredItem {
            gpa: BOOT_PARAMS_ADDR,
            data: BootParams::build(&self.config, &artifacts.layout)
                .to_page()
                .to_vec(),
            label: "boot_params",
        });
        items.push(MeasuredItem {
            gpa: MPTABLE_ADDR,
            data: mptable::build(self.config.vcpus),
            label: "mptable",
        });
        items.push(MeasuredItem {
            gpa: CMDLINE_ADDR,
            data: cmdline::to_page(&cmdline::default_cmdline()).to_vec(),
            label: "kernel command line",
        });
        Ok(items)
    }

    /// The launch digest a correct boot of this VM must produce (§4.2's
    /// out-of-band tool).
    ///
    /// # Errors
    ///
    /// [`VmmError::Config`] for non-SEV policies.
    pub fn expected_measurement(&self) -> Result<[u8; 48], VmmError> {
        let items = self.pre_encryption_plan()?;
        let vcpus = if self.config.generation.encrypts_vmsa() {
            self.config.vcpus
        } else {
            0
        };
        Ok(expected_measurement(&items, vcpus))
    }

    /// Registers this VM's expected measurement with the machine's guest
    /// owner (what a real tenant does out of band before launching).
    ///
    /// # Errors
    ///
    /// [`VmmError::Config`] for non-SEV policies.
    pub fn register_expected(&self, machine: &mut Machine) -> Result<(), VmmError> {
        machine
            .owner
            .expect_measurement(self.expected_measurement()?);
        Ok(())
    }

    /// Boots the VM on `machine`, producing a full timeline report.
    ///
    /// # Errors
    ///
    /// Any stage may refuse: layout, PSP commands, the boot verifier, the
    /// guest kernel, or remote attestation.
    pub fn boot(&self, machine: &mut Machine) -> Result<BootReport, VmmError> {
        Ok(self.boot_capturing(machine)?.0)
    }

    /// Like [`MicroVm::boot`], but keeps the booted guest alive for the
    /// §7.1 warm-start exploration: returns the running guest's memory and
    /// PSP context alongside the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MicroVm::boot`].
    pub fn boot_keep_alive(
        &self,
        machine: &mut Machine,
    ) -> Result<(BootReport, crate::warm::KeepAliveVm), VmmError> {
        let (report, live) = self.boot_capturing(machine)?;
        Ok((
            report,
            crate::warm::KeepAliveVm::new(self.config.clone(), live),
        ))
    }

    fn boot_capturing(&self, machine: &mut Machine) -> Result<(BootReport, LiveGuest), VmmError> {
        let cost = machine.cost.clone();
        let mut jitter = match self.config.jitter_seed {
            Some(seed) => Jitter::new(seed),
            None => Jitter::disabled(),
        };
        let mut tl = Timeline::new();
        let mut psp_busy = Nanos::ZERO;
        let artifacts = self.artifacts()?;
        let layout = &artifacts.layout;

        // ---- VMM process + KVM setup -------------------------------------
        let spawn = if self.config.policy == BootPolicy::QemuOvmf {
            cost.qemu_process_spawn
        } else {
            cost.fc_process_spawn
        };
        tl.push(
            PhaseKind::VmmSetup,
            "VMM process spawn + config",
            jitter.apply(spawn),
        );
        tl.push(
            PhaseKind::VmmSetup,
            "KVM VM/vCPU setup",
            jitter.apply(cost.kvm_vm_setup),
        );
        tl.push(
            PhaseKind::VmmSetup,
            "device setup (serial, virtio, debug port)",
            jitter.apply(cost.device_setup),
        );
        tl.mark(EventChannel::VmmLog, "vmm-ready");

        if !self.config.policy.is_sev() {
            return self.boot_stock(machine, tl, jitter, artifacts);
        }

        // ---- SEV launch ----------------------------------------------------
        let template = if self.config.launch_mode == LaunchMode::SharedKeyTemplate {
            machine
                .templates
                .get(&self.expected_measurement()?)
                .copied()
        } else {
            None
        };
        let (guest, mut mem, measurement) = match template {
            Some(template_guest) => self.launch_shared(
                machine,
                &mut tl,
                &mut jitter,
                &mut psp_busy,
                &artifacts,
                template_guest,
            )?,
            None => {
                let launched =
                    self.launch_full(machine, &mut tl, &mut jitter, &mut psp_busy, &artifacts)?;
                if self.config.launch_mode == LaunchMode::SharedKeyTemplate {
                    machine.templates.insert(launched.2, launched.0);
                }
                launched
            }
        };

        // ---- Enter the guest -------------------------------------------------
        tl.mark(EventChannel::GhcbMsr, "guest-entry");
        let verified = match self.config.policy {
            BootPolicy::Severifast | BootPolicy::SeverifastVmlinux => {
                let vconfig = VerifierConfig {
                    kind: if self.config.policy == BootPolicy::Severifast {
                        KernelKind::Bzimage
                    } else {
                        KernelKind::Vmlinux
                    },
                    huge_pages: self.config.huge_pages,
                    c_bit: sevf_mem::C_BIT_POSITION,
                    firmware_base: VERIFIER_ADDR,
                    firmware_size: artifacts
                        .verifier
                        .as_ref()
                        .expect("sev policy has verifier")
                        .size(),
                };
                let verified = verify::run(&mut mem, layout, &cost, vconfig)?;
                for step in &verified.steps {
                    tl.push(
                        PhaseKind::BootVerification,
                        step.label.clone(),
                        jitter.apply(step.duration),
                    );
                }
                verified
            }
            BootPolicy::QemuOvmf => {
                let boot = sevf_ovmf::boot(
                    &mut mem,
                    layout,
                    &cost,
                    KernelKind::Bzimage,
                    self.config.huge_pages,
                )?;
                for phase in &boot.phases {
                    tl.push(phase.phase, phase.name, jitter.apply(phase.duration));
                }
                for step in boot.verifier_steps() {
                    tl.push(
                        PhaseKind::BootVerification,
                        step.label.clone(),
                        jitter.apply(step.duration),
                    );
                }
                boot.verified
            }
            BootPolicy::StockFirecracker => unreachable!("handled above"),
        };
        tl.mark(EventChannel::GhcbMsr, "boot-verification-done");

        // ---- Bootstrap loader (bzImage policies) ------------------------------
        let entry = if self.config.policy.uses_bzimage() {
            // Guest-side KASLR: the loader draws a slide inside encrypted
            // memory. (Modeled with the machine RNG standing in for the
            // guest's RDRAND; the host never depends on the value.)
            let slide = if self.config.kaslr == KaslrMode::GuestSide {
                let image = self.config.kernel.build();
                Self::pick_slide(&mut machine.rng, &image, layout)
            } else {
                0
            };
            let loader = guest_kernel::run_bootstrap_loader_kaslr(
                &mut mem,
                verified.kernel_entry,
                layout.kernel_size,
                &cost,
                slide,
            )?;
            for step in &loader.steps {
                tl.push(
                    PhaseKind::BootstrapLoader,
                    step.label.clone(),
                    jitter.apply(step.duration),
                );
            }
            tl.mark(EventChannel::DebugPort, "bootstrap-loader-done");
            loader.vmlinux_entry
        } else {
            verified.kernel_entry
        };

        // ---- Linux boot ---------------------------------------------------------
        let stage = guest_kernel::run_kernel(&mut mem, entry, self.config.generation, &cost)?;
        for step in &stage.steps {
            tl.push(
                PhaseKind::LinuxBoot,
                step.label.clone(),
                jitter.apply(step.duration),
            );
        }
        tl.mark(EventChannel::DebugPort, "init");

        // ---- Remote attestation -------------------------------------------------
        let (outcome, secret) = if stage.descriptor.has_network {
            let client = GuestAttestClient::new(&measurement);
            let (report, work) = machine.psp.guest_report(guest, client.report_data())?;
            psp_busy += work.duration;
            tl.push_on(
                PhaseKind::Attestation,
                "SNP_GUEST_REQUEST (report into encrypted memory)",
                ResourceClass::Psp,
                jitter.apply(work.duration),
            );
            tl.push_on(
                PhaseKind::Attestation,
                "send report; owner validates and wraps secret",
                ResourceClass::Network,
                jitter.apply(cost.attestation_network_rtt + cost.attestation_server_validate),
            );
            let wrapped = machine.owner.handle_report(&report)?;
            let secret = client.unwrap_secret(&wrapped)?;
            tl.push(
                PhaseKind::Attestation,
                "derive session key; unwrap secret",
                jitter.apply(cost.attestation_guest_crypto),
            );
            tl.mark(EventChannel::DebugPort, "attested");
            (BootOutcome::Running, Some(secret))
        } else {
            (BootOutcome::RunningUnattested, None)
        };

        let report = BootReport {
            config: self.config.clone(),
            timeline: tl,
            outcome,
            measurement: Some(measurement),
            provisioned_secret: secret,
            psp_busy,
        };
        Ok((
            report,
            LiveGuest {
                mem,
                guest: Some(guest),
                kernel_entry: entry,
            },
        ))
    }

    /// The full SEV launch flow (§2.4): LAUNCH_START, RMP init, staging,
    /// the §4.2 pre-encryption plan, VMSAs, LAUNCH_FINISH.
    fn launch_full(
        &self,
        machine: &mut Machine,
        tl: &mut Timeline,
        jitter: &mut Jitter,
        psp_busy: &mut Nanos,
        artifacts: &Artifacts,
    ) -> Result<(sevf_psp::GuestHandle, GuestMemory, [u8; 48]), VmmError> {
        let cost = machine.cost.clone();
        let layout = &artifacts.layout;
        let start = machine.psp.launch_start(self.config.generation)?;
        *psp_busy += start.work.duration;
        tl.push_on(
            PhaseKind::PreEncryption,
            "SNP_LAUNCH_START",
            ResourceClass::Psp,
            jitter.apply(start.work.duration),
        );
        let guest = start.guest;
        let mut mem = GuestMemory::new_sev(
            self.config.mem_size,
            start.memory_key,
            self.config.generation,
        );

        let rmp = machine.psp.rmp_init(guest, &mem)?;
        *psp_busy += rmp.duration;
        tl.push_on(
            PhaseKind::VmmSetup,
            "KVM RMP/page-state initialization",
            ResourceClass::Psp,
            jitter.apply(rmp.duration),
        );
        tl.push(
            PhaseKind::VmmSetup,
            "register/pin encrypted memory regions",
            jitter.apply(cost.sev_kvm_extra),
        );

        // Stage plain-text components in the shared window.
        mem.host_write(layout.kernel_staging, &artifacts.kernel_bytes)?;
        tl.push(
            PhaseKind::VmmSetup,
            format!("stage kernel image ({} B)", artifacts.kernel_bytes.len()),
            jitter.apply(cost.cpu_copy_plain(artifacts.kernel_bytes.len() as u64)),
        );
        mem.host_write(layout.initrd_staging, &artifacts.initrd_bytes)?;
        tl.push(
            PhaseKind::VmmSetup,
            format!("stage initrd ({} B)", artifacts.initrd_bytes.len()),
            jitter.apply(cost.cpu_copy_plain(artifacts.initrd_bytes.len() as u64)),
        );

        // Pre-encrypt the root of trust (the §4.2 plan, in order).
        let plan = self.plan_from_artifacts(artifacts)?;
        for item in &plan {
            mem.host_write(item.gpa, &item.data)?;
            let work = machine.psp.launch_update_data(
                guest,
                &mut mem,
                item.gpa,
                item.data.len() as u64,
            )?;
            *psp_busy += work.duration;
            tl.push_on(
                PhaseKind::PreEncryption,
                format!("LAUNCH_UPDATE_DATA: {} ({} B)", item.label, item.data.len()),
                ResourceClass::Psp,
                jitter.apply(work.duration),
            );
        }
        if self.config.generation.encrypts_vmsa() {
            let work = machine
                .psp
                .launch_update_vmsa(guest, self.config.vcpus, &[0u8; 4096])?;
            *psp_busy += work.duration;
            tl.push_on(
                PhaseKind::PreEncryption,
                format!("LAUNCH_UPDATE_VMSA ({} vCPU)", self.config.vcpus),
                ResourceClass::Psp,
                jitter.apply(work.duration),
            );
        }
        for (base, len) in layout.private_ranges() {
            mem.rmp_assign(base, len)?;
        }
        let finish = machine.psp.launch_finish(guest)?;
        *psp_busy += finish.work.duration;
        tl.push_on(
            PhaseKind::PreEncryption,
            "SNP_LAUNCH_FINISH",
            ResourceClass::Psp,
            jitter.apply(finish.work.duration),
        );
        tl.mark(EventChannel::VmmLog, "launch-measurement-frozen");
        Ok((guest, mem, finish.measurement))
    }

    /// The shared-key template launch (future work, §6.2/§8): reuse a
    /// finalized template's key and measurement; install the attested
    /// template state with plain copies instead of PSP measurement; skip
    /// RMP re-initialization (page states are cloned copy-on-write from the
    /// template).
    fn launch_shared(
        &self,
        machine: &mut Machine,
        tl: &mut Timeline,
        jitter: &mut Jitter,
        psp_busy: &mut Nanos,
        artifacts: &Artifacts,
        template: sevf_psp::GuestHandle,
    ) -> Result<(sevf_psp::GuestHandle, GuestMemory, [u8; 48]), VmmError> {
        let cost = machine.cost.clone();
        let layout = &artifacts.layout;
        let start = machine.psp.launch_start_shared(template)?;
        *psp_busy += start.work.duration;
        tl.push_on(
            PhaseKind::PreEncryption,
            "shared-key template launch (no per-VM measurement)",
            ResourceClass::Psp,
            jitter.apply(start.work.duration),
        );
        let mut mem = GuestMemory::new_sev(
            self.config.mem_size,
            start.memory_key,
            self.config.generation,
        );

        // Stage the shared-window components exactly as a full launch does.
        mem.host_write(layout.kernel_staging, &artifacts.kernel_bytes)?;
        mem.host_write(layout.initrd_staging, &artifacts.initrd_bytes)?;
        tl.push(
            PhaseKind::VmmSetup,
            "stage kernel image + initrd",
            jitter.apply(cost.cpu_copy_plain(
                (artifacts.kernel_bytes.len() + artifacts.initrd_bytes.len()) as u64,
            )),
        );

        // Install the template's attested root-of-trust state: plain copies
        // under the shared key (no PSP involvement).
        let plan = self.plan_from_artifacts(artifacts)?;
        let mut installed = 0u64;
        for item in &plan {
            mem.host_write(item.gpa, &item.data)?;
            mem.pre_encrypt(item.gpa, item.data.len() as u64)?;
            installed += item.data.len() as u64;
        }
        tl.push(
            PhaseKind::VmmSetup,
            format!("clone template root-of-trust state ({installed} B, CoW)"),
            jitter.apply(cost.cpu_copy_plain(installed)),
        );
        for (base, len) in layout.private_ranges() {
            mem.rmp_assign(base, len)?;
        }
        tl.mark(EventChannel::VmmLog, "template-launch-ready");

        // The measurement is the template's; recomputing it locally keeps
        // the attestation path identical.
        Ok((start.guest, mem, self.expected_measurement()?))
    }

    /// Picks a 2 MiB-aligned KASLR slide that keeps the loaded kernel below
    /// the initrd destination; 0 when there is no room.
    fn pick_slide(
        rng: &mut sevf_sim::rng::XorShift64,
        image: &sevf_image::kernel::KernelImage,
        layout: &GuestLayout,
    ) -> u64 {
        const ALIGN: u64 = 2 * 1024 * 1024;
        let end = image
            .elf()
            .segments
            .iter()
            .map(|s| s.vaddr + s.mem_size())
            .max()
            .unwrap_or(0);
        if end >= layout.initrd_dest {
            return 0;
        }
        let slots = (layout.initrd_dest - end) / ALIGN;
        if slots == 0 {
            return 0;
        }
        rng.next_below(slots) * ALIGN
    }

    /// The stock Firecracker path: direct boot of an uncompressed vmlinux,
    /// no SEV (§2.1's three steps).
    fn boot_stock(
        &self,
        _machine: &mut Machine,
        mut tl: Timeline,
        mut jitter: Jitter,
        artifacts: Artifacts,
    ) -> Result<(BootReport, LiveGuest), VmmError> {
        let cost = _machine.cost.clone();
        let layout = &artifacts.layout;
        let mut mem = GuestMemory::new_plain(self.config.mem_size);
        let image = self.config.kernel.build();

        // 1. Load the kernel ELF in one operation to where it will run —
        //    with in-monitor KASLR the VMM slides the whole image
        //    (Holmes et al., EuroSys'22; only possible without SEV, §8).
        let slide = if self.config.kaslr == KaslrMode::InMonitor {
            Self::pick_slide(&mut _machine.rng, &image, layout)
        } else {
            0
        };
        let mut loaded = 0u64;
        for seg in &image.elf().segments {
            mem.host_write(seg.vaddr + slide, &seg.data)?;
            loaded += seg.data.len() as u64;
        }
        tl.push(
            PhaseKind::VmmSetup,
            format!("direct-load vmlinux segments ({loaded} B)"),
            jitter.apply(
                cost.cpu_copy_plain(loaded)
                    + cost
                        .elf_segment_overhead
                        .scale(image.elf().segments.len() as u64),
            ),
        );
        mem.host_write(layout.initrd_dest, &artifacts.initrd_bytes)?;
        tl.push(
            PhaseKind::VmmSetup,
            "load initrd",
            jitter.apply(cost.cpu_copy_plain(artifacts.initrd_bytes.len() as u64)),
        );

        // 2. Set up the data structures Linux needs.
        let mut layout_for_bp = layout.clone();
        layout_for_bp.initrd_size = artifacts.initrd_bytes.len() as u64;
        let bp = BootParams::build(&self.config, &layout_for_bp);
        mem.host_write(BOOT_PARAMS_ADDR, &bp.to_page())?;
        mem.host_write(MPTABLE_ADDR, &mptable::build(self.config.vcpus))?;
        mem.host_write(CMDLINE_ADDR, &cmdline::to_page(&cmdline::default_cmdline()))?;
        tl.push(
            PhaseKind::VmmSetup,
            "generate boot_params/mptable/cmdline",
            jitter.apply(Nanos::from_micros(120)),
        );
        tl.mark(EventChannel::VmmLog, "direct-boot-entry");

        // 3. Enter at the (possibly slid) 64-bit entry point.
        let stage = guest_kernel::run_kernel(
            &mut mem,
            image.elf().entry + slide,
            SevGeneration::None,
            &cost,
        )?;
        for step in &stage.steps {
            tl.push(
                PhaseKind::LinuxBoot,
                step.label.clone(),
                jitter.apply(step.duration),
            );
        }
        tl.mark(EventChannel::DebugPort, "init");

        let report = BootReport {
            config: self.config.clone(),
            timeline: tl,
            outcome: BootOutcome::RunningUnattested,
            measurement: None,
            provisioned_secret: None,
            psp_busy: Nanos::ZERO,
        };
        Ok((
            report,
            LiveGuest {
                mem,
                guest: None,
                kernel_entry: image.elf().entry + slide,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_image::kernel::KernelConfig;

    fn machine() -> Machine {
        Machine::new(1)
    }

    fn booted(policy: BootPolicy) -> BootReport {
        let mut m = machine();
        let mut config = VmConfig::test_tiny(policy);
        if policy == BootPolicy::SeverifastVmlinux {
            config.kernel_codec = Codec::None;
        }
        let vm = MicroVm::new(config).unwrap();
        if policy.is_sev() {
            vm.register_expected(&mut m).unwrap();
        }
        vm.boot(&mut m).unwrap()
    }

    #[test]
    fn severifast_boots_and_attests() {
        let report = booted(BootPolicy::Severifast);
        assert_eq!(report.outcome, BootOutcome::Running);
        assert_eq!(
            report.provisioned_secret.as_deref(),
            Some(&b"tenant disk encryption key"[..])
        );
        assert!(report.measurement.is_some());
        assert!(report.psp_busy > Nanos::ZERO);
        // Attestation excluded from boot time, included in total.
        assert!(report.total_time() > report.boot_time());
    }

    #[test]
    fn stock_firecracker_is_fastest() {
        let stock = booted(BootPolicy::StockFirecracker);
        let sevf = booted(BootPolicy::Severifast);
        assert_eq!(stock.outcome, BootOutcome::RunningUnattested);
        assert!(stock.boot_time() < sevf.boot_time());
        assert_eq!(stock.psp_busy, Nanos::ZERO);
    }

    #[test]
    fn qemu_ovmf_is_slowest_by_far() {
        let qemu = booted(BootPolicy::QemuOvmf);
        let sevf = booted(BootPolicy::Severifast);
        // Fig. 9: SEVeriFast cuts boot time by ~86-94%.
        let reduction = 1.0 - sevf.boot_time().as_millis_f64() / qemu.boot_time().as_millis_f64();
        assert!(reduction > 0.8, "reduction {reduction:.3}");
    }

    #[test]
    fn vmlinux_policy_boots() {
        let report = booted(BootPolicy::SeverifastVmlinux);
        assert_eq!(report.outcome, BootOutcome::Running);
        // No bootstrap loader phase for an uncompressed kernel.
        assert_eq!(report.phase(PhaseKind::BootstrapLoader), Nanos::ZERO);
    }

    #[test]
    fn measurement_matches_expected_tool() {
        let mut m = machine();
        let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
        vm.register_expected(&mut m).unwrap();
        let report = vm.boot(&mut m).unwrap();
        assert_eq!(
            report.measurement.unwrap(),
            vm.expected_measurement().unwrap()
        );
    }

    #[test]
    fn unregistered_measurement_fails_attestation() {
        let mut m = machine();
        let vm = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
        // No register_expected: the owner cannot recognize the digest.
        let err = vm.boot(&mut m).unwrap_err();
        assert!(matches!(
            err,
            VmmError::Attest(AttestError::UnexpectedMeasurement { .. })
        ));
    }

    #[test]
    fn lupine_like_kernel_skips_attestation() {
        let mut m = machine();
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.kernel = KernelConfig {
            name: "tiny-lupine".into(),
            has_network: false,
            ..KernelConfig::test_tiny()
        };
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        let report = vm.boot(&mut m).unwrap();
        assert_eq!(report.outcome, BootOutcome::RunningUnattested);
        assert_eq!(report.phase(PhaseKind::Attestation), Nanos::ZERO);
    }

    #[test]
    fn jitter_changes_times_not_outcomes() {
        let mut m = machine();
        let base = VmConfig::test_tiny(BootPolicy::Severifast);
        let vm1 = MicroVm::new(base.clone().with_jitter(1)).unwrap();
        let vm2 = MicroVm::new(base.with_jitter(2)).unwrap();
        vm1.register_expected(&mut m).unwrap();
        let a = vm1.boot(&mut m).unwrap();
        let b = vm2.boot(&mut m).unwrap();
        assert_ne!(a.boot_time(), b.boot_time());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            a.measurement, b.measurement,
            "jitter must not affect crypto"
        );
    }

    #[test]
    fn phases_present_in_severifast_timeline() {
        let report = booted(BootPolicy::Severifast);
        for phase in [
            PhaseKind::VmmSetup,
            PhaseKind::PreEncryption,
            PhaseKind::BootVerification,
            PhaseKind::BootstrapLoader,
            PhaseKind::LinuxBoot,
            PhaseKind::Attestation,
        ] {
            assert!(report.phase(phase) > Nanos::ZERO, "missing phase {phase}");
        }
        // Instrumentation events reached the VMM through both channels.
        let events = report.timeline.events();
        assert!(events.iter().any(|e| e.channel == EventChannel::GhcbMsr));
        assert!(events.iter().any(|e| e.channel == EventChannel::DebugPort));
    }

    #[test]
    fn in_monitor_kaslr_slides_stock_boots() {
        let mut m = machine();
        let mut config = VmConfig::test_tiny(BootPolicy::StockFirecracker);
        config.kaslr = KaslrMode::InMonitor;
        let vm = MicroVm::new(config).unwrap();
        let mut entries = std::collections::HashSet::new();
        for _ in 0..6 {
            let (report, alive) = vm.boot_keep_alive(&mut m).unwrap();
            assert_eq!(report.outcome, BootOutcome::RunningUnattested);
            let entry = alive.kernel_entry();
            assert!(entry >= sevf_image::kernel::KERNEL_BASE);
            assert_eq!(
                (entry - sevf_image::kernel::KERNEL_BASE) % (2 * 1024 * 1024),
                0,
                "slide must be 2 MiB aligned"
            );
            entries.insert(entry);
        }
        assert!(entries.len() > 1, "KASLR produced no entropy: {entries:?}");
    }

    #[test]
    fn in_monitor_kaslr_rejected_under_sev() {
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.kaslr = KaslrMode::InMonitor;
        assert!(matches!(MicroVm::new(config), Err(VmmError::Config(_))));
    }

    #[test]
    fn guest_side_kaslr_boots_and_leaves_measurement_unchanged() {
        let mut m = machine();
        let baseline = MicroVm::new(VmConfig::test_tiny(BootPolicy::Severifast)).unwrap();
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.kaslr = KaslrMode::GuestSide;
        let kaslr_vm = MicroVm::new(config).unwrap();
        // The slide happens in the guest: the launch measurement (and thus
        // attestation) is identical to the non-KASLR boot.
        assert_eq!(
            kaslr_vm.expected_measurement().unwrap(),
            baseline.expected_measurement().unwrap()
        );
        kaslr_vm.register_expected(&mut m).unwrap();
        let (report, alive_a) = kaslr_vm.boot_keep_alive(&mut m).unwrap();
        assert_eq!(report.outcome, BootOutcome::Running);
        let (_, alive_b) = kaslr_vm.boot_keep_alive(&mut m).unwrap();
        let (_, alive_c) = kaslr_vm.boot_keep_alive(&mut m).unwrap();
        let distinct: std::collections::HashSet<u64> = [
            alive_a.kernel_entry(),
            alive_b.kernel_entry(),
            alive_c.kernel_entry(),
        ]
        .into();
        assert!(distinct.len() > 1, "no slide entropy: {distinct:?}");
    }

    #[test]
    fn guest_side_kaslr_requires_a_bzimage() {
        let mut config = VmConfig::test_tiny(BootPolicy::SeverifastVmlinux);
        config.kernel_codec = Codec::None;
        config.kaslr = KaslrMode::GuestSide;
        assert!(matches!(MicroVm::new(config), Err(VmmError::Config(_))));
    }

    #[test]
    fn shared_key_template_launch_bypasses_the_psp() {
        let mut m = machine();
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.launch_mode = LaunchMode::SharedKeyTemplate;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();

        // First boot: cold template — full launch cost, template cached.
        let cold = vm.boot(&mut m).unwrap();
        assert_eq!(cold.outcome, BootOutcome::Running);
        assert_eq!(m.templates.len(), 1);

        // Second boot: shared-key fast path.
        let warm = vm.boot(&mut m).unwrap();
        assert_eq!(
            warm.outcome,
            BootOutcome::Running,
            "attestation still works"
        );
        assert_eq!(warm.measurement, cold.measurement);
        assert!(
            warm.psp_busy.as_millis_f64() < cold.psp_busy.as_millis_f64() / 5.0,
            "warm PSP {} vs cold {}",
            warm.psp_busy,
            cold.psp_busy
        );
        assert!(warm.boot_time() < cold.boot_time());
    }

    #[test]
    fn shared_key_weakens_cross_vm_ciphertext_separation() {
        // The §8 caveat: two guests sharing a key produce identical
        // ciphertext for identical plaintext at identical addresses.
        use sevf_mem::GuestMemory;
        let mut m = machine();
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.launch_mode = LaunchMode::SharedKeyTemplate;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();
        vm.boot(&mut m).unwrap();
        let template = *m.templates.values().next().unwrap();
        let a = m.psp.launch_start_shared(template).unwrap();
        let b = m.psp.launch_start_shared(template).unwrap();
        assert_eq!(a.memory_key, b.memory_key);
        let mk = |key| {
            let mut mem = GuestMemory::new_sev(1 << 20, key, SevGeneration::SevSnp);
            mem.pre_encrypt(0x1000, 4096).unwrap();
            mem.guest_write(0x1000, b"same plaintext", true).unwrap();
            mem.host_read(0x1000, 14).unwrap()
        };
        assert_eq!(mk(a.memory_key), mk(b.memory_key), "dedup is now possible");
        // Whereas two *normal* launches differ.
        let c = m.psp.launch_start(SevGeneration::SevSnp).unwrap();
        assert_ne!(mk(a.memory_key), mk(c.memory_key));
    }

    #[test]
    fn severifast_preencryption_near_8ms() {
        // Fig. 10: SEVeriFast pre-encryption is ~8 ms regardless of kernel.
        let report = booted(BootPolicy::Severifast);
        let ms = report.pre_encryption().as_millis_f64();
        assert!((6.0..12.0).contains(&ms), "pre-encryption {ms} ms");
    }

    #[test]
    fn qemu_preencryption_near_288ms() {
        let report = booted(BootPolicy::QemuOvmf);
        let ms = report.pre_encryption().as_millis_f64();
        assert!((250.0..330.0).contains(&ms), "pre-encryption {ms} ms");
    }
}
