//! A Firecracker-like microVM monitor with SEV-SNP launch support.
//!
//! The paper implements SEVeriFast as ~1100 lines added to Firecracker
//! v0.26 (§5). This crate plays that role in the simulation: it owns the
//! guest's configuration and memory, generates the boot data structures
//! Linux needs ([`mptable`], [`boot_params`], [`cmdline`] — Fig. 7),
//! executes the SEV launch flow against the shared [`machine::Machine`]'s
//! PSP, stages boot components, runs the guest (boot verifier → bootstrap
//! loader → kernel), and drives remote attestation.
//!
//! Four boot policies are implemented ([`config::BootPolicy`]):
//!
//! * **StockFirecracker** — non-SEV direct vmlinux boot (the baseline the
//!   paper compares against in Fig. 11);
//! * **Severifast** — the paper's design: LZ4 bzImage + minimal verifier;
//! * **SeverifastVmlinux** — the §5 comparison with the fw_cfg ELF loader;
//! * **QemuOvmf** — the mainstream QEMU/OVMF path of Figs. 3/9/10.
//!
//! Booting produces a [`report::BootReport`] whose timeline reproduces the
//! paper's instrumentation (§6.1), and [`concurrent`] replays boots through
//! the discrete-event engine to expose the PSP bottleneck of Fig. 12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot_params;
pub mod cmdline;
pub mod concurrent;
pub mod config;
pub mod devices;
pub mod footprint;
pub mod guest_kernel;
pub mod hashes_file;
pub mod machine;
pub mod mptable;
pub mod report;
pub mod vmm;
pub mod warm;

pub use config::{BootPolicy, VmConfig};
pub use machine::Machine;
pub use report::{BootOutcome, BootReport};
pub use vmm::{MicroVm, VmmError};
