//! The timing instrumentation devices of §6.1.
//!
//! The paper measures boot phases by attaching a **debug-port device**
//! (inspired by Cloud Hypervisor's) that records timestamped guest writes
//! to I/O port 0x80 in the VMM log. Under SEV-ES/SNP an `outb` takes a #VC
//! that needs a handler the guest may not have installed yet, so early boot
//! stages instead write **magic values to the GHCB MSR**, which the VMM
//! always intercepts. This module models both channels; the boot path emits
//! its marks through a [`DebugChannels`] and the resulting log is exposed
//! on the final [`crate::report::BootReport`] timeline.

use sevf_sim::cost::SevGeneration;
use sevf_sim::{CostModel, EventChannel, Nanos, Timeline};

/// The I/O port the debug device listens on.
pub const DEBUG_PORT: u16 = 0x80;

/// Magic values written to the GHCB MSR to denote boot milestones (the
/// paper's workaround for pre-#VC-handler instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GhcbMagic {
    /// Boot verifier entry.
    VerifierEntry = 0x53_45_56_01,
    /// Boot verification complete.
    VerificationDone = 0x53_45_56_02,
    /// Bootstrap loader handed off to the kernel.
    LoaderDone = 0x53_45_56_03,
}

impl GhcbMagic {
    /// The log tag for a magic value.
    pub fn tag(self) -> &'static str {
        match self {
            GhcbMagic::VerifierEntry => "verifier-entry",
            GhcbMagic::VerificationDone => "boot-verification-done",
            GhcbMagic::LoaderDone => "bootstrap-loader-done",
        }
    }
}

/// The guest-visible instrumentation surface: which channel a mark takes
/// and what the exit costs, given the SEV generation and whether a #VC
/// handler is installed yet.
#[derive(Debug, Clone)]
pub struct DebugChannels {
    generation: SevGeneration,
    vc_handler_installed: bool,
}

impl DebugChannels {
    /// Channels at guest entry: no #VC handler yet.
    pub fn at_guest_entry(generation: SevGeneration) -> Self {
        DebugChannels {
            generation,
            vc_handler_installed: false,
        }
    }

    /// The guest kernel installed its #VC handler; `outb` becomes usable.
    pub fn install_vc_handler(&mut self) {
        self.vc_handler_installed = true;
    }

    /// Whether a port 0x80 write is currently possible without crashing
    /// (under ES/SNP an `outb` needs the #VC handler; base SEV and non-SEV
    /// guests exit to the VMM directly).
    pub fn can_use_debug_port(&self) -> bool {
        !self.generation.encrypts_vmsa() || self.vc_handler_installed
    }

    /// Emits a mark through the best available channel, charging the exit
    /// cost, and returns the channel used.
    pub fn mark(
        &self,
        timeline: &mut Timeline,
        cost: &CostModel,
        tag: impl Into<String>,
    ) -> EventChannel {
        let channel = if self.can_use_debug_port() {
            EventChannel::DebugPort
        } else {
            EventChannel::GhcbMsr
        };
        // Either path is one world switch.
        let exit_cost = if self.generation.is_sev() {
            cost.vc_exit
        } else {
            Nanos::from_micros(2) // plain VM exit
        };
        timeline.push(
            sevf_sim::PhaseKind::LinuxBoot,
            "instrumentation exit",
            exit_cost,
        );
        timeline.mark(channel, tag);
        channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snp_uses_ghcb_before_handler_and_port_after() {
        let mut ch = DebugChannels::at_guest_entry(SevGeneration::SevSnp);
        let mut tl = Timeline::new();
        let cost = CostModel::calibrated();
        assert_eq!(ch.mark(&mut tl, &cost, "early"), EventChannel::GhcbMsr);
        ch.install_vc_handler();
        assert_eq!(ch.mark(&mut tl, &cost, "late"), EventChannel::DebugPort);
        assert_eq!(tl.events().len(), 2);
    }

    #[test]
    fn base_sev_and_plain_guests_use_the_port_immediately() {
        for generation in [SevGeneration::None, SevGeneration::Sev] {
            let ch = DebugChannels::at_guest_entry(generation);
            assert!(ch.can_use_debug_port(), "{}", generation.name());
        }
        // ES encrypts register state: port needs the handler.
        assert!(!DebugChannels::at_guest_entry(SevGeneration::SevEs).can_use_debug_port());
    }

    #[test]
    fn marks_charge_exit_costs() {
        let ch = DebugChannels::at_guest_entry(SevGeneration::SevSnp);
        let mut tl = Timeline::new();
        let cost = CostModel::calibrated();
        ch.mark(&mut tl, &cost, "x");
        assert_eq!(tl.total(), cost.vc_exit);

        let plain = DebugChannels::at_guest_entry(SevGeneration::None);
        let mut tl2 = Timeline::new();
        plain.mark(&mut tl2, &cost, "x");
        assert!(tl2.total() < cost.vc_exit);
    }

    #[test]
    fn magic_tags_are_distinct() {
        let tags = [
            GhcbMagic::VerifierEntry.tag(),
            GhcbMagic::VerificationDone.tag(),
            GhcbMagic::LoaderDone.tag(),
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
