//! The Linux `boot_params` ("zero page").
//!
//! Fig. 7: a 4 KiB structure carrying system info the kernel needs at
//! entry; generating it takes ~5 KB of code, so SEVeriFast pre-encrypts the
//! one the VMM builds. We reproduce the load-bearing fields: a magic the
//! guest validates, pointers to the cmdline and initrd, the e820-style
//! memory map, and the boot CPU count.

use crate::config::VmConfig;
use sevf_verifier::layout::{GuestLayout, CMDLINE_ADDR};

/// Magic identifying our boot_params page.
pub const BOOT_PARAMS_MAGIC: u32 = 0x53_56_42_50; // "SVBP"

/// One e820-style memory range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E820Entry {
    /// Range base.
    pub addr: u64,
    /// Range length.
    pub len: u64,
    /// 1 = usable RAM, 2 = reserved.
    pub kind: u32,
}

/// The decoded boot_params contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootParams {
    /// Guest-physical pointer to the command line.
    pub cmdline_ptr: u64,
    /// Guest-physical address of the (verified, encrypted) initrd.
    pub initrd_addr: u64,
    /// Initrd size in bytes.
    pub initrd_size: u64,
    /// Number of boot CPUs.
    pub vcpus: u32,
    /// Memory map.
    pub e820: Vec<E820Entry>,
}

impl BootParams {
    /// Builds boot_params for a VM configuration and layout.
    pub fn build(config: &VmConfig, layout: &GuestLayout) -> Self {
        BootParams {
            cmdline_ptr: CMDLINE_ADDR,
            initrd_addr: layout.initrd_dest,
            initrd_size: layout.initrd_size,
            vcpus: config.vcpus as u32,
            e820: vec![
                // Low 640K usable, legacy hole reserved, rest usable.
                E820Entry {
                    addr: 0,
                    len: 0xA0000,
                    kind: 1,
                },
                E820Entry {
                    addr: 0xA0000,
                    len: 0x60000,
                    kind: 2,
                },
                E820Entry {
                    addr: 0x10_0000,
                    len: layout.mem_size - 0x10_0000,
                    kind: 1,
                },
            ],
        }
    }

    /// Serializes to the 4 KiB pre-encrypted page.
    ///
    /// # Panics
    ///
    /// Panics if more than 128 e820 entries are present.
    pub fn to_page(&self) -> [u8; 4096] {
        assert!(self.e820.len() <= 128);
        let mut page = [0u8; 4096];
        page[..4].copy_from_slice(&BOOT_PARAMS_MAGIC.to_le_bytes());
        page[8..16].copy_from_slice(&self.cmdline_ptr.to_le_bytes());
        page[16..24].copy_from_slice(&self.initrd_addr.to_le_bytes());
        page[24..32].copy_from_slice(&self.initrd_size.to_le_bytes());
        page[32..36].copy_from_slice(&self.vcpus.to_le_bytes());
        page[36..40].copy_from_slice(&(self.e820.len() as u32).to_le_bytes());
        let mut at = 40;
        for entry in &self.e820 {
            page[at..at + 8].copy_from_slice(&entry.addr.to_le_bytes());
            page[at + 8..at + 16].copy_from_slice(&entry.len.to_le_bytes());
            page[at + 16..at + 20].copy_from_slice(&entry.kind.to_le_bytes());
            at += 20;
        }
        page
    }

    /// Parses the page, as the guest kernel does at entry.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first corruption found.
    pub fn from_page(page: &[u8]) -> Result<Self, &'static str> {
        if page.len() < 40 {
            return Err("boot_params shorter than header");
        }
        let magic = u32::from_le_bytes(page[..4].try_into().expect("4"));
        if magic != BOOT_PARAMS_MAGIC {
            return Err("boot_params magic mismatch");
        }
        let count = u32::from_le_bytes(page[36..40].try_into().expect("4")) as usize;
        if count > 128 || 40 + count * 20 > page.len() {
            return Err("implausible e820 entry count");
        }
        let mut e820 = Vec::with_capacity(count);
        let mut at = 40;
        for _ in 0..count {
            e820.push(E820Entry {
                addr: u64::from_le_bytes(page[at..at + 8].try_into().expect("8")),
                len: u64::from_le_bytes(page[at + 8..at + 16].try_into().expect("8")),
                kind: u32::from_le_bytes(page[at + 16..at + 20].try_into().expect("4")),
            });
            at += 20;
        }
        Ok(BootParams {
            cmdline_ptr: u64::from_le_bytes(page[8..16].try_into().expect("8")),
            initrd_addr: u64::from_le_bytes(page[16..24].try_into().expect("8")),
            initrd_size: u64::from_le_bytes(page[24..32].try_into().expect("8")),
            vcpus: u32::from_le_bytes(page[32..36].try_into().expect("4")),
            e820,
        })
    }

    /// Total usable RAM per the e820 map.
    pub fn usable_ram(&self) -> u64 {
        self.e820
            .iter()
            .filter(|e| e.kind == 1)
            .map(|e| e.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BootPolicy;

    fn sample() -> BootParams {
        let config = VmConfig::test_tiny(BootPolicy::Severifast);
        let layout = GuestLayout::plan(config.mem_size, 1024 * 1024, 64 * 1024).unwrap();
        BootParams::build(&config, &layout)
    }

    #[test]
    fn roundtrip() {
        let bp = sample();
        assert_eq!(BootParams::from_page(&bp.to_page()).unwrap(), bp);
    }

    #[test]
    fn points_at_layout_addresses() {
        let bp = sample();
        assert_eq!(bp.cmdline_ptr, CMDLINE_ADDR);
        assert!(bp.initrd_addr > 0 && bp.initrd_size == 64 * 1024);
        assert_eq!(bp.vcpus, 1);
    }

    #[test]
    fn e820_covers_most_of_memory() {
        let bp = sample();
        let config = VmConfig::test_tiny(BootPolicy::Severifast);
        let usable = bp.usable_ram();
        assert!(usable > config.mem_size * 9 / 10);
        assert!(usable < config.mem_size);
    }

    #[test]
    fn corruption_detected() {
        let bp = sample();
        let mut page = bp.to_page();
        page[0] ^= 1;
        assert!(BootParams::from_page(&page).is_err());
        let mut page2 = bp.to_page();
        page2[36] = 0xff; // silly e820 count
        assert!(BootParams::from_page(&page2).is_err());
    }
}
