//! Concurrent cold boots through the discrete-event engine (Fig. 12).
//!
//! A boot's timeline is converted to a [`Job`] whose segments are placed on
//! the host resource they occupy: PSP launch commands serialize on the
//! single-slot PSP resource; everything else runs on the host's CPU pool;
//! attestation's network wait is a pure delay. Replaying N identical jobs
//! reproduces the paper's finding that **average SEV boot time grows
//! linearly with concurrency** — the slope is the per-launch PSP time —
//! while non-SEV boots stay nearly flat.

use sevf_sim::{DesEngine, Job, Nanos, ResourceClass, Segment, Summary};

use crate::machine::HOST_CORES;
use crate::report::BootReport;

/// Converts a boot report into a DES job.
///
/// Each timeline span carries a typed [`ResourceClass`], set at the call
/// site that produced the work: PSP launch commands go onto the single-slot
/// PSP resource, CPU work onto the core pool, and network waits become pure
/// delays. No label parsing is involved, so renaming a span cannot change
/// its placement.
pub fn boot_job(report: &BootReport, cpu: sevf_sim::ResourceId, psp: sevf_sim::ResourceId) -> Job {
    let segments = report
        .timeline
        .spans()
        .iter()
        .map(|span| match span.class {
            // Static labels: the engine never reads them, and cloning the
            // span label per segment allocated on every replicated job.
            ResourceClass::Psp => Segment::on(psp, span.duration, "psp"),
            ResourceClass::HostCpu => Segment::on(cpu, span.duration, "cpu"),
            ResourceClass::Network => Segment::delay(span.duration, "net"),
        })
        .collect();
    Job::new(segments)
}

/// Result of a concurrency sweep point.
#[derive(Debug, Clone)]
pub struct ConcurrencyPoint {
    /// Number of concurrent launches.
    pub concurrency: usize,
    /// Per-VM boot latencies.
    pub latencies: Vec<Nanos>,
    /// Latency summary (ms).
    pub summary: Summary,
}

/// Launches `n` copies of `report`'s boot concurrently and returns the
/// latency distribution.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn run_concurrent(report: &BootReport, n: usize) -> ConcurrencyPoint {
    assert!(n > 0);
    let mut engine = DesEngine::new();
    let psp = engine.add_resource("psp", 1);
    let cpu = engine.add_resource("host-cpus", HOST_CORES);
    let jobs: Vec<Job> = (0..n).map(|_| boot_job(report, cpu, psp)).collect();
    let outcomes = engine.run(jobs);
    let latencies: Vec<Nanos> = outcomes.iter().map(|o| o.latency()).collect();
    ConcurrencyPoint {
        concurrency: n,
        summary: Summary::from_nanos(&latencies),
        latencies,
    }
}

/// Sweeps concurrency levels (Fig. 12's x axis).
pub fn sweep(report: &BootReport, levels: &[usize]) -> Vec<ConcurrencyPoint> {
    levels.iter().map(|&n| run_concurrent(report, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BootPolicy, VmConfig};
    use crate::machine::Machine;
    use crate::vmm::MicroVm;
    use sevf_sim::PhaseKind;

    fn report(policy: BootPolicy) -> BootReport {
        let mut machine = Machine::new(3);
        let vm = MicroVm::new(VmConfig::test_tiny(policy)).unwrap();
        if policy.is_sev() {
            vm.register_expected(&mut machine).unwrap();
        }
        vm.boot(&mut machine).unwrap()
    }

    #[test]
    fn typed_psp_spans_sum_to_psp_busy() {
        // Every nanosecond the PSP accounting saw must be tagged on a span,
        // and nothing else may carry the tag (jitter is off in test_tiny).
        let r = report(BootPolicy::Severifast);
        let tagged: Nanos = r
            .timeline
            .spans()
            .iter()
            .filter(|s| s.class == ResourceClass::Psp)
            .map(|s| s.duration)
            .sum();
        assert_eq!(tagged, r.psp_busy);
    }

    #[test]
    fn single_job_matches_report_total() {
        let r = report(BootPolicy::Severifast);
        let point = run_concurrent(&r, 1);
        assert_eq!(point.latencies[0], r.total_time());
    }

    #[test]
    fn sev_boots_serialize_on_the_psp() {
        let r = report(BootPolicy::Severifast);
        let p1 = run_concurrent(&r, 1);
        let p16 = run_concurrent(&r, 16);
        let p32 = run_concurrent(&r, 32);
        // Linear growth in the batch size.
        let d1 = p16.summary.mean - p1.summary.mean;
        let d2 = p32.summary.mean - p16.summary.mean;
        assert!(d1 > 0.0 && d2 > 0.0);
        assert!(
            (d2 / d1 - 16.0 / 15.0).abs() < 0.3,
            "not linear: {d1} then {d2}"
        );
        // The paper: "average startup time increases linearly with a slope
        // equal to the total time it takes to execute the SEV launch
        // commands" — each job's several PSP segments re-queue behind every
        // other job, so nearly all jobs finish near the batch end.
        let psp_ms = r.psp_busy.as_millis_f64();
        let slope = (p32.summary.mean - p16.summary.mean) / 16.0;
        assert!(
            (slope / psp_ms - 1.0).abs() < 0.35,
            "slope {slope:.2} ms/VM vs psp {psp_ms:.2}"
        );
    }

    #[test]
    fn non_sev_boots_stay_nearly_flat() {
        let r = report(BootPolicy::StockFirecracker);
        let p1 = run_concurrent(&r, 1);
        let p25 = run_concurrent(&r, 25);
        // 25 jobs on 32 cores: no queuing at all.
        assert!(p25.summary.mean < p1.summary.mean * 1.2);
    }

    #[test]
    fn sweep_is_monotone_for_sev() {
        let r = report(BootPolicy::Severifast);
        let points = sweep(&r, &[1, 5, 10, 20]);
        for pair in points.windows(2) {
            assert!(pair[1].summary.mean >= pair[0].summary.mean);
        }
    }

    #[test]
    fn attestation_network_does_not_contend() {
        // The network delay is not a resource: 50 VMs' waits overlap.
        let r = report(BootPolicy::Severifast);
        let network_ms: f64 = r
            .timeline
            .spans()
            .iter()
            .filter(|s| s.phase == PhaseKind::Attestation)
            .map(|s| s.duration.as_millis_f64())
            .sum();
        let p40 = run_concurrent(&r, 40);
        let serialized_estimate = r.psp_busy.as_millis_f64() * 40.0 + network_ms;
        assert!(
            p40.summary.max < serialized_estimate + r.total_time().as_millis_f64(),
            "max {} vs bound {}",
            p40.summary.max,
            serialized_estimate
        );
    }
}
