//! The MP (MultiProcessor specification) table.
//!
//! Fig. 7: the mptable describes the CPU configuration to the kernel; it
//! spans 284 bytes plus 20 bytes per CPU, while the code to generate it is
//! ~4 KB — so SEVeriFast *pre-encrypts* the table the VMM already builds
//! instead of generating it in the boot verifier. The layout here follows
//! the MP spec's shape: a floating pointer structure, a config-table
//! header, and one processor entry per vCPU, all checksummed.

/// Size of the MP floating pointer structure.
const MPF_SIZE: usize = 16;
/// Size of the MP config table header.
const MPC_HEADER_SIZE: usize = 44;
/// Fixed bus/ioapic/irq entries we emit (mirrors Firecracker's table).
const FIXED_ENTRIES_SIZE: usize = 224;
/// Size of one processor entry.
const CPU_ENTRY_SIZE: usize = 20;

/// Byte size of the table for a CPU count (Fig. 7: "284B + 20B/CPU").
pub fn table_size(vcpus: u64) -> u64 {
    (MPF_SIZE + MPC_HEADER_SIZE + FIXED_ENTRIES_SIZE) as u64 + vcpus * CPU_ENTRY_SIZE as u64
}

fn checksum_fix(bytes: &mut [u8], checksum_at: usize) {
    bytes[checksum_at] = 0;
    let sum: u8 = bytes.iter().fold(0u8, |acc, &b| acc.wrapping_add(b));
    bytes[checksum_at] = 0u8.wrapping_sub(sum);
}

/// Builds the mptable for `vcpus` processors.
///
/// # Panics
///
/// Panics if `vcpus == 0`.
pub fn build(vcpus: u64) -> Vec<u8> {
    assert!(vcpus > 0);
    let total = table_size(vcpus) as usize;
    let mut out = Vec::with_capacity(total);

    // Floating pointer: signature "_MP_", points at the config table.
    out.extend_from_slice(b"_MP_");
    out.extend_from_slice(&(MPF_SIZE as u32).to_le_bytes()); // phys ptr (relative)
    out.push(1); // length in 16-byte units
    out.push(4); // spec revision 1.4
    out.push(0); // checksum (fixed below)
    out.extend_from_slice(&[0u8; 5]); // feature bytes
    debug_assert_eq!(out.len(), MPF_SIZE);
    checksum_fix(&mut out[..MPF_SIZE], 10);

    // Config table header: signature "PCMP".
    let header_start = out.len();
    out.extend_from_slice(b"PCMP");
    let table_len =
        (MPC_HEADER_SIZE + FIXED_ENTRIES_SIZE) as u16 + (vcpus as u16) * CPU_ENTRY_SIZE as u16;
    out.extend_from_slice(&table_len.to_le_bytes());
    out.push(4); // spec revision
    out.push(0); // checksum (fixed below)
    out.extend_from_slice(b"SEVF    "); // OEM id (8 bytes)
    out.extend_from_slice(b"MICROVM     "); // product id (12 bytes)
    out.extend_from_slice(&0u32.to_le_bytes()); // OEM table pointer
    out.extend_from_slice(&0u16.to_le_bytes()); // OEM table size
    out.extend_from_slice(&((vcpus as u16) + 2).to_le_bytes()); // entry count
    out.extend_from_slice(&0xFEE0_0000u32.to_le_bytes()); // local APIC addr
    out.extend_from_slice(&[0u8; 4]); // ext table length/checksum + reserved
    debug_assert_eq!(out.len() - header_start, MPC_HEADER_SIZE);

    // Processor entries.
    for cpu in 0..vcpus {
        let mut entry = [0u8; CPU_ENTRY_SIZE];
        entry[0] = 0; // type 0 = processor
        entry[1] = cpu as u8; // local APIC id
        entry[2] = 0x14; // APIC version
        entry[3] = 0x01 | if cpu == 0 { 0x02 } else { 0 }; // enabled | BSP
        entry[4..8].copy_from_slice(&0x000806F1u32.to_le_bytes()); // signature
        entry[8..12].copy_from_slice(&0x0178FBFFu32.to_le_bytes()); // features
        out.extend_from_slice(&entry);
    }

    // Fixed bus / I/O APIC / interrupt entries (content modeled, sized real).
    out.extend(std::iter::repeat_n(0x5au8, FIXED_ENTRIES_SIZE));

    // Config-table checksum covers header + entries.
    let end = out.len();
    checksum_fix(&mut out[header_start..end], 7);
    out
}

/// Validation result for a parsed mptable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MptableInfo {
    /// Number of processor entries found.
    pub vcpus: u64,
}

/// Validates signatures and checksums, as the guest kernel does when it
/// scans for the table.
///
/// # Errors
///
/// Returns a static description of the first corruption found.
pub fn validate(bytes: &[u8]) -> Result<MptableInfo, &'static str> {
    if bytes.len() < MPF_SIZE + MPC_HEADER_SIZE {
        return Err("mptable shorter than headers");
    }
    if &bytes[..4] != b"_MP_" {
        return Err("missing _MP_ signature");
    }
    let mpf_sum: u8 = bytes[..MPF_SIZE]
        .iter()
        .fold(0u8, |a, &b| a.wrapping_add(b));
    if mpf_sum != 0 {
        return Err("floating pointer checksum invalid");
    }
    if &bytes[MPF_SIZE..MPF_SIZE + 4] != b"PCMP" {
        return Err("missing PCMP signature");
    }
    let table_len =
        u16::from_le_bytes(bytes[MPF_SIZE + 4..MPF_SIZE + 6].try_into().expect("2")) as usize;
    if MPF_SIZE + table_len > bytes.len() {
        return Err("config table length out of bounds");
    }
    let table = &bytes[MPF_SIZE..MPF_SIZE + table_len];
    let sum: u8 = table.iter().fold(0u8, |a, &b| a.wrapping_add(b));
    if sum != 0 {
        return Err("config table checksum invalid");
    }
    // Count processor entries (they directly follow the header here).
    let mut vcpus = 0u64;
    let mut at = MPC_HEADER_SIZE;
    while at + CPU_ENTRY_SIZE <= table_len && table[at] == 0 {
        vcpus += 1;
        at += CPU_ENTRY_SIZE;
    }
    if vcpus == 0 {
        return Err("no processor entries");
    }
    Ok(MptableInfo { vcpus })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_sizes() {
        // Fig. 7: "284B + 20B/CPU" — 1 CPU ⇒ 304 bytes (§4.2).
        assert_eq!(table_size(1), 304);
        assert_eq!(table_size(2), 324);
        assert_eq!(table_size(32), 284 + 32 * 20);
        assert_eq!(build(1).len() as u64, table_size(1));
    }

    #[test]
    fn builds_validate() {
        for vcpus in [1, 2, 4, 32] {
            let table = build(vcpus);
            let info = validate(&table).unwrap();
            assert_eq!(info.vcpus, vcpus, "vcpus {vcpus}");
        }
    }

    #[test]
    fn corruption_detected() {
        let mut table = build(2);
        table[40] ^= 1;
        assert!(validate(&table).is_err());
    }

    #[test]
    fn bad_signature_detected() {
        let mut table = build(1);
        table[0] = b'X';
        assert_eq!(validate(&table), Err("missing _MP_ signature"));
    }

    #[test]
    fn truncation_detected() {
        let table = build(4);
        assert!(validate(&table[..40]).is_err());
        assert!(validate(&table[..table.len() - 8]).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_cpus_panics() {
        build(0);
    }
}
