//! The host machine shared by all VMs.
//!
//! One [`Machine`] models one physical server (the paper's EPYC 7313P box):
//! a single PSP that every SEV launch serializes on, a host CPU pool, the
//! cost model, and the guest owner's attestation service. Fig. 12's
//! bottleneck exists precisely because this state is shared.

use std::collections::HashMap;

use sevf_psp::{AmdRootRegistry, GuestHandle, Psp, PspWork};
use sevf_sim::rng::XorShift64;
use sevf_sim::CostModel;

use sevf_attest::GuestOwner;

/// Number of physical cores on the evaluation machine (EPYC 7313P, §6.1).
pub const HOST_CORES: usize = 32;

/// A host machine: shared PSP, cost model, and attestation service.
#[derive(Debug)]
pub struct Machine {
    /// The platform security processor (single core; §6.2).
    pub psp: Psp,
    /// The calibrated cost model in force.
    pub cost: CostModel,
    /// The guest owner validating this machine's attestation reports.
    pub owner: GuestOwner,
    /// Finalized launch contexts reusable as shared-key templates, keyed by
    /// launch measurement (the future-work path of
    /// [`crate::config::LaunchMode::SharedKeyTemplate`]).
    pub templates: HashMap<[u8; 48], GuestHandle>,
    /// Host entropy source (KASLR draws, etc.), seeded for reproducibility.
    pub rng: XorShift64,
}

impl Machine {
    /// Creates a machine with the calibrated cost model and a guest owner
    /// that trusts this machine's chip.
    pub fn new(machine_seed: u64) -> Self {
        Self::with_cost_model(machine_seed, CostModel::calibrated())
    }

    /// Creates a machine with a custom cost model (ablation experiments).
    pub fn with_cost_model(machine_seed: u64, cost: CostModel) -> Self {
        let psp = Psp::new(cost.clone(), machine_seed);
        let mut registry = AmdRootRegistry::new();
        registry.register(psp.chip().clone());
        let owner = GuestOwner::new(
            registry,
            b"tenant disk encryption key".to_vec(),
            &machine_seed.to_le_bytes(),
        );
        Machine {
            psp,
            cost,
            owner,
            templates: HashMap::new(),
            rng: XorShift64::new(machine_seed ^ 0x4b41_534c_5221),
        }
    }

    /// PSP firmware reset at machine scope: the PSP reboots
    /// ([`Psp::firmware_reset`]) and every cached shared-key template dies
    /// with it — the handles in [`Machine::templates`] point at launch
    /// contexts the reset just destroyed, so keeping them would hand out
    /// dead handles. The next template-mode boot re-measures from scratch
    /// and must reproduce the identical launch digest.
    pub fn reset_psp(&mut self) -> PspWork {
        self.templates.clear();
        self.psp.firmware_reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_owner_trusts_its_chip() {
        let machine = Machine::new(1);
        // A report signed by this machine's PSP should pass signature
        // verification (measurement checks are separate).
        use sevf_sim::cost::SevGeneration;
        let mut machine = machine;
        let start = machine.psp.launch_start(SevGeneration::SevSnp).unwrap();
        machine.psp.launch_finish(start.guest).unwrap();
        let (report, _) = machine.psp.guest_report(start.guest, [0u8; 64]).unwrap();
        machine.owner.expect_measurement(report.measurement);
        assert!(machine.owner.handle_report(&report).is_ok());
    }

    #[test]
    fn distinct_machines_have_distinct_chips() {
        let a = Machine::new(1);
        let b = Machine::new(2);
        assert_ne!(a.psp.chip().chip_id, b.psp.chip().chip_id);
    }

    #[test]
    fn reset_invalidates_templates_and_refill_reproduces_digest() {
        use crate::config::{BootPolicy, LaunchMode, VmConfig};
        use crate::vmm::MicroVm;

        let mut m = Machine::new(7);
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.launch_mode = LaunchMode::SharedKeyTemplate;
        let vm = MicroVm::new(config).unwrap();
        vm.register_expected(&mut m).unwrap();

        // Fill the template, then take the cheap shared-key path once.
        let fill = vm.boot(&mut m).unwrap();
        let hit = vm.boot(&mut m).unwrap();
        assert!(hit.psp_busy < fill.psp_busy);

        // Firmware reset: the cached template is gone with the PSP state.
        let epoch = m.psp.firmware_epoch();
        m.reset_psp();
        assert_eq!(m.psp.firmware_epoch(), epoch + 1);
        assert!(m.templates.is_empty());

        // The next boot re-measures from scratch: full fill-grade PSP work
        // again, and the launch digest is bit-identical to the pre-reset one
        // (§6.2: the measurement depends only on content, not on which
        // firmware epoch measured it).
        let refill = vm.boot(&mut m).unwrap();
        assert_eq!(refill.measurement, fill.measurement);
        assert!(
            refill.psp_busy > hit.psp_busy.scale(5),
            "refill {} should pay fill-grade PSP work, not hit-grade {}",
            refill.psp_busy,
            hit.psp_busy
        );
        assert_eq!(m.templates.len(), 1);
    }
}
