//! Boot reports: the per-boot record every figure is derived from.

use sevf_sim::{Nanos, PhaseKind, Timeline};

use crate::config::VmConfig;

/// How a boot ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootOutcome {
    /// Guest reached `init` (and completed attestation when applicable).
    Running,
    /// Guest reached `init`; attestation was skipped (no networking —
    /// the Lupine config, §6.1).
    RunningUnattested,
}

/// The record of one boot.
#[derive(Debug, Clone)]
pub struct BootReport {
    /// The configuration that booted.
    pub config: VmConfig,
    /// Full phase timeline (VMM → guest → attestation).
    pub timeline: Timeline,
    /// Outcome.
    pub outcome: BootOutcome,
    /// The launch measurement (SEV boots only).
    pub measurement: Option<[u8; 48]>,
    /// The secret provisioned by the guest owner (attested boots only).
    pub provisioned_secret: Option<Vec<u8>>,
    /// Virtual time the PSP was busy for this boot (the serialized portion
    /// in Fig. 12).
    pub psp_busy: Nanos,
}

impl BootReport {
    /// Boot time as the paper defines it: VMM exec to guest `init`,
    /// excluding attestation (§6.1).
    pub fn boot_time(&self) -> Nanos {
        self.timeline.boot_total()
    }

    /// End-to-end time including attestation (Fig. 9).
    pub fn total_time(&self) -> Nanos {
        self.timeline.total()
    }

    /// Time attributed to one figure phase.
    pub fn phase(&self, phase: PhaseKind) -> Nanos {
        self.timeline.phase_total(phase)
    }

    /// The Fig. 10 "Pre-encryption" column.
    pub fn pre_encryption(&self) -> Nanos {
        self.phase(PhaseKind::PreEncryption)
    }

    /// The Fig. 10 "Firmware/Boot Verification" column: OVMF phases plus
    /// boot verification.
    pub fn firmware_total(&self) -> Nanos {
        self.phase(PhaseKind::OvmfSec)
            + self.phase(PhaseKind::OvmfPei)
            + self.phase(PhaseKind::OvmfDxe)
            + self.phase(PhaseKind::OvmfBds)
            + self.phase(PhaseKind::BootVerification)
    }

    /// Renders a human-readable breakdown.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} / {} / {}\n",
            self.config.policy,
            self.config.kernel.name,
            self.config.generation.name()
        );
        out.push_str(&self.timeline.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BootPolicy;
    use sevf_sim::timeline::Timeline;

    #[test]
    fn report_phase_accessors() {
        let mut tl = Timeline::new();
        tl.push(PhaseKind::VmmSetup, "spawn", Nanos::from_millis(5));
        tl.push(PhaseKind::PreEncryption, "launch", Nanos::from_millis(8));
        tl.push(
            PhaseKind::BootVerification,
            "verify",
            Nanos::from_millis(20),
        );
        tl.push(PhaseKind::LinuxBoot, "kernel", Nanos::from_millis(70));
        tl.push(PhaseKind::Attestation, "attest", Nanos::from_millis(200));
        let report = BootReport {
            config: VmConfig::test_tiny(BootPolicy::Severifast),
            timeline: tl,
            outcome: BootOutcome::Running,
            measurement: Some([0u8; 48]),
            provisioned_secret: None,
            psp_busy: Nanos::from_millis(9),
        };
        assert_eq!(report.boot_time(), Nanos::from_millis(103));
        assert_eq!(report.total_time(), Nanos::from_millis(303));
        assert_eq!(report.pre_encryption(), Nanos::from_millis(8));
        assert_eq!(report.firmware_total(), Nanos::from_millis(20));
        assert!(report.render().contains("SEVeriFast"));
    }
}
