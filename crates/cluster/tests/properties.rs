//! Seeded property tests for the consistent-hash ring.
//!
//! Randomized inputs, fixed seeds: every run checks the same cases, so a
//! failure is a reproducible counterexample, not a flake.

use sevf_cluster::ring::HashRing;
use sevf_psp::TemplateKey;
use sevf_sim::rng::XorShift64;

/// A deterministic stream of pseudo-random template keys.
fn keys(seed: u64, n: usize) -> Vec<TemplateKey> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| {
            let mut m = [0u8; 48];
            for chunk in m.chunks_exact_mut(8) {
                chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
            TemplateKey::from_measurement(m)
        })
        .collect()
}

fn ring_with(seed: u64, vnodes: usize, hosts: &[usize]) -> HashRing {
    let mut ring = HashRing::new(seed, vnodes);
    for &h in hosts {
        ring.insert(h);
    }
    ring
}

#[test]
fn load_is_balanced_within_bounds() {
    // 8 hosts x 64 vnodes over 4000 keys: every host's share must sit
    // within [mean/3, 3*mean]. Loose enough to be seed-stable, tight
    // enough to catch a broken point function collapsing arcs.
    let hosts: Vec<usize> = (0..8).collect();
    let ring = ring_with(0x0BA1_A4CE, 64, &hosts);
    let keys = keys(0x5EED, 4000);
    let mut counts = vec![0usize; hosts.len()];
    for key in &keys {
        counts[ring.owner(key).unwrap()] += 1;
    }
    let mean = keys.len() / hosts.len();
    for (host, &count) in counts.iter().enumerate() {
        assert!(
            count >= mean / 3 && count <= mean * 3,
            "host {host} owns {count} of {} keys (mean {mean})",
            keys.len()
        );
    }
}

#[test]
fn leave_remaps_only_the_departed_hosts_keys() {
    let hosts: Vec<usize> = (0..6).collect();
    let mut ring = ring_with(0xD00F, 64, &hosts);
    let keys = keys(0xFACE, 2000);
    let before: Vec<usize> = keys.iter().map(|k| ring.owner(k).unwrap()).collect();
    let departed = 2;
    ring.remove(departed);
    for (key, &owner) in keys.iter().zip(&before) {
        let after = ring.owner(key).unwrap();
        if owner == departed {
            assert_ne!(after, departed);
        } else {
            assert_eq!(
                after, owner,
                "leave remapped a key the departed host never owned"
            );
        }
    }
}

#[test]
fn join_steals_keys_only_for_the_new_host() {
    let hosts: Vec<usize> = (0..5).collect();
    let mut ring = ring_with(0xCAFE, 64, &hosts);
    let keys = keys(0xBEEF, 2000);
    let before: Vec<usize> = keys.iter().map(|k| ring.owner(k).unwrap()).collect();
    let joined = 7;
    ring.insert(joined);
    let mut stolen = 0;
    for (key, &owner) in keys.iter().zip(&before) {
        let after = ring.owner(key).unwrap();
        if after != owner {
            assert_eq!(
                after, joined,
                "join moved a key to a host that did not join"
            );
            stolen += 1;
        }
    }
    // The new host must take a nontrivial arc (roughly 1/6 of the space).
    assert!(stolen > 0, "join stole nothing");
    assert!(stolen < keys.len() / 2, "join stole over half the keys");
}

#[test]
fn placement_is_deterministic_and_insertion_order_independent() {
    let keys = keys(0x0DD5, 500);
    let forward = ring_with(0xA11CE, 32, &[0, 1, 2, 3, 4, 5, 6, 7]);
    let shuffled = ring_with(0xA11CE, 32, &[5, 2, 7, 0, 3, 6, 1, 4]);
    for key in &keys {
        assert_eq!(forward.owner(key), shuffled.owner(key));
    }
    // Remove-and-reinsert is also a no-op for ownership.
    let mut cycled = ring_with(0xA11CE, 32, &[0, 1, 2, 3, 4, 5, 6, 7]);
    cycled.remove(3);
    cycled.insert(3);
    for key in &keys {
        assert_eq!(forward.owner(key), cycled.owner(key));
    }
}
