//! Integration tests for the cluster control plane: conservation,
//! determinism, scale-out, failover, and rebalancing.

use sevf_cluster::prelude::*;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::workload::RequestMix;
use sevf_sim::fault::FaultConfig;
use sevf_sim::Nanos;

fn catalog() -> Catalog {
    Catalog::build(0x5EF0, &ClassSpec::quick_test_classes()).unwrap()
}

fn base(hosts: usize, tier: ServingTier) -> ClusterConfig {
    ClusterConfig {
        mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
        ..ClusterConfig::open_loop(hosts, tier, 120.0, 240)
    }
}

fn run(config: ClusterConfig) -> ClusterReport {
    ClusterService::new(catalog(), config).unwrap().run()
}

#[test]
fn every_tier_and_policy_conserves_requests() {
    for tier in [
        ServingTier::Cold,
        ServingTier::Template,
        ServingTier::WarmPool,
    ] {
        for placement in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::JsqPsp,
            PlacementPolicy::TemplateAffinity,
        ] {
            let config = ClusterConfig {
                placement,
                ..base(3, tier)
            };
            let report = run(config);
            assert!(
                report.metrics.conserved(),
                "conservation broke for {}/{}: {} issued, {} completed, {} lost",
                tier.name(),
                placement.name(),
                report.metrics.issued,
                report.metrics.completed,
                report.metrics.lost()
            );
            assert!(report.metrics.completed > 0);
        }
    }
}

#[test]
fn identical_seeds_are_byte_identical() {
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        ..base(4, ServingTier::WarmPool)
    };
    let a = run(config.clone());
    let b = run(config);
    assert_eq!(a.metrics.completed, b.metrics.completed);
    assert_eq!(a.metrics.latencies_ms, b.metrics.latencies_ms);
    assert_eq!(a.metrics.failovers, b.metrics.failovers);
    assert_eq!(a.metrics.makespan, b.metrics.makespan);
    for (x, y) in a.metrics.hosts.iter().zip(&b.metrics.hosts) {
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.psp_utilization, y.psp_utilization);
    }
}

#[test]
fn template_tier_scales_out_where_cold_cannot() {
    // Same per-host offered load at 1 and 4 hosts: template goodput should
    // roughly quadruple; cold per-host goodput stays pinned at the PSP
    // ceiling at both sizes.
    let small = run(ClusterConfig {
        mix: None,
        ..ClusterConfig::open_loop(1, ServingTier::Template, 80.0, 160)
    });
    let large = run(ClusterConfig {
        mix: None,
        ..ClusterConfig::open_loop(4, ServingTier::Template, 320.0, 640)
    });
    assert!(
        large.metrics.goodput_rps() > small.metrics.goodput_rps() * 2.5,
        "template goodput did not scale: {} -> {}",
        small.metrics.goodput_rps(),
        large.metrics.goodput_rps()
    );
    assert!(small.metrics.conserved() && large.metrics.conserved());
}

#[test]
fn scheduled_outage_fails_over_and_recovers() {
    // Kill the host that owns the heavy class, mid-stream. The ring is a
    // pure function of (seed, vnodes), so the victim the router would pick
    // can be computed up front.
    let cat = catalog();
    let template = base(3, ServingTier::Template);
    let mut ring = sevf_cluster::HashRing::new(template.seed, template.vnodes);
    for h in 0..template.hosts {
        ring.insert(h);
    }
    let victim = ring.owner(&cat.classes()[0].key).unwrap();
    let config = ClusterConfig {
        placement: PlacementPolicy::TemplateAffinity,
        admission: sevf_fleet::AdmissionConfig {
            max_inflight: 2,
            ..sevf_fleet::AdmissionConfig::default()
        },
        outages: vec![HostOutage {
            host: victim,
            start: Nanos::from_millis(500),
            end: Nanos::from_millis(1200),
        }],
        recovery: RecoveryConfig::resilient(7),
        ..template
    };
    let report = ClusterService::new(cat, config).unwrap().run();
    assert!(report.metrics.conserved());
    assert!(report.metrics.failovers > 0, "outage displaced nothing");
    // The survivors re-measured the dead host's templates: more fills
    // cluster-wide than there are classes.
    assert!(report.metrics.cache_misses() > 2);
    assert!(report.metrics.completed > 0);
}

#[test]
fn warm_budget_rebalances_across_membership_changes() {
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        warm_target: 4,
        outages: vec![HostOutage {
            host: 1,
            start: Nanos::from_millis(400),
            end: Nanos::from_millis(900),
        }],
        recovery: RecoveryConfig::resilient(9),
        ..base(3, ServingTier::WarmPool)
    };
    let report = run(config);
    assert!(report.metrics.conserved());
    // One pass when the host drops (survivors absorb its share), one when
    // it returns (targets spread back out).
    assert!(
        report.metrics.rebalances >= 2,
        "expected rebalance passes on both membership edges, got {}",
        report.metrics.rebalances
    );
}

#[test]
fn graceful_leave_drains_without_poisoning() {
    let config = ClusterConfig {
        events: vec![HostEvent {
            at: Nanos::from_millis(300),
            host: 2,
            kind: HostEventKind::Leave,
        }],
        ..base(3, ServingTier::Template)
    };
    let report = run(config);
    assert!(report.metrics.conserved());
    // A departure never records outage faults: in-flight work finishes.
    assert_eq!(
        report.metrics.hosts[2].faults, 0,
        "graceful leave poisoned in-flight work"
    );
    assert!(report.metrics.completed > 0);
}

#[test]
fn per_host_fault_domains_stay_decorrelated() {
    let mut fault = FaultConfig::storm();
    fault.host_outage_period = Some(Nanos::from_secs(1));
    fault.host_outage_length = Nanos::from_millis(200);
    let config = ClusterConfig {
        fault: Some(fault),
        fault_horizon: Nanos::from_secs(4),
        recovery: RecoveryConfig::resilient(3),
        ..base(3, ServingTier::Template)
    };
    let report = run(config);
    assert!(report.metrics.conserved());
    // Domain-derived plans differ per host, so fault counts should not be
    // identical across all three hosts (same plan everywhere would be).
    let counts: Vec<u64> = report.metrics.hosts.iter().map(|h| h.faults).collect();
    assert!(
        !(counts[0] == counts[1] && counts[1] == counts[2] && counts[0] > 0)
            || report.metrics.faults == 0,
        "all hosts recorded identical fault counts: {counts:?}"
    );
    assert!(report.metrics.faults > 0, "storm injected nothing");
}

#[test]
fn dark_cluster_sheds_unroutable_arrivals() {
    // Every host leaves before traffic ends; the router must shed what it
    // cannot place, and the invariant still holds.
    let config = ClusterConfig {
        events: vec![
            HostEvent {
                at: Nanos::from_millis(100),
                host: 0,
                kind: HostEventKind::Leave,
            },
            HostEvent {
                at: Nanos::from_millis(100),
                host: 1,
                kind: HostEventKind::Leave,
            },
        ],
        ..base(2, ServingTier::Template)
    };
    let report = run(config);
    assert!(report.metrics.conserved());
    assert!(report.metrics.unroutable > 0, "dark cluster shed nothing");
}

#[test]
fn inert_network_model_replays_byte_identically() {
    // `net: Some(NetConfig::none())` must take the exact code paths of
    // `net: None`: no message indirection, no heartbeats, no leases, and
    // therefore the same RNG draws and the same report, byte for byte.
    // This is the replay gate that keeps every pre-net experiment stable.
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        recovery: RecoveryConfig::resilient(7),
        outages: vec![HostOutage {
            host: 1,
            start: Nanos::from_millis(400),
            end: Nanos::from_millis(900),
        }],
        ..base(3, ServingTier::Template)
    };
    let without = run(config.clone());
    let with = run(ClusterConfig {
        net: Some(sevf_net::NetConfig::none()),
        ..config
    });
    assert_eq!(
        format!("{:?}", without.metrics),
        format!("{:?}", with.metrics),
        "an inert network model changed the run"
    );
    assert_eq!(without.metrics.makespan, with.metrics.makespan);
    assert_eq!(with.metrics.net_lost, 0);
    assert_eq!(with.metrics.suspicions, 0);
}

#[test]
fn split_brain_conserves_with_zero_double_counted_completions() {
    use sevf_net::{DetectorConfig, LeaseConfig, LinkSpec, NetConfig, Partition, PartitionScope};
    // Two of three hosts fall into a minority island mid-stream and heal
    // a second later: the island keeps serving work it cannot report,
    // the router sweeps that work over to the survivor, and the island's
    // late completions arrive after the failover. Epoch fencing must
    // discard every one of them — each request reaches exactly one
    // terminal state, so conservation is exact, not approximate.
    let cut = |host| Partition {
        scope: PartitionScope::Host(host),
        start: Nanos::from_millis(400),
        end: Nanos::from_millis(1400),
    };
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        recovery: RecoveryConfig::resilient(0x4E37),
        net: Some(NetConfig {
            link: LinkSpec::datacenter(),
            partitions: vec![cut(1), cut(2)],
            horizon: Nanos::from_secs(20),
            dispatch_timeout: Nanos::from_millis(50),
            heartbeat_every: Nanos::from_millis(50),
            detector: Some(DetectorConfig::default()),
            lease: Some(LeaseConfig {
                duration: Nanos::from_millis(300),
                renew_every: Nanos::from_millis(100),
            }),
        }),
        ..base(3, ServingTier::Template)
    };
    let report = run(config);
    let m = &report.metrics;
    // The exact ledger: zero double-counted completions means the five
    // terminal states partition the issued stream with no remainder.
    assert_eq!(
        m.completed as u64 + m.shed + m.breaker_sheds + m.timeouts + m.failed,
        m.issued as u64,
        "split-brain broke conservation: {m:?}"
    );
    assert!(m.suspicions > 0, "the island must be suspected");
    assert!(m.net_lost > 0, "the cut must lose messages");
    assert!(
        m.lease_expiries > 0,
        "island hosts must park on expired leases"
    );
    assert!(m.completed > 0, "the survivor must keep serving");
}

#[test]
fn invalid_configs_are_rejected_with_chained_errors() {
    use std::error::Error;
    let bad = ClusterConfig {
        hosts: 0,
        ..base(1, ServingTier::Template)
    };
    let err = ClusterService::new(catalog(), bad).unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)));
    assert!(err.to_string().contains("at least one host"));

    let out_of_range = ClusterConfig {
        outages: vec![HostOutage {
            host: 9,
            start: Nanos::from_millis(1),
            end: Nanos::from_millis(2),
        }],
        ..base(2, ServingTier::Template)
    };
    assert!(ClusterService::new(catalog(), out_of_range).is_err());

    let from_fleet = ClusterError::from(sevf_fleet::FleetError::NoClasses);
    assert!(from_fleet.source().is_some());
}

#[test]
fn tagged_policy_replays_the_no_policy_run_byte_identically() {
    // A tag-only policy draws tenancy from its own salted RNG stream, so
    // arrivals, class sampling, placement, and every latency must match
    // the policy-free run byte for byte.
    let arm = |policy: Option<PolicyConfig>| {
        let config = ClusterConfig {
            placement: PlacementPolicy::JsqPsp,
            policy,
            ..base(3, ServingTier::Template)
        };
        run(config)
    };
    let bare = arm(None);
    let tagged = arm(Some(PolicyConfig::tagged(vec![
        Tenant::new("a", 3, PolicySpec::permissive()),
        Tenant::new("b", 1, PolicySpec::permissive()),
    ])));
    assert_eq!(
        format!("{:?}", bare.metrics),
        format!("{:?}", tagged.metrics)
    );
    assert!(bare.tenants.is_none());
    let rollup = tagged.tenants.unwrap();
    assert_eq!(rollup.len(), 2);
    let issued: usize = rollup.iter().map(|t| t.metrics.issued).sum();
    assert_eq!(issued, tagged.metrics.issued);
    assert!(rollup.iter().all(|t| t.metrics.conserved()));
}

#[test]
fn wfq_policy_conserves_per_tenant_and_quota_rejects() {
    let mut flood = PolicySpec::permissive();
    flood.slo = SloClass::Batch;
    flood.quota = Some(QuotaSpec {
        rate_per_sec: 20.0,
        burst: 4.0,
    });
    let mut premium = PolicySpec::permissive();
    premium.weight = 8;
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        admission: sevf_fleet::AdmissionConfig {
            max_inflight: 2,
            ..sevf_fleet::AdmissionConfig::default()
        },
        policy: Some(PolicyConfig {
            tenants: vec![
                Tenant::new("premium", 1, premium),
                Tenant::new("flood", 3, flood),
            ],
            scheduler: Scheduler::Wfq,
            quotas: true,
            posture: false,
        }),
        ..base(3, ServingTier::Template)
    };
    let report = run(config);
    let m = &report.metrics;
    assert!(m.conserved(), "{m:?}");
    assert!(m.rejected > 0, "the flood must exceed its bucket");
    let rollup = report.tenants.unwrap();
    let issued: usize = rollup.iter().map(|t| t.metrics.issued).sum();
    assert_eq!(issued, m.issued);
    assert!(rollup.iter().all(|t| t.metrics.conserved()), "{rollup:#?}");
    let flood = rollup.iter().find(|t| t.name == "flood").unwrap();
    assert!(flood.metrics.rejected > 0);
    let premium = rollup.iter().find(|t| t.name == "premium").unwrap();
    assert_eq!(premium.metrics.rejected, 0);
}

#[test]
fn posture_placement_needs_an_attestation_plane() {
    let mut strict = PolicySpec::permissive();
    strict.posture = Posture::Fresh;
    strict.min_tcb = 1;
    let config = ClusterConfig {
        policy: Some(PolicyConfig::enforced(vec![Tenant::new(
            "strict", 1, strict,
        )])),
        ..base(2, ServingTier::Template)
    };
    let err = ClusterService::new(catalog(), config).unwrap_err();
    assert!(matches!(err, ClusterError::Config(_)));
    assert!(err.to_string().contains("attestation plane"));
}

#[test]
fn posture_enforcement_rejects_until_the_rollout_lands_and_never_violates() {
    use sevf_attplane::AttPlaneConfig;
    let mut strict = PolicySpec::permissive();
    strict.isolation = IsolationTier::SevSnp;
    strict.posture = Posture::Fresh;
    strict.min_tcb = 1;
    let config = ClusterConfig {
        placement: PlacementPolicy::JsqPsp,
        attestation: Some(AttPlaneConfig::cached_batched()),
        tcb_rollout: Some(TcbRollout {
            start: Nanos::from_millis(500),
            stagger: Nanos::from_millis(100),
        }),
        policy: Some(PolicyConfig::enforced(vec![
            Tenant::new("strict", 1, strict),
            Tenant::new("lax", 3, PolicySpec::permissive()),
        ])),
        ..base(3, ServingTier::Template)
    };
    let report = run(config);
    let m = &report.metrics;
    assert!(m.conserved(), "{m:?}");
    assert!(m.posture_checks > 0, "the filter must run");
    assert_eq!(m.posture_violations, 0, "{m:?}");
    let rollup = report.tenants.unwrap();
    let strict = rollup.iter().find(|t| t.name == "strict").unwrap();
    // Arrivals before any host reaches TCB 1 find no eligible host and
    // are rejected; later ones complete on patched hosts only.
    assert!(strict.metrics.rejected > 0, "{:#?}", strict.metrics);
    assert!(strict.metrics.completed > 0, "{:#?}", strict.metrics);
    assert!(strict.metrics.conserved());
    let lax = rollup.iter().find(|t| t.name == "lax").unwrap();
    assert_eq!(lax.metrics.rejected, 0);
}
