//! The cluster control plane: N hosts, one router, one virtual clock.
//!
//! [`ClusterService`] generalizes the single-host fleet to a sharded
//! deployment: every host owns an independent PSP (capacity 1 — the Fig. 12
//! bottleneck does not pool across machines), CPU pool, bounded admission
//! queue, §6.2 template cache, §7.1 warm pool, and a [`FaultPlan`] fault
//! domain derived from the cluster seed via
//! [`FaultPlan::generate_for_domain`]. In front of them a [`Router`] places
//! each arrival by [`PlacementPolicy`]; per-host serving then reuses the
//! fleet machinery — the same admission control, degradation ladder, warm
//! pools, and the shared [`sevf_fleet::apply_launch_faults`] hook, so one
//! host of a cluster misbehaves exactly like the single-host fleet does.
//!
//! What is genuinely cluster-shaped:
//!
//! * **Whole-host outages** — scheduled ([`ClusterConfig::outages`]) or
//!   drawn from each host's fault domain
//!   ([`sevf_sim::fault::FaultConfig::host_outage_period`]). The host's
//!   in-flight launches are poisoned ([`FaultKind::HostOutage`]), its warm
//!   pool crashes, its template cache dies, and its queued requests **fail
//!   over**: they re-enter the router and land on surviving hosts. Under
//!   template-affinity placement the dead host's classes get a new ring
//!   owner, which must re-measure them — the §6.2 trust argument exercised
//!   *across machines*.
//! * **Membership** — hosts can gracefully leave and rejoin
//!   ([`ClusterConfig::events`]); departures drain their queue through the
//!   router without poisoning in-flight work.
//! * **Warm rebalancing** — on any membership change (outage, recovery,
//!   leave, join) the cluster-wide warm budget is re-spread over the live
//!   hosts ([`ClusterConfig::rebalance`]). SEV guests are keyed to their
//!   host's PSP and cannot migrate, so rebalancing re-provisions slots via
//!   template launches on the new hosts rather than moving guests.
//!
//! Everything is a pure function of `(catalog, config)`: same seed, same
//! byte-identical report.

use std::collections::BTreeSet;

use sevf_attplane::{AttPlane, AttPlaneConfig, AttPlaneMetrics, Verdict};
use sevf_fleet::admission::{Pending, SchedPolicy};
use sevf_fleet::blueprint::{Blueprint, Catalog, LaunchCache};
use sevf_fleet::metrics::FleetMetrics;
use sevf_fleet::pool::WarmPool;
use sevf_fleet::recovery::{CircuitBreaker, RecoveryConfig};
use sevf_fleet::service::{apply_launch_faults, ServingTier};
use sevf_fleet::workload::{open_arrivals, Arrival, RequestMix};
use sevf_fleet::{AdmissionConfig, BoundedQueue};
use sevf_net::{LeaseLedger, LinkId, LinkPlan, NetConfig, PhiDetector};
use sevf_obs::{MarkerKind, Outcome as ReqOutcome, Recorder, TraceLog};
use sevf_policy::{
    HostPosture, IsolationTier, Offer, PolicyConfig, PolicyDecision, PolicyEngine, Scheduler,
    TenantMetrics, TenantRollup, WfqQueue,
};
use sevf_psp::TemplateKey;
use sevf_scale::{
    curve_arrivals, Autoscaler, AutoscalerConfig, Observation, ScaleAction, Workload,
};
use sevf_sim::fault::{FaultConfig, FaultKind, FaultPlan};
use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, JobOutcome, Nanos, RunTrace};
use sevf_vmm::machine::HOST_CORES;

use crate::host::Host;
use crate::metrics::ClusterMetrics;
use crate::placement::{PlacementPolicy, Router};
use crate::ClusterError;

/// A scheduled whole-host outage (deterministic drills; random per-domain
/// outages come from the fault config instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOutage {
    /// Host that dies.
    pub host: usize,
    /// Instant the host drops off the cluster.
    pub start: Nanos,
    /// Instant the host is back (empty cache, empty pool).
    pub end: Nanos,
}

/// What a scheduled membership event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEventKind {
    /// Graceful departure: queue drains through the router, in-flight work
    /// finishes, no poisoning.
    Leave,
    /// (Re)join: the host becomes routable again.
    Join,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostEvent {
    /// When it happens on the virtual clock.
    pub at: Nanos,
    /// Which host.
    pub host: usize,
    /// Leave or join.
    pub kind: HostEventKind,
}

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hosts (fault domains / PSPs).
    pub hosts: usize,
    /// Serving tier every host runs at.
    pub tier: ServingTier,
    /// Arrival process offered to the whole cluster.
    pub arrival: Arrival,
    /// Request mix over catalog classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Total requests to serve.
    pub requests: usize,
    /// Seed for arrivals, class sampling, placement sampling, and the
    /// per-host fault domains.
    pub seed: u64,
    /// Per-host admission-controller knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target per class *per host*; the cluster-wide warm budget
    /// is `warm_target * hosts` and is what rebalancing re-spreads.
    pub warm_target: usize,
    /// Placement policy of the router.
    pub placement: PlacementPolicy,
    /// Virtual nodes per host on the consistent-hash ring.
    pub vnodes: usize,
    /// Per-host fault model; each host replays its own domain-derived plan.
    pub fault: Option<FaultConfig>,
    /// Horizon the per-host fault schedules cover.
    pub fault_horizon: Nanos,
    /// Scheduled whole-host outages (on top of any fault-domain outages).
    pub outages: Vec<HostOutage>,
    /// Scheduled graceful membership changes.
    pub events: Vec<HostEvent>,
    /// Re-spread the warm budget over live hosts on membership changes.
    pub rebalance: bool,
    /// How requests recover from failures (shared by all hosts).
    pub recovery: RecoveryConfig,
    /// Attestation control plane; `None` = no verifier in the dispatch
    /// path (byte-identical to pre-attestation runs).
    pub attestation: Option<AttPlaneConfig>,
    /// Staggered TCB/firmware rollout (re-attestation storm). Requires
    /// `attestation`.
    pub tcb_rollout: Option<TcbRollout>,
    /// Key-compromise revocation drill. Requires `attestation`.
    pub revocation: Option<RevocationDrill>,
    /// Network between the router, the hosts, and the verifier. `None`
    /// (or a [`NetConfig::none`] config) bypasses message indirection
    /// entirely, replaying pre-net output byte for byte.
    pub net: Option<NetConfig>,
    /// Multi-tenant policy: tenant registry, QoS scheduler, quotas, and
    /// attestation-posture placement. `None` consumes zero randomness and
    /// replays pre-policy output byte for byte.
    pub policy: Option<PolicyConfig>,
    /// Trace-driven workload curve shaping open-loop arrivals (diurnal,
    /// flash crowd, regional failover). `None` uses the fixed-rate
    /// generator, replaying pre-curve output byte for byte.
    pub workload: Option<Workload>,
    /// The autoscaler: drives membership and warm-pool targets from load
    /// between `[min_hosts, max_hosts]`, with `hosts` as the starting
    /// point. `None` keeps membership static and consumes zero randomness,
    /// replaying pre-autoscaler output byte for byte.
    pub autoscaler: Option<AutoscalerConfig>,
}

/// A staggered TCB/firmware rollout: host `h` re-measures at
/// `start + h * stagger`. Each re-measurement bumps the host's TCB
/// version — every cert/report cached under the old version silently
/// stops matching — and invalidates the host's template cache (new
/// firmware, new measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcbRollout {
    /// When the first host re-measures.
    pub start: Nanos,
    /// Gap between consecutive hosts.
    pub stagger: Nanos,
}

/// A key-compromise drill: `host`'s chip key is distrusted at `at`. Its
/// templates die with the key (§6.2), its in-flight guests fail over and
/// re-attest on surviving hosts, and the host leaves service for the
/// rest of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocationDrill {
    /// The host whose chip is distrusted.
    pub host: usize,
    /// When the revocation lands.
    pub at: Nanos,
}

impl ClusterConfig {
    /// An open-loop cluster at `rate_per_sec` aggregate offered load.
    pub fn open_loop(hosts: usize, tier: ServingTier, rate_per_sec: f64, requests: usize) -> Self {
        ClusterConfig {
            hosts,
            tier,
            arrival: Arrival::Open { rate_per_sec },
            mix: None,
            requests,
            seed: 0xC1_05_7E,
            admission: AdmissionConfig::default(),
            warm_target: 8,
            placement: PlacementPolicy::JsqPsp,
            vnodes: 64,
            fault: None,
            fault_horizon: Nanos::ZERO,
            outages: Vec::new(),
            events: Vec::new(),
            rebalance: true,
            recovery: RecoveryConfig::none(),
            attestation: None,
            tcb_rollout: None,
            revocation: None,
            net: None,
            policy: None,
            workload: None,
            autoscaler: None,
        }
    }

    /// The isolation tier the cluster substrate actually provides: SEV-SNP
    /// when an attestation plane vouches for the hosts (SNP reports, VCEK
    /// chains), plain SEV otherwise.
    pub fn substrate_isolation(&self) -> IsolationTier {
        if self.attestation.is_some() {
            IsolationTier::SevSnp
        } else {
            IsolationTier::Sev
        }
    }

    /// Checks host indices, arrival shape, vnodes, fault, and recovery
    /// knobs.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, catalog_classes: usize) -> Result<(), ClusterError> {
        if self.hosts == 0 {
            return Err(ClusterError::Config("cluster needs at least one host"));
        }
        if self.vnodes == 0 {
            return Err(ClusterError::Config("ring needs at least one virtual node"));
        }
        if let Some(mix) = &self.mix {
            if mix.max_class() >= catalog_classes {
                return Err(ClusterError::Config(
                    "mix references a class outside the catalog",
                ));
            }
        }
        if let Arrival::Closed { users, .. } = self.arrival {
            if users == 0 {
                return Err(ClusterError::Config("closed loop needs at least one user"));
            }
        }
        for outage in &self.outages {
            if outage.host >= self.hosts {
                return Err(ClusterError::Config(
                    "scheduled outage names an unknown host",
                ));
            }
            if outage.start >= outage.end {
                return Err(ClusterError::Config(
                    "scheduled outage must end after it starts",
                ));
            }
        }
        for event in &self.events {
            if event.host >= self.hosts {
                return Err(ClusterError::Config(
                    "membership event names an unknown host",
                ));
            }
        }
        if let Some(fault) = &self.fault {
            fault.validate().map_err(ClusterError::FaultPlan)?;
            if self.fault_horizon == Nanos::ZERO && !fault.is_none() {
                return Err(ClusterError::Config(
                    "fault config needs a positive fault_horizon",
                ));
            }
        }
        self.recovery.validate().map_err(ClusterError::Recovery)?;
        if let Some(att) = &self.attestation {
            att.validate().map_err(ClusterError::AttPlane)?;
        }
        if self.tcb_rollout.is_some() && self.attestation.is_none() {
            return Err(ClusterError::Config(
                "tcb_rollout needs an attestation plane",
            ));
        }
        if let Some(drill) = &self.revocation {
            if self.attestation.is_none() {
                return Err(ClusterError::Config(
                    "revocation drill needs an attestation plane",
                ));
            }
            if drill.host >= self.hosts {
                return Err(ClusterError::Config(
                    "revocation drill names an unknown host",
                ));
            }
        }
        if let Some(net) = &self.net {
            net.validate(self.hosts).map_err(ClusterError::Net)?;
        }
        if let Some(policy) = &self.policy {
            policy
                .validate(catalog_classes)
                .map_err(ClusterError::Policy)?;
            if policy.posture && self.attestation.is_none() {
                return Err(ClusterError::Config(
                    "posture enforcement needs an attestation plane",
                ));
            }
        }
        if let Some(curve) = &self.workload {
            curve.validate()?;
            if !matches!(self.arrival, Arrival::Open { .. }) {
                return Err(ClusterError::Config(
                    "workload curves shape open-loop arrivals only",
                ));
            }
        }
        if let Some(auto) = &self.autoscaler {
            auto.validate()?;
            if !matches!(self.arrival, Arrival::Open { .. }) {
                return Err(ClusterError::Config(
                    "the autoscaler drives open-loop clusters only",
                ));
            }
            if self.hosts < auto.min_hosts || self.hosts > auto.max_hosts {
                return Err(ClusterError::Config(
                    "starting host count must sit within [min_hosts, max_hosts]",
                ));
            }
            // The network and attestation layers size their link plans and
            // per-host ledgers to a fixed fleet; elastic membership would
            // silently leave spare hosts outside those structures.
            if self.net.is_some() || self.attestation.is_some() {
                return Err(ClusterError::Config(
                    "the autoscaler cannot combine with net or attestation layers",
                ));
            }
        }
        Ok(())
    }
}

/// Outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Tier that served.
    pub tier: ServingTier,
    /// Placement policy that routed.
    pub placement: PlacementPolicy,
    /// Host count.
    pub hosts: usize,
    /// Aggregate offered load (open loops only).
    pub offered_rps: Option<f64>,
    /// The cluster-wide rollup.
    pub metrics: ClusterMetrics,
    /// Attestation-plane counters, when a verifier was configured.
    pub attestation: Option<AttPlaneMetrics>,
    /// Per-tenant terminal accounting, when a policy was configured.
    pub tenants: Option<Vec<TenantRollup>>,
    /// Autoscaler decision counters and audit log, when one was configured.
    pub autoscale: Option<AutoscaleRollup>,
    /// Resource-occupancy trace (per-host PSP/CPU ids interleaved).
    pub trace: RunTrace,
}

/// What the autoscaler did over one run: monotone decision counters (the
/// obs markers must match them exactly) plus the full audit log of applied
/// membership and warm-pool changes, which the invariant battery replays.
#[derive(Debug, Clone)]
pub struct AutoscaleRollup {
    /// The policy that ran ("reactive" or "predictive").
    pub policy: &'static str,
    /// Control ticks processed.
    pub ticks: u64,
    /// Scale-out decisions emitted.
    pub scale_outs: u64,
    /// Scale-in decisions emitted.
    pub scale_ins: u64,
    /// Pre-warm prescriptions emitted.
    pub prewarms: u64,
    /// Smallest live-host count observed at a control tick.
    pub min_live: usize,
    /// Largest live-host count observed at a control tick.
    pub max_live: usize,
    /// Applied changes, in virtual-time order.
    pub events: Vec<ScaleEvent>,
}

/// One applied autoscaling change, as the cluster recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// Spare hosts joined via the graceful-join path.
    Out {
        /// When the decision was applied.
        at: Nanos,
        /// Hosts actually joined (bounded by the spare supply).
        added: usize,
        /// Live hosts after the join.
        live: usize,
        /// Sum of per-host warm targets after the join.
        warm_sum: usize,
    },
    /// Hosts drained via the graceful-leave path.
    In {
        /// When the decision was applied.
        at: Nanos,
        /// Hosts actually drained (only idle, empty-queue victims qualify).
        removed: usize,
        /// Live hosts after the drain.
        live: usize,
        /// In-flight launches across the chosen victims (must be 0).
        victims_inflight: usize,
        /// Queued requests across the chosen victims (must be 0).
        victims_queued: usize,
        /// Sum of per-host warm targets after the drain.
        warm_sum: usize,
    },
    /// Per-host warm-pool targets re-prescribed ahead of a ramp.
    PreWarm {
        /// When the prescription was applied.
        at: Nanos,
        /// The per-host target applied to every live host.
        per_host: usize,
        /// The cluster-wide warm budget being spread.
        budget: usize,
        /// Live hosts the prescription covered.
        live: usize,
        /// Sum of per-host warm targets after the prescription.
        warm_sum: usize,
    },
}

/// Verdict decided for a launch at dispatch; poisoning (PSP reset or host
/// outage) can still override it at completion.
#[derive(Debug, Clone, Copy)]
enum LaunchFate {
    Ok,
    Fault(FaultKind),
}

/// What an engine job index means to the cluster control plane.
#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Arrival marker for a request.
    Arrival { request: usize },
    /// A launch (or warm invocation) serving `request` on `host`. `psp_ns`
    /// is the serialized PSP work this job holds on the host's backlog;
    /// `epoch` is the request's dispatch epoch at injection (net mode).
    Launch {
        request: usize,
        class: usize,
        host: usize,
        epoch: u32,
        fate: LaunchFate,
        fill: Option<TemplateKey>,
        psp: bool,
        psp_ns: Nanos,
    },
    /// Backoff marker: completion re-enters routing (fresh placement — this
    /// is how failed-over requests land on a surviving host).
    Retry { request: usize },
    /// Background warm-pool refill on `host`.
    Replenish {
        class: usize,
        host: usize,
        psp: bool,
        psp_ns: Nanos,
    },
    /// `host`'s PSP firmware reset begins.
    PspResetStart { host: usize },
    /// `host`'s PSP firmware reset outage ends.
    PspResetEnd { host: usize },
    /// A warm guest on `host` crashes (`idx` indexes the host's schedule).
    WarmCrash { host: usize, idx: usize },
    /// `host` drops off the cluster (outage) or departs (graceful).
    HostDown { host: usize, departure: bool },
    /// `host` comes back from an outage or rejoins after departing.
    HostUp { host: usize, departure: bool },
    /// A TCB/firmware rollout re-measures `host` (re-attestation storm).
    TcbRollout { host: usize },
    /// `host`'s chip key is distrusted (key-compromise drill).
    Revoke { host: usize },
    /// A dispatch message in flight from the router to `host`.
    NetDispatch {
        request: usize,
        epoch: u32,
        host: usize,
    },
    /// The router's dispatch timeout firing for a message the link lost.
    NetDispatchLost {
        request: usize,
        epoch: u32,
        host: usize,
    },
    /// An attempt outcome in flight from `host` back to the router.
    /// Host→router messages ride a reliable transport: a partition
    /// buffers them until the heal instead of dropping them.
    NetCompletion {
        request: usize,
        epoch: u32,
        host: usize,
        ok: bool,
    },
    /// A refusal heading back to the router: the host was parked, fenced,
    /// or dead when the dispatch arrived (transport-level errors are
    /// router-visible). Carries the epoch it refuses — a buffered old
    /// refusal must not cancel a fresh dispatch after the host rejoins.
    NetNack {
        request: usize,
        epoch: u32,
        host: usize,
    },
    /// A heartbeat from `host` that survived the lossy links.
    Heartbeat { host: usize },
    /// The router probes the failure detector's deadline for `host`.
    SuspectCheck { host: usize },
    /// The router's lease-renewal tick for `host`.
    LeaseRenew { host: usize },
    /// A lease grant delivered to `host`.
    LeaseGrant { host: usize },
    /// `host`'s lease lapses: it parks unless a grant extended it.
    LeaseExpire { host: usize },
    /// The router fails a suspected host's outstanding work over, once
    /// every lease it ever granted that host has provably lapsed.
    FailoverSweep { host: usize },
    /// The router↔verifier link partitions (attestation blackout).
    VerifierDown,
    /// The router↔verifier link heals.
    VerifierUp,
    /// The autoscaler's control-loop tick.
    AutoscaleTick,
}

/// The cluster control plane.
#[derive(Debug)]
pub struct ClusterService {
    catalog: Catalog,
    config: ClusterConfig,
}

/// Runtime state of the network layer. Present only when a real
/// [`NetConfig`] is active; absent, the control plane calls hosts
/// directly and replays pre-net output byte for byte.
struct NetRuntime {
    plan: LinkPlan,
    detector: Option<PhiDetector>,
    ledger: Option<LeaseLedger>,
    /// Requests the router believes each host is currently serving.
    outstanding: Vec<BTreeSet<usize>>,
    /// The router's current suspicion verdict per host.
    suspected: Vec<bool>,
    /// Per-message token stream for stateless link draws.
    seq: u64,
    suspicions: u64,
    suspicions_cleared: u64,
    false_suspicions: u64,
    lease_expiries: u64,
    net_lost: u64,
    net_timeouts: u64,
    net_nacks: u64,
    stale_completions: u64,
    double_completion_attempts: u64,
}

/// Token offset for heartbeat draws on the host→router links, so the
/// pre-scheduled heartbeat stream never correlates with the `seq`-tokened
/// message draws sharing the link.
const HB_TOKEN_BASE: u64 = 0x4845_0000_0000;

/// Salt for the dedicated tenant-tagging RNG stream (same constant the
/// fleet uses, so a 1-host cluster and the fleet tag identically).
const TENANT_SALT: u64 = 0x7E4A_917E_5EF0_11AD;

/// Live autoscaler state: the pure decision engine plus the cluster-side
/// bookkeeping its Observations and the audit log are built from.
struct ScalerState {
    auto: Autoscaler,
    /// Requests that arrived since the previous control tick.
    arrivals_since: usize,
    /// Applied changes, in virtual-time order.
    events: Vec<ScaleEvent>,
    /// Live-host extrema observed at control ticks.
    min_live: usize,
    max_live: usize,
}

/// Live policy-layer state: the engine (specs + quota buckets), tenant
/// tags, per-tenant terminal accounting, and the posture counters.
///
/// Tenant tagging draws from its own RNG stream (`seed ^ TENANT_SALT`), so
/// the arrival, class, and placement streams the no-policy path consumes
/// are untouched — FIFO and WFQ arms of a sweep serve the *same* request
/// stream, and disabling policy replays older runs byte-identically.
struct PolicyState {
    engine: PolicyEngine,
    tenant_rng: XorShift64,
    /// Per-tenant class mixes (`None` = the cluster-wide mix).
    mixes: Vec<Option<RequestMix>>,
    /// Tenant tag per request id.
    req_tenant: Vec<usize>,
    /// Per-tenant terminal accounting.
    tenants: Vec<TenantMetrics>,
    posture_checks: u64,
    posture_redirects: u64,
    posture_violations: u64,
}

/// Mutable serving state threaded through the DES completion hook.
struct State<'a> {
    catalog: &'a Catalog,
    config: &'a ClusterConfig,
    hosts: Vec<Host>,
    router: Router,
    mix: RequestMix,
    rng: XorShift64,
    meta: Vec<JobKind>,
    req_class: Vec<usize>,
    arrived: Vec<Nanos>,
    attempts: Vec<u32>,
    /// Jobs whose host died under them; completion is a
    /// [`FaultKind::HostOutage`] failure.
    poisoned_host: BTreeSet<usize>,
    /// Jobs whose host's PSP reset under them; completion is a
    /// [`FaultKind::PspReset`] failure.
    poisoned_reset: BTreeSet<usize>,
    /// Jobs whose host parked on an expired lease under them; completion
    /// is a [`FaultKind::NetPartition`] failure refused back to the router.
    poisoned_lease: BTreeSet<usize>,
    /// Whether each request has reached a terminal state. Maintained in
    /// every mode (it never touches the RNG); consulted by the net layer
    /// to fence stale messages, and asserted at every terminal site.
    done: Vec<bool>,
    /// Dispatch epoch per request: bumped on every routed send so stale
    /// messages from earlier attempts are discarded, not double-counted.
    epoch: Vec<u32>,
    /// The network layer, when a real config is active.
    net: Option<NetRuntime>,
    issued: usize,
    // Cluster-level terminal counters (per-host metrics keep what is
    // naturally host-scoped: completions, latencies, caches, faults).
    timeouts: u64,
    failed: u64,
    breaker_sheds: u64,
    retries: u64,
    unroutable: u64,
    failovers: u64,
    rebalances: u64,
    rejected: u64,
    /// Attestation control plane, when configured: every fault-free
    /// dispatch is verified and carries the verifier's latency.
    plane: Option<AttPlane>,
    /// Policy layer, when configured: the admission choke point every
    /// routed dispatch flows through.
    policy: Option<PolicyState>,
    /// Autoscaler runtime, when configured. Its decision engine is pure
    /// and RNG-free; `None` consumes zero randomness.
    scaler: Option<ScalerState>,
    /// Virtual instant each host last became available; `None` while the
    /// host is out, departed, or a cold spare. Pure accounting (no RNG).
    live_since: Vec<Option<Nanos>>,
    /// Host-seconds of availability accrued per host.
    host_secs: Vec<f64>,
    /// Autoscale-joined spares warming their pools before taking traffic:
    /// up (and billing host-seconds) but not yet routable. The scaler's
    /// warm-before-serve join — cold SEV dogpiles are the alternative.
    warming: Vec<bool>,
    /// Observability recorder. Never touches the RNG, the metrics, or the
    /// fault plans, so enabling it cannot change a run's results.
    rec: Recorder,
}

impl ClusterService {
    /// Builds a cluster over a measured catalog (shared by all hosts: the
    /// same class measures to the same template key everywhere, which is
    /// what lets affinity placement pick an owner).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Config`], [`ClusterError::FaultPlan`], or
    /// [`ClusterError::Recovery`] for invalid knobs.
    pub fn new(catalog: Catalog, config: ClusterConfig) -> Result<Self, ClusterError> {
        config.validate(catalog.len())?;
        Ok(ClusterService { catalog, config })
    }

    /// Serves the configured request stream to completion.
    pub fn run(self) -> ClusterReport {
        self.run_with(Recorder::disabled()).0
    }

    /// Serves the stream with span recording on: same report (the recorder
    /// never touches the RNG, metrics, or fault plans), plus the assembled
    /// [`TraceLog`] of causal spans, markers, and resource occupancy.
    pub fn run_traced(self) -> (ClusterReport, TraceLog) {
        self.run_with(Recorder::enabled())
    }

    fn run_with(self, rec: Recorder) -> (ClusterReport, TraceLog) {
        let mut engine = DesEngine::new();
        let net_cfg = self.config.net.clone().filter(|n| !n.is_none());
        // The policy engine (and its per-host WFQ lane specs) build before
        // the hosts so each host can own its fair queue.
        let policy_engine = self.config.policy.as_ref().map(|pcfg| {
            PolicyEngine::new(pcfg, self.config.substrate_isolation(), self.catalog.len())
                .expect("policy config validated in new()")
        });
        let lane_specs = match (&self.config.policy, &policy_engine) {
            (Some(pcfg), Some(eng)) if pcfg.scheduler == Scheduler::Wfq => Some(eng.lane_specs()),
            _ => None,
        };
        // Hosts start the run holding a lease granted at time zero.
        let initial_lease = net_cfg
            .as_ref()
            .and_then(|n| n.lease)
            .map(|l| l.duration)
            .unwrap_or(Nanos::from_nanos(u64::MAX));
        // With an autoscaler the fleet is built out to max_hosts; hosts
        // beyond the configured starting count begin as cold departed
        // spares (no warm slots, no measured templates) that only the
        // scaler's graceful-join path can bring into service. Without one,
        // fleet == config.hosts and nothing below changes.
        let fleet = self
            .config
            .autoscaler
            .as_ref()
            .map_or(self.config.hosts, |a| a.max_hosts);
        let mut hosts = Vec::with_capacity(fleet);
        for id in 0..fleet {
            let spare = id >= self.config.hosts;
            let psp = engine.add_resource(format!("psp{id}"), 1);
            let cpu = engine.add_resource(format!("cpus{id}"), HOST_CORES);
            let plan = self.config.fault.as_ref().map(|f| {
                FaultPlan::generate_for_domain(
                    self.config.seed,
                    id as u64,
                    f.clone(),
                    self.config.fault_horizon,
                )
                .expect("fault config validated in new()")
            });
            let warm = if self.config.tier == ServingTier::WarmPool && !spare {
                self.config.warm_target
            } else {
                0
            };
            let mut cache = LaunchCache::new();
            if self.config.tier == ServingTier::WarmPool && !spare {
                // The pool's resident guests were launched from the
                // templates, so each host starts with them live.
                for (idx, class) in self.catalog.classes().iter().enumerate() {
                    cache.prefill(class.key, idx);
                }
            }
            hosts.push(Host {
                id,
                psp,
                cpu,
                out: false,
                departed: spare,
                queue: BoundedQueue::new(self.config.admission.queue_bound),
                wfq: lane_specs.as_ref().map(|specs| {
                    WfqQueue::new(
                        self.config.admission.queue_bound,
                        specs,
                        self.config.seed.wrapping_add(id as u64),
                    )
                    .expect("policy config validated in new()")
                }),
                pool: WarmPool::prewarmed(
                    self.catalog.len(),
                    warm,
                    self.catalog
                        .classes()
                        .iter()
                        .map(|c| c.resident_bytes)
                        .collect(),
                ),
                cache,
                breakers: self
                    .config
                    .recovery
                    .breaker
                    .map(|b| vec![CircuitBreaker::new(b); self.catalog.len()]),
                plan,
                psp_inflight: BTreeSet::new(),
                host_inflight: BTreeSet::new(),
                launch_seq: 0,
                inflight: 0,
                lease_until: initial_lease,
                parked: false,
                committed_psp: Nanos::ZERO,
                metrics: FleetMetrics::default(),
            });
        }

        let initial_hosts = self.config.hosts;
        let mut state = State {
            catalog: &self.catalog,
            config: &self.config,
            live_since: (0..fleet)
                .map(|id| (id < initial_hosts).then_some(Nanos::ZERO))
                .collect(),
            host_secs: vec![0.0; fleet],
            warming: vec![false; fleet],
            scaler: self.config.autoscaler.as_ref().map(|cfg| ScalerState {
                auto: Autoscaler::new(*cfg).expect("autoscaler config validated in new()"),
                arrivals_since: 0,
                events: Vec::new(),
                min_live: initial_hosts,
                max_live: initial_hosts,
            }),
            hosts,
            router: Router::new(
                self.config.placement,
                self.config.seed,
                self.config.hosts,
                self.config.vnodes,
            ),
            mix: self
                .config
                .mix
                .clone()
                .unwrap_or_else(|| RequestMix::uniform(self.catalog.len())),
            rng: XorShift64::new(self.config.seed ^ 0x5EF0_F1EE7),
            meta: Vec::new(),
            req_class: Vec::new(),
            arrived: Vec::new(),
            attempts: Vec::new(),
            poisoned_host: BTreeSet::new(),
            poisoned_reset: BTreeSet::new(),
            poisoned_lease: BTreeSet::new(),
            done: Vec::new(),
            epoch: Vec::new(),
            net: net_cfg.map(|cfg| {
                let plan = LinkPlan::generate(self.config.seed, cfg.clone(), self.config.hosts)
                    .expect("net config validated in new()");
                let margin = plan.max_delay();
                NetRuntime {
                    detector: cfg
                        .detector
                        .map(|d| PhiDetector::new(self.config.hosts, d, cfg.heartbeat_every)),
                    ledger: cfg
                        .lease
                        .map(|l| LeaseLedger::new(self.config.hosts, l, margin)),
                    plan,
                    outstanding: vec![BTreeSet::new(); self.config.hosts],
                    suspected: vec![false; self.config.hosts],
                    seq: 0,
                    suspicions: 0,
                    suspicions_cleared: 0,
                    false_suspicions: 0,
                    lease_expiries: 0,
                    net_lost: 0,
                    net_timeouts: 0,
                    net_nacks: 0,
                    stale_completions: 0,
                    double_completion_attempts: 0,
                }
            }),
            issued: 0,
            timeouts: 0,
            failed: 0,
            breaker_sheds: 0,
            retries: 0,
            unroutable: 0,
            failovers: 0,
            rebalances: 0,
            rejected: 0,
            plane: self.config.attestation.map(|cfg| {
                AttPlane::new(cfg, self.config.hosts)
                    .expect("attestation config validated in new()")
            }),
            policy: policy_engine.map(|engine| {
                let pcfg = self.config.policy.as_ref().expect("engine implies config");
                PolicyState {
                    engine,
                    tenant_rng: XorShift64::new(self.config.seed ^ TENANT_SALT),
                    mixes: pcfg
                        .tenants
                        .iter()
                        .map(|t| {
                            if t.class_mix.is_empty() {
                                None
                            } else {
                                Some(RequestMix::weighted(t.class_mix.clone()))
                            }
                        })
                        .collect(),
                    req_tenant: Vec::new(),
                    tenants: vec![TenantMetrics::default(); pcfg.tenants.len()],
                    posture_checks: 0,
                    posture_redirects: 0,
                    posture_violations: 0,
                }
            }),
            rec,
        };

        // Arrivals: open loops pre-draw every instant, closed loops start
        // one marker per user and chain the rest on completions.
        let mut seed_jobs = Vec::new();
        match self.config.arrival {
            Arrival::Open { rate_per_sec } => {
                // A workload curve shapes the arrival instants; `None`
                // takes the fixed-rate generator's exact path (same draws,
                // same rounding) and replays pre-curve output byte for
                // byte.
                let times = match &self.config.workload {
                    Some(curve) => curve_arrivals(curve, self.config.requests, &mut state.rng),
                    None => open_arrivals(rate_per_sec, self.config.requests, &mut state.rng),
                };
                let last_arrival = times.last().copied().unwrap_or(Nanos::ZERO);
                for at in times {
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
                // The autoscaler's control loop: one tick per period up to
                // the last arrival (serving continues past it; extending
                // ticks further would stretch every arm's makespan).
                if let Some(auto) = &self.config.autoscaler {
                    let mut at = auto.tick;
                    while at <= last_arrival {
                        seed_jobs.push(Job::released_at(at, vec![]));
                        state.meta.push(JobKind::AutoscaleTick);
                        at += auto.tick;
                    }
                }
            }
            Arrival::Closed { users, .. } => {
                for i in 0..users.min(self.config.requests) {
                    let at = Nanos::from_micros(i as u64);
                    let request = state.new_request(at);
                    seed_jobs.push(Job::released_at(at, vec![]));
                    state.meta.push(JobKind::Arrival { request });
                }
            }
        }

        // Per-host fault schedules: each host's domain plan contributes its
        // own resets, warm crashes, and whole-host outage windows.
        for host in 0..state.hosts.len() {
            let Some(plan) = state.hosts[host].plan.clone() else {
                continue;
            };
            for window in plan.resets() {
                seed_jobs.push(Job::released_at(window.start, vec![]));
                state.meta.push(JobKind::PspResetStart { host });
                seed_jobs.push(Job::released_at(window.end, vec![]));
                state.meta.push(JobKind::PspResetEnd { host });
            }
            for idx in 0..plan.warm_crashes().len() {
                seed_jobs.push(Job::released_at(plan.warm_crashes()[idx], vec![]));
                state.meta.push(JobKind::WarmCrash { host, idx });
            }
            for window in plan.host_outages() {
                seed_jobs.push(Job::released_at(window.start, vec![]));
                state.meta.push(JobKind::HostDown {
                    host,
                    departure: false,
                });
                seed_jobs.push(Job::released_at(window.end, vec![]));
                state.meta.push(JobKind::HostUp {
                    host,
                    departure: false,
                });
            }
        }

        // Scheduled outages and membership events.
        for outage in &self.config.outages {
            seed_jobs.push(Job::released_at(outage.start, vec![]));
            state.meta.push(JobKind::HostDown {
                host: outage.host,
                departure: false,
            });
            seed_jobs.push(Job::released_at(outage.end, vec![]));
            state.meta.push(JobKind::HostUp {
                host: outage.host,
                departure: false,
            });
        }
        for event in &self.config.events {
            seed_jobs.push(Job::released_at(event.at, vec![]));
            state.meta.push(match event.kind {
                HostEventKind::Leave => JobKind::HostDown {
                    host: event.host,
                    departure: true,
                },
                HostEventKind::Join => JobKind::HostUp {
                    host: event.host,
                    departure: true,
                },
            });
        }

        // The re-attestation storm: the rollout walks the hosts on a
        // stagger, and the key-compromise drill lands as one marker.
        if let Some(rollout) = &self.config.tcb_rollout {
            for host in 0..self.config.hosts {
                let at = rollout.start + rollout.stagger.scale(host as u64);
                seed_jobs.push(Job::released_at(at, vec![]));
                state.meta.push(JobKind::TcbRollout { host });
            }
        }
        if let Some(drill) = &self.config.revocation {
            seed_jobs.push(Job::released_at(drill.at, vec![]));
            state.meta.push(JobKind::Revoke { host: drill.host });
        }

        // Network schedules: heartbeats, detector probes, lease ticks, and
        // verifier blackout edges — all precomputed from the link plan so
        // the message layer stays a pure function of the seed.
        let mut net_jobs: Vec<(Nanos, JobKind)> = Vec::new();
        if let Some(net) = &state.net {
            let cfg = net.plan.config();
            if let Some(det) = &net.detector {
                let beats = cfg.horizon.as_nanos() / cfg.heartbeat_every.as_nanos();
                for host in 0..self.config.hosts {
                    for k in 1..=beats {
                        let send = cfg.heartbeat_every.scale(k);
                        let link = LinkId::HostToRouter(host);
                        if net.plan.host_cut(host, send).is_some()
                            || net.plan.lost(link, HB_TOKEN_BASE + k)
                        {
                            continue;
                        }
                        let at = send + net.plan.delay(link, HB_TOKEN_BASE + k);
                        net_jobs.push((at, JobKind::Heartbeat { host }));
                    }
                    net_jobs.push((det.deadline(host), JobKind::SuspectCheck { host }));
                }
            }
            if let Some(lease) = cfg.lease {
                let renews = cfg.horizon.as_nanos() / lease.renew_every.as_nanos();
                for host in 0..self.config.hosts {
                    net_jobs.push((lease.duration, JobKind::LeaseExpire { host }));
                    for k in 1..=renews {
                        net_jobs.push((lease.renew_every.scale(k), JobKind::LeaseRenew { host }));
                    }
                }
            }
            for window in net.plan.verifier_windows() {
                net_jobs.push((window.start, JobKind::VerifierDown));
                net_jobs.push((window.end, JobKind::VerifierUp));
            }
        }
        for (at, kind) in net_jobs {
            seed_jobs.push(Job::released_at(at, vec![]));
            state.meta.push(kind);
        }

        let (_, trace) = engine.run_dynamic(seed_jobs, |outcome, inject| {
            state.on_event(outcome, inject);
        });

        // Feed the recorder the true contended intervals so Step spans land
        // where the resources actually ran them.
        if state.rec.on() {
            for entry in trace.entries() {
                state.rec.occupy(
                    engine.resource_name(entry.resource),
                    entry.job,
                    entry.start,
                    entry.end,
                );
            }
        }
        let log = state.rec.build();

        // Close every still-open availability interval against the end of
        // the run, then sum: the provisioning-cost axis of the frontier.
        let makespan = trace.makespan();
        for host in 0..state.hosts.len() {
            if let Some(since) = state.live_since[host].take() {
                state.host_secs[host] += makespan.saturating_sub(since).as_secs_f64();
            }
        }
        let mut metrics = ClusterMetrics {
            issued: state.issued,
            makespan,
            host_seconds: state.host_secs.iter().sum(),
            ..ClusterMetrics::default()
        };
        for host in &mut state.hosts {
            match &host.wfq {
                Some(wfq) => {
                    host.metrics.shed = wfq.shed();
                    host.metrics.max_queue_depth = wfq.max_depth();
                }
                None => {
                    host.metrics.shed = host.queue.shed();
                    host.metrics.max_queue_depth = host.queue.max_depth();
                }
            }
            host.metrics.cache_hits = host.cache.hits();
            host.metrics.cache_misses = host.cache.misses();
            host.metrics.warm_hits = host.pool.hits();
            host.metrics.warm_misses = host.pool.misses();
            host.metrics.evicted = host.pool.evicted();
            host.metrics.psp_utilization = trace.utilization(host.psp, 1);
            host.metrics.cpu_utilization = trace.utilization(host.cpu, HOST_CORES);
            host.metrics.makespan = trace.makespan();
            if let Some(breakers) = &host.breakers {
                host.metrics.breaker_trips = breakers.iter().map(|b| b.trips()).sum();
            }
            let util = host.metrics.psp_utilization;
            metrics.absorb_host(host.id, &host.metrics, util);
        }
        metrics.shed += state.unroutable;
        metrics.unroutable = state.unroutable;
        metrics.timeouts += state.timeouts;
        metrics.failed += state.failed;
        metrics.rejected = state.rejected;
        metrics.breaker_sheds += state.breaker_sheds;
        metrics.retries += state.retries;
        metrics.failovers = state.failovers;
        metrics.rebalances = state.rebalances;
        if let Some(ps) = &state.policy {
            metrics.posture_checks = ps.posture_checks;
            metrics.posture_redirects = ps.posture_redirects;
            metrics.posture_violations = ps.posture_violations;
        }
        if let Some(net) = &state.net {
            metrics.suspicions = net.suspicions;
            metrics.suspicions_cleared = net.suspicions_cleared;
            metrics.false_suspicions = net.false_suspicions;
            metrics.lease_expiries = net.lease_expiries;
            metrics.net_lost = net.net_lost;
            metrics.net_timeouts = net.net_timeouts;
            metrics.net_nacks = net.net_nacks;
            metrics.stale_completions = net.stale_completions;
            metrics.double_completion_attempts = net.double_completion_attempts;
        }

        (
            ClusterReport {
                tier: self.config.tier,
                placement: self.config.placement,
                hosts: self.config.hosts,
                offered_rps: self.config.arrival.offered_rps(),
                metrics,
                attestation: state.plane.as_ref().map(|p| *p.metrics()),
                tenants: state.policy.as_ref().map(|ps| {
                    let pcfg = self.config.policy.as_ref().expect("state implies config");
                    pcfg.tenants
                        .iter()
                        .zip(&ps.tenants)
                        .map(|(t, m)| TenantRollup {
                            name: t.name,
                            metrics: m.clone(),
                        })
                        .collect()
                }),
                autoscale: state.scaler.as_ref().map(|sc| {
                    let counters = sc.auto.counters();
                    AutoscaleRollup {
                        policy: sc.auto.config().policy.name(),
                        ticks: counters.ticks,
                        scale_outs: counters.scale_outs,
                        scale_ins: counters.scale_ins,
                        prewarms: counters.prewarms,
                        min_live: sc.min_live,
                        max_live: sc.max_live,
                        events: sc.events.clone(),
                    }
                }),
                trace,
            },
            log,
        )
    }
}

impl<'a> State<'a> {
    /// Allocates a request id, sampling its tenant (policy runs only; from
    /// the dedicated tenant stream) and class (always exactly one draw from
    /// the main stream, so tagging never perturbs the shared streams).
    fn new_request(&mut self, arrival_hint: Nanos) -> usize {
        let request = self.req_class.len();
        let class = match self.policy.as_mut() {
            Some(ps) => {
                let pcfg = self.config.policy.as_ref().expect("state implies config");
                let tenant = pcfg.sample_tenant(&mut ps.tenant_rng);
                ps.req_tenant.push(tenant);
                ps.tenants[tenant].issued += 1;
                match &ps.mixes[tenant] {
                    Some(mix) => mix.sample(&mut self.rng),
                    None => self.mix.sample(&mut self.rng),
                }
            }
            None => self.mix.sample(&mut self.rng),
        };
        self.req_class.push(class);
        self.arrived.push(arrival_hint);
        self.attempts.push(0);
        self.done.push(false);
        self.epoch.push(0);
        self.issued += 1;
        request
    }

    /// Whether `request` has outlived its deadline at `now`.
    fn past_deadline(&self, request: usize, now: Nanos) -> bool {
        match self.config.recovery.deadline {
            Some(d) => now > self.arrived[request] + d,
            None => false,
        }
    }

    /// Whether `host` is holding PSP-needing dispatches across a firmware
    /// reset (resilient recovery quiesces; naive keeps dispatching).
    fn quiesce_hold(&self, host: usize, now: Nanos) -> bool {
        self.config.recovery.quiesce && self.hosts[host].in_psp_outage(now)
    }

    fn on_event(&mut self, outcome: &JobOutcome, inject: &mut Vec<Job>) {
        match self.meta[outcome.job] {
            JobKind::Arrival { request } => {
                self.arrived[request] = outcome.finish;
                if let Some(sc) = self.scaler.as_mut() {
                    sc.arrivals_since += 1;
                }
                if self.rec.on() {
                    let class = self.req_class[request];
                    self.rec
                        .arrival(request, &self.catalog.class(class).name, outcome.finish);
                }
                self.route(request, outcome.finish, inject);
            }
            JobKind::Launch {
                request,
                class,
                host,
                epoch,
                fate,
                fill,
                psp,
                psp_ns,
            } => self.on_launch_done(
                outcome, request, class, host, epoch, fate, fill, psp, psp_ns, inject,
            ),
            JobKind::Retry { request } => {
                self.route(request, outcome.finish, inject);
            }
            JobKind::Replenish {
                class,
                host,
                psp,
                psp_ns,
            } => {
                self.rec.background_end(outcome.job, outcome.finish);
                let poisoned_host = self.poisoned_host.remove(&outcome.job);
                let poisoned_reset = self.poisoned_reset.remove(&outcome.job);
                let poisoned_lease = self.poisoned_lease.remove(&outcome.job);
                let h = &mut self.hosts[host];
                if psp {
                    h.psp_inflight.remove(&outcome.job);
                }
                h.host_inflight.remove(&outcome.job);
                h.committed_psp = h.committed_psp.saturating_sub(psp_ns);
                if poisoned_host {
                    h.metrics.faults.record(FaultKind::HostOutage);
                    h.pool.refill_failed(class);
                    self.rec
                        .fault(FaultKind::HostOutage, None, Some(host), outcome.finish);
                } else if poisoned_reset {
                    h.metrics.faults.record(FaultKind::PspReset);
                    h.pool.refill_failed(class);
                    self.rec
                        .fault(FaultKind::PspReset, None, Some(host), outcome.finish);
                } else if poisoned_lease {
                    h.metrics.faults.record(FaultKind::NetPartition);
                    h.pool.refill_failed(class);
                    self.rec
                        .fault(FaultKind::NetPartition, None, Some(host), outcome.finish);
                } else {
                    h.pool.refill_done(class);
                }
                if self.warming[host] {
                    // Chain the next refill (kicks start one per class, so
                    // a warming spare converges one completion at a time;
                    // this also retries refills a fault poisoned), then
                    // promote once every class is at target.
                    self.start_refill(host, class, outcome.finish, inject);
                    self.maybe_promote(host, outcome.finish, inject);
                }
            }
            JobKind::PspResetStart { host } => {
                // The host's firmware reset: poison its in-flight PSP work
                // and kill its template cache (§6.2 under failure).
                self.rec
                    .marker(MarkerKind::OutageStart, None, Some(host), outcome.finish);
                let doomed: Vec<usize> = self.hosts[host].psp_inflight.iter().copied().collect();
                for job in doomed {
                    self.poisoned_reset.insert(job);
                }
                self.hosts[host].psp_inflight.clear();
                self.hosts[host].cache.invalidate_all();
            }
            JobKind::PspResetEnd { host } => {
                self.rec
                    .marker(MarkerKind::OutageEnd, None, Some(host), outcome.finish);
                self.drain_queue(host, outcome.finish, inject);
            }
            JobKind::WarmCrash { host, idx } => {
                let classes = self.catalog.len();
                let class =
                    ((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % classes;
                if self.hosts[host].pool.crash(class) {
                    self.hosts[host].metrics.faults.record(FaultKind::WarmCrash);
                    self.rec
                        .fault(FaultKind::WarmCrash, None, Some(host), outcome.finish);
                    self.start_refill(host, class, outcome.finish, inject);
                }
            }
            JobKind::HostDown { host, departure } => {
                self.on_host_down(host, departure, outcome.finish, inject);
            }
            JobKind::HostUp { host, departure } => {
                self.on_host_up(host, departure, outcome.finish, inject);
            }
            JobKind::TcbRollout { host } => {
                // New firmware: the host's TCB version bumps (every cached
                // cert/report under the old version stops matching) and its
                // templates re-measure on next use.
                self.rec
                    .marker(MarkerKind::TcbRollout, None, Some(host), outcome.finish);
                if let Some(plane) = self.plane.as_mut() {
                    plane.bump_tcb(host).expect("plane sized to cluster hosts");
                }
                self.hosts[host].cache.invalidate_all();
            }
            JobKind::Revoke { host } => {
                // Key compromise: distrust the chip at the root, then treat
                // the host like a permanent outage — its templates die with
                // the key (§6.2), its in-flight and queued work fails over,
                // and every re-launched guest re-attests on a survivor.
                self.rec
                    .marker(MarkerKind::Revocation, None, Some(host), outcome.finish);
                if let Some(plane) = self.plane.as_mut() {
                    plane
                        .revoke_host(host)
                        .expect("plane sized to cluster hosts");
                }
                self.on_host_down(host, false, outcome.finish, inject);
            }
            JobKind::NetDispatch {
                request,
                epoch,
                host,
            } => self.on_net_dispatch(request, epoch, host, outcome.finish, inject),
            JobKind::NetDispatchLost {
                request,
                epoch,
                host,
            } => self.on_net_dispatch_lost(request, epoch, host, outcome.finish, inject),
            JobKind::NetCompletion {
                request,
                epoch,
                host,
                ok,
            } => self.on_net_completion(request, epoch, host, ok, outcome.finish, inject),
            JobKind::NetNack {
                request,
                epoch,
                host,
            } => self.on_net_nack(request, epoch, host, outcome.finish, inject),
            JobKind::Heartbeat { host } => self.on_heartbeat(host, outcome.finish, inject),
            JobKind::SuspectCheck { host } => self.on_suspect_check(host, outcome.finish, inject),
            JobKind::LeaseRenew { host } => self.on_lease_renew(host, outcome.finish, inject),
            JobKind::LeaseGrant { host } => self.on_lease_grant(host, outcome.finish, inject),
            JobKind::LeaseExpire { host } => self.on_lease_expire(host, outcome.finish, inject),
            JobKind::FailoverSweep { host } => self.on_failover_sweep(host, outcome.finish, inject),
            JobKind::VerifierDown => {
                // Attestation blackout: the plane degrades by its
                // configured fail mode until the link heals.
                self.rec
                    .marker(MarkerKind::OutageStart, None, None, outcome.finish);
                if let Some(plane) = self.plane.as_mut() {
                    plane.set_reachable(false);
                }
            }
            JobKind::VerifierUp => {
                self.rec
                    .marker(MarkerKind::OutageEnd, None, None, outcome.finish);
                if let Some(plane) = self.plane.as_mut() {
                    plane.set_reachable(true);
                }
            }
            JobKind::AutoscaleTick => self.on_autoscale_tick(outcome.finish, inject),
        }
    }

    /// A launch finished: settle poisoning, then success or failure. With
    /// the network active, the host settles its local state here and the
    /// router-side settle (latency, terminal, recovery) waits for the
    /// outcome message to cross the host→router link.
    #[allow(clippy::too_many_arguments)]
    fn on_launch_done(
        &mut self,
        outcome: &JobOutcome,
        request: usize,
        class: usize,
        host: usize,
        epoch: u32,
        fate: LaunchFate,
        fill: Option<TemplateKey>,
        psp: bool,
        psp_ns: Nanos,
        inject: &mut Vec<Job>,
    ) {
        self.rec.attempt_end(outcome.job, outcome.finish);
        let poisoned_host = self.poisoned_host.remove(&outcome.job);
        let poisoned_reset = self.poisoned_reset.remove(&outcome.job);
        let poisoned_lease = self.poisoned_lease.remove(&outcome.job);
        {
            let h = &mut self.hosts[host];
            if psp {
                h.psp_inflight.remove(&outcome.job);
            }
            h.host_inflight.remove(&outcome.job);
            h.committed_psp = h.committed_psp.saturating_sub(psp_ns);
            h.inflight = h.inflight.saturating_sub(1);
        }
        let fate = if poisoned_host {
            // The host died under this launch; the request fails over to a
            // surviving host through the retry path.
            self.failovers += 1;
            self.rec.marker(
                MarkerKind::Failover,
                Some(request),
                Some(host),
                outcome.finish,
            );
            LaunchFate::Fault(FaultKind::HostOutage)
        } else if poisoned_reset {
            LaunchFate::Fault(FaultKind::PspReset)
        } else if poisoned_lease {
            LaunchFate::Fault(FaultKind::NetPartition)
        } else {
            fate
        };
        let net_active = self.net.is_some();
        match fate {
            LaunchFate::Ok => {
                if !net_active {
                    self.mark_done(request, ReqOutcome::Completed, outcome.finish);
                    self.hosts[host]
                        .metrics
                        .record_latency(outcome.finish - self.arrived[request]);
                    self.rec
                        .terminal(request, ReqOutcome::Completed, outcome.finish);
                    if let Some(breakers) = &mut self.hosts[host].breakers {
                        breakers[class].on_success(outcome.finish);
                    }
                    self.drain_queue(host, outcome.finish, inject);
                    self.issue_next_closed(outcome.finish, inject);
                } else {
                    if let Some(breakers) = &mut self.hosts[host].breakers {
                        breakers[class].on_success(outcome.finish);
                    }
                    self.drain_queue(host, outcome.finish, inject);
                    self.send_host_msg(
                        host,
                        outcome.finish,
                        JobKind::NetCompletion {
                            request,
                            epoch,
                            host,
                            ok: true,
                        },
                        inject,
                    );
                }
            }
            LaunchFate::Fault(kind) => {
                self.hosts[host].metrics.faults.record(kind);
                self.rec
                    .fault(kind, Some(request), Some(host), outcome.finish);
                if let Some(key) = fill {
                    // The fill died before finalizing its template.
                    self.hosts[host].cache.invalidate(&key);
                }
                if let Some(breakers) = &mut self.hosts[host].breakers {
                    if breakers[class].on_failure(outcome.finish) {
                        self.hosts[host].metrics.breaker_trips += 1;
                        self.rec.marker(
                            MarkerKind::BreakerTrip,
                            Some(request),
                            Some(host),
                            outcome.finish,
                        );
                    }
                }
                if !net_active || poisoned_host {
                    // The router already knows: the network is inert, or
                    // the host machine itself died (host_left is global).
                    self.handle_failure(request, outcome.finish, inject);
                    self.drain_queue(host, outcome.finish, inject);
                } else {
                    self.drain_queue(host, outcome.finish, inject);
                    // A lease-fenced settle is a refusal — the parked host
                    // may no longer complete this epoch's work — while an
                    // ordinary fault reports back as a failed completion.
                    let kind = if poisoned_lease {
                        JobKind::NetNack {
                            request,
                            epoch,
                            host,
                        }
                    } else {
                        JobKind::NetCompletion {
                            request,
                            epoch,
                            host,
                            ok: false,
                        }
                    };
                    self.send_host_msg(host, outcome.finish, kind, inject);
                }
            }
        }
    }

    /// A host drops out. An outage poisons its in-flight work and destroys
    /// its warm pool and template cache; a graceful departure lets in-flight
    /// work finish. Either way its queued requests fail over through the
    /// router, and the warm budget re-spreads over the survivors.
    /// One autoscaler control tick: build the Observation, run the pure
    /// decision engine, apply the result through the existing graceful
    /// membership paths. One obs marker per emitted decision — never per
    /// host — so marker counts equal the engine's counters exactly.
    fn on_autoscale_tick(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        let live: Vec<usize> = self
            .hosts
            .iter()
            .filter(|h| h.available())
            .map(|h| h.id)
            .collect();
        // Launch dispatches only: background warm-pool refills also sit in
        // host_inflight, and counting them would read a freshly re-warmed
        // cluster as overloaded.
        let backlog: usize = live.iter().map(|&h| self.hosts[h].inflight).sum();
        let queued: usize = live.iter().map(|&h| self.queue_len(h)).sum();
        let Some(sc) = self.scaler.as_mut() else {
            return;
        };
        // Provisioned = routable + warming: spares mid-warm-up are capacity
        // already paid for, so the scaler must not order them again.
        let warming_count = self.warming.iter().filter(|w| **w).count();
        let obs = Observation {
            now,
            live_hosts: live.len() + warming_count,
            arrivals: std::mem::take(&mut sc.arrivals_since),
            backlog,
            queued,
        };
        let decision = sc.auto.tick(&obs);
        let min_hosts = sc.auto.config().min_hosts;
        let warm_budget = sc.auto.config().warm_budget;

        // Pre-warm first: targets move before membership does, so a ramp's
        // refills are already in flight when the new hosts take traffic.
        if let Some(per_host) = decision.prewarm {
            self.rec.marker(MarkerKind::PreWarm, None, None, now);
            if self.config.tier == ServingTier::WarmPool {
                // Raise-only: a prescription sized for the post-change
                // fleet must not evict a serving host's slots while the
                // ramp is still on it — shrinking waits for the rebalance
                // that runs when membership actually changes.
                for &h in &live {
                    let target = self.hosts[h].pool.target_per_class().max(per_host);
                    self.hosts[h].pool.set_target(target);
                }
                for &h in &live {
                    self.kick_refills(h, now, inject);
                }
            }
            let event = ScaleEvent::PreWarm {
                at: now,
                per_host,
                budget: warm_budget,
                live: live.len(),
                warm_sum: self.warm_target_sum(),
            };
            self.scaler
                .as_mut()
                .expect("checked above")
                .events
                .push(event);
        }

        match decision.action {
            ScaleAction::ScaleOut { add } => {
                self.rec.marker(MarkerKind::ScaleOut, None, None, now);
                // Lowest-id cold spares join first: deterministic order,
                // and a spare felled by a scheduled outage stays out.
                let spares: Vec<usize> = self
                    .hosts
                    .iter()
                    .filter(|h| h.departed && !h.out)
                    .map(|h| h.id)
                    .filter(|&h| !self.warming[h])
                    .take(add)
                    .collect();
                // Warm-before-serve: on the warm-pool tier a spare bills
                // host-seconds and fills its pool first, joining the
                // routable set only once warm (promotion happens in the
                // Replenish handler). JSQ would otherwise dogpile its
                // empty PSP with cold SEV launches — the exact tail the
                // scale-out is trying to avoid. Other tiers have nothing
                // to pre-warm and join directly.
                let target = decision
                    .prewarm
                    .unwrap_or_else(|| warm_budget.div_ceil((live.len() + spares.len()).max(1)));
                for &h in &spares {
                    if self.config.tier == ServingTier::WarmPool {
                        self.begin_warming(h, target, now, inject);
                    } else {
                        self.on_host_up(h, true, now, inject);
                    }
                }
                let event = ScaleEvent::Out {
                    at: now,
                    added: spares.len(),
                    live: self.live_count(),
                    warm_sum: self.warm_target_sum(),
                };
                self.record_scale(event, now);
            }
            ScaleAction::ScaleIn { remove } => {
                self.rec.marker(MarkerKind::ScaleIn, None, None, now);
                // Highest-id idle victims drain first; a host with
                // in-flight launches or an undrained queue never drains
                // (the invariant battery replays this from the audit log).
                let allowed = (live.len() + warming_count).saturating_sub(min_hosts);
                // In-flight *launches* block a drain; background refills do
                // not (a graceful leave lets them finish harmlessly).
                let victims: Vec<usize> = self
                    .hosts
                    .iter()
                    .rev()
                    .filter(|h| h.available() && h.inflight == 0)
                    .map(|h| h.id)
                    .filter(|&h| self.queue_len(h) == 0)
                    .take(remove.min(allowed))
                    .collect();
                let victims_inflight: usize = victims.iter().map(|&h| self.hosts[h].inflight).sum();
                let victims_queued: usize = victims.iter().map(|&h| self.queue_len(h)).sum();
                for &h in &victims {
                    self.on_host_down(h, true, now, inject);
                }
                let event = ScaleEvent::In {
                    at: now,
                    removed: victims.len(),
                    live: self.live_count(),
                    victims_inflight,
                    victims_queued,
                    warm_sum: self.warm_target_sum(),
                };
                self.record_scale(event, now);
            }
            ScaleAction::Hold => {
                let live_now = self.live_count();
                let sc = self.scaler.as_mut().expect("checked above");
                sc.min_live = sc.min_live.min(live_now);
                sc.max_live = sc.max_live.max(live_now);
            }
        }
    }

    /// Appends an audit-log event and folds the post-change live count
    /// into the observed extrema.
    fn record_scale(&mut self, event: ScaleEvent, _now: Nanos) {
        let live_now = self.live_count();
        let sc = self.scaler.as_mut().expect("scale events imply a scaler");
        sc.events.push(event);
        sc.min_live = sc.min_live.min(live_now);
        sc.max_live = sc.max_live.max(live_now);
    }

    /// Provisioned hosts: routable plus warming spares. This is the count
    /// the autoscaler's bounds, audit events, and host-seconds bill all
    /// speak in — a warming spare is capacity being paid for.
    fn live_count(&self) -> usize {
        self.hosts.iter().filter(|h| h.available()).count()
            + self.warming.iter().filter(|w| **w).count()
    }

    /// Starts warming a cold spare the scaler ordered up: its host-seconds
    /// clock starts and its pool fills toward `target`, but it stays out of
    /// the routable set until [`State::maybe_promote`] sees it warm.
    fn begin_warming(&mut self, host: usize, target: usize, now: Nanos, inject: &mut Vec<Job>) {
        self.warming[host] = true;
        if self.live_since[host].is_none() {
            self.live_since[host] = Some(now);
        }
        self.hosts[host].pool.set_target(target);
        self.kick_refills(host, now, inject);
    }

    /// Promotes a warming spare into the routable set once every class has
    /// a couple of ready slots — enough to serve its first burst warm while
    /// the remaining refills converge in the background. Waiting for the
    /// full target would idle a nearly-warm host through the very ramp it
    /// was ordered up for.
    fn maybe_promote(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        let pool = &self.hosts[host].pool;
        let floor = pool.target_per_class().min(2);
        let warm = (0..self.catalog.len()).all(|c| pool.ready(c) >= floor);
        if !warm {
            return;
        }
        self.warming[host] = false;
        self.on_host_up(host, true, now, inject);
    }

    /// Requests waiting in `host`'s dispatch queue (whichever queue runs).
    fn queue_len(&self, host: usize) -> usize {
        match &self.hosts[host].wfq {
            Some(wfq) => wfq.len(),
            None => self.hosts[host].queue.len(),
        }
    }

    /// Sum of per-host warm targets across available hosts — the quantity
    /// the warm-budget conservation invariant bounds.
    fn warm_target_sum(&self) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.available() || self.warming[h.id])
            .map(|h| h.pool.target_per_class())
            .sum()
    }

    /// Settles availability accounting after `host`'s flags changed:
    /// opens or closes its host-seconds interval. Pure bookkeeping — no
    /// RNG, no metrics the serving path reads.
    fn note_liveness(&mut self, host: usize, was_available: bool, now: Nanos) {
        let is = self.hosts[host].available();
        if was_available == is {
            return;
        }
        if is {
            // A warming spare already opened its interval (it bills from
            // warm-up start, not from promotion) — keep the earlier start.
            if self.live_since[host].is_none() {
                self.live_since[host] = Some(now);
            }
        } else if let Some(since) = self.live_since[host].take() {
            self.host_secs[host] += now.saturating_sub(since).as_secs_f64();
        }
    }

    fn on_host_down(&mut self, host: usize, departure: bool, now: Nanos, inject: &mut Vec<Job>) {
        let was_available = self.hosts[host].available();
        if departure {
            self.hosts[host].departed = true;
        } else {
            self.hosts[host].out = true;
            self.rec
                .marker(MarkerKind::OutageStart, None, Some(host), now);
        }
        self.note_liveness(host, was_available, now);
        self.router.host_left(host);
        if !departure {
            let doomed: Vec<usize> = self.hosts[host].host_inflight.iter().copied().collect();
            for job in doomed {
                self.poisoned_host.insert(job);
            }
            self.hosts[host].host_inflight.clear();
            self.hosts[host].psp_inflight.clear();
            for class in 0..self.catalog.len() {
                while self.hosts[host].pool.crash(class) {}
            }
            self.hosts[host].cache.invalidate_all();
        }
        // Fail over the queue: every waiter re-enters the router and lands
        // on a surviving host (or sheds there).
        for next in self.purge_backlog(host) {
            self.hosts[host].committed_psp = self.hosts[host]
                .committed_psp
                .saturating_sub(next.expected_psp);
            self.failovers += 1;
            self.rec
                .marker(MarkerKind::Failover, Some(next.request), Some(host), now);
            self.route(next.request, now, inject);
        }
        if self.config.rebalance {
            self.rebalance_pools(true, now, inject);
        }
    }

    /// A host comes back (outage over) or rejoins (after a departure). An
    /// outage survivor returns with a cold cache and an empty pool — its
    /// classes re-measure on next use.
    fn on_host_up(&mut self, host: usize, departure: bool, now: Nanos, inject: &mut Vec<Job>) {
        let was_available = self.hosts[host].available();
        if departure {
            self.hosts[host].departed = false;
        } else {
            self.hosts[host].out = false;
            self.rec
                .marker(MarkerKind::OutageEnd, None, Some(host), now);
        }
        self.note_liveness(host, was_available, now);
        if !self.hosts[host].available() {
            // A warming spare recovering from an outage resumes its
            // refills; it still only joins through promotion.
            if self.warming[host] {
                self.kick_refills(host, now, inject);
            }
            return;
        }
        self.router.host_joined(host);
        if self.config.rebalance {
            self.rebalance_pools(false, now, inject);
        } else {
            self.kick_refills(host, now, inject);
        }
        self.drain_queue(host, now, inject);
    }

    /// Re-spreads the cluster-wide warm budget (`warm_target * hosts` per
    /// class) over the live hosts. SEV guests cannot migrate off their PSP,
    /// so shrunk targets evict and grown targets re-provision via template
    /// launches on the new owners.
    ///
    /// Under an autoscaler a join-triggered re-spread (`shrink == false`)
    /// is raise-only: evicting a serving host's deep pool the moment a
    /// spare promotes would throw away exactly the warm capacity the ramp
    /// is about to need. The transient overshoot (bounded by one extra
    /// budget) is recovered at the next shrinking change — scale-in, leave,
    /// or failure — which re-spreads exactly.
    fn rebalance_pools(&mut self, shrink: bool, now: Nanos, inject: &mut Vec<Job>) {
        if self.config.tier != ServingTier::WarmPool {
            return;
        }
        // With an autoscaler the budget is its own knob (the fleet can
        // grow past `hosts`, so `warm_target * hosts` no longer covers it).
        let budget = match &self.scaler {
            Some(sc) => sc.auto.config().warm_budget,
            None => self.config.warm_target * self.config.hosts,
        };
        // Warming spares hold a budget slice too — zeroing their targets
        // mid-warm-up would strand them un-promotable.
        let keeps = |s: &Self, host: usize| s.hosts[host].available() || s.warming[host];
        let live = (0..self.hosts.len()).filter(|&h| keeps(self, h)).count();
        let per_host = if live == 0 { 0 } else { budget.div_ceil(live) };
        let raise_only = !shrink && self.scaler.is_some();
        for host in 0..self.hosts.len() {
            let target = if !keeps(self, host) {
                0
            } else if raise_only {
                self.hosts[host].pool.target_per_class().max(per_host)
            } else {
                per_host
            };
            self.hosts[host].pool.set_target(target);
        }
        self.rebalances += 1;
        self.rec.marker(MarkerKind::Rebalance, None, None, now);
        for host in 0..self.hosts.len() {
            if keeps(self, host) {
                self.kick_refills(host, now, inject);
            }
        }
        // A shrunk target can leave a warming spare already at target with
        // no refill left to complete — promote it here, not never.
        for host in 0..self.hosts.len() {
            if self.warming[host] {
                self.maybe_promote(host, now, inject);
            }
        }
    }

    /// Starts refills for every class below target on `host`.
    fn kick_refills(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        for class in 0..self.catalog.len() {
            self.start_refill(host, class, now, inject);
        }
    }

    /// Routes a request (fresh arrival, retry, or failover): deadline
    /// first, then placement over the live hosts, then the host's ladder,
    /// warm pool, and admission control.
    fn route(&mut self, request: usize, now: Nanos, inject: &mut Vec<Job>) {
        let class = self.req_class[request];
        if self.past_deadline(request, now) {
            self.mark_done(request, ReqOutcome::Timeout, now);
            self.timeouts += 1;
            self.rec.terminal(request, ReqOutcome::Timeout, now);
            self.issue_next_closed(now, inject);
            return;
        }
        // The policy choke point: every routed dispatch (arrival, retry,
        // failover) is one admission decision. Rejects never reach a host.
        if let Some(PolicyDecision::Reject { .. }) = self.policy_evaluate(request, now) {
            self.mark_done(request, ReqOutcome::Rejected, now);
            self.rejected += 1;
            self.rec.terminal(request, ReqOutcome::Rejected, now);
            self.issue_next_closed(now, inject);
            return;
        }
        let suspected = self.net.as_ref().map(|n| n.suspected.as_slice());
        let live: Vec<usize> = self
            .hosts
            .iter()
            .filter(|h| h.available())
            .map(|h| h.id)
            .filter(|&h| suspected.is_none_or(|s| !s[h]))
            .collect();
        // Posture filter: shrink the candidate set to hosts the tenant's
        // min-TCB / revocation requirements accept, *before* the router
        // runs. An empty result with live hosts present is a policy
        // reject, not an unroutable shed.
        let had_live = !live.is_empty();
        let live: Vec<usize> = live
            .into_iter()
            .filter(|&h| self.posture_ok(request, h))
            .collect();
        if live.is_empty() && had_live && self.posture_enforced() {
            self.rec
                .marker(MarkerKind::PolicyReject, Some(request), None, now);
            self.mark_done(request, ReqOutcome::Rejected, now);
            self.rejected += 1;
            self.rec.terminal(request, ReqOutcome::Rejected, now);
            self.issue_next_closed(now, inject);
            return;
        }
        let key = self.catalog.class(class).key;
        let hosts = &self.hosts;
        let placed = self.router.place(
            &key,
            &live,
            |h| hosts[h].committed_psp,
            |h| hosts[h].pool.ready(class) > 0,
        );
        let Some(host) = placed else {
            // Nowhere to run: shed fast (clients of a fully-dark cluster
            // get an immediate error, not an unbounded queue).
            self.mark_done(request, ReqOutcome::Shed, now);
            self.unroutable += 1;
            self.rec.terminal(request, ReqOutcome::Shed, now);
            self.issue_next_closed(now, inject);
            return;
        };
        self.rec.marker(
            MarkerKind::Placement { host },
            Some(request),
            Some(host),
            now,
        );
        if self.net.is_some() {
            self.send_dispatch(request, host, now, inject);
            return;
        }
        self.assign(request, class, host, now, inject);
    }

    /// Net mode: a routed request leaves the router as a message. Any
    /// earlier attempt's outstanding entry is cleared (queue failovers
    /// re-route without an outcome message), the request's epoch is
    /// bumped so stale messages fence, and the link draws decide whether
    /// and when the dispatch lands.
    fn send_dispatch(&mut self, request: usize, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        self.epoch[request] += 1;
        let epoch = self.epoch[request];
        let net = self.net.as_mut().expect("net mode");
        for set in &mut net.outstanding {
            set.remove(&request);
        }
        net.outstanding[host].insert(request);
        let token = net.seq;
        net.seq += 1;
        let link = LinkId::RouterToHost(host);
        let lost = net.plan.host_cut(host, now).is_some() || net.plan.lost(link, token);
        let kind;
        let at;
        if lost {
            net.net_lost += 1;
            at = now + net.plan.config().dispatch_timeout;
            kind = JobKind::NetDispatchLost {
                request,
                epoch,
                host,
            };
        } else {
            at = now + net.plan.delay(link, token);
            kind = JobKind::NetDispatch {
                request,
                epoch,
                host,
            };
        }
        inject.push(Job::released_at(at, vec![]));
        self.meta.push(kind);
    }

    /// Host→router messages (outcomes, refusals) ride a reliable
    /// transport: a partition buffers them until the heal instead of
    /// dropping them.
    fn send_host_msg(&mut self, host: usize, now: Nanos, kind: JobKind, inject: &mut Vec<Job>) {
        let net = self.net.as_mut().expect("net mode");
        let token = net.seq;
        net.seq += 1;
        let depart = net.plan.host_cut(host, now).unwrap_or(now);
        let at = depart + net.plan.delay(LinkId::HostToRouter(host), token);
        inject.push(Job::released_at(at, vec![]));
        self.meta.push(kind);
    }

    /// Empties `host`'s backlog (WFQ lanes in pop order, or the FIFO
    /// queue) for failover or lease purge.
    fn purge_backlog(&mut self, host: usize) -> Vec<Pending> {
        match &mut self.hosts[host].wfq {
            Some(wfq) => wfq.drain().into_iter().map(|(_, p)| p).collect(),
            None => {
                let mut out = Vec::new();
                while let Some(next) = self.hosts[host].queue.pick(SchedPolicy::Fifo, |_| false) {
                    out.push(next);
                }
                out
            }
        }
    }

    /// Whether `host` is lease-fenced at `now`: leases are on and the
    /// host is parked or past its expiry.
    fn lease_blocked(&self, host: usize, now: Nanos) -> bool {
        self.net.as_ref().is_some_and(|n| n.ledger.is_some())
            && (self.hosts[host].parked || now >= self.hosts[host].lease_until)
    }

    /// Marks `request` terminal with its outcome. Every terminal site calls
    /// this exactly once — the conservation invariant in executable form —
    /// and the outcome is attributed to the request's tenant when a policy
    /// is active, so conservation also holds per tenant.
    fn mark_done(&mut self, request: usize, outcome: ReqOutcome, now: Nanos) {
        debug_assert!(
            !self.done[request],
            "request {request} reached two terminal states"
        );
        self.done[request] = true;
        let latency = now - self.arrived[request];
        let Some(ps) = self.policy.as_mut() else {
            return;
        };
        let m = &mut ps.tenants[ps.req_tenant[request]];
        match outcome {
            ReqOutcome::Completed => m.complete(latency),
            ReqOutcome::Shed => m.shed += 1,
            ReqOutcome::BreakerShed => m.breaker_sheds += 1,
            ReqOutcome::Timeout => m.timeouts += 1,
            ReqOutcome::Failed => m.failed += 1,
            ReqOutcome::Rejected => m.rejected += 1,
        }
    }

    /// Evaluates the policy engine for `request` at the router — the
    /// single choke point — recording the decision as a trace marker.
    /// `None` when no policy is configured.
    fn policy_evaluate(&mut self, request: usize, now: Nanos) -> Option<PolicyDecision> {
        let ps = self.policy.as_mut()?;
        let tenant = ps.req_tenant[request];
        let decision = ps.engine.evaluate(tenant, now);
        let kind = match decision {
            PolicyDecision::Admit { .. } => MarkerKind::PolicyAdmit,
            PolicyDecision::Degrade { .. } => {
                ps.tenants[tenant].degraded += 1;
                MarkerKind::PolicyDegrade
            }
            PolicyDecision::Reject { .. } => MarkerKind::PolicyReject,
        };
        self.rec.marker(kind, Some(request), None, now);
        Some(decision)
    }

    /// Whether posture placement filtering is on (policy with `posture`
    /// enforcement; validation guarantees an attestation plane exists).
    fn posture_enforced(&self) -> bool {
        self.config.policy.as_ref().is_some_and(|p| p.posture)
    }

    /// What the attestation plane currently knows about `host`.
    fn host_posture(&self, host: usize) -> HostPosture {
        match self.plane.as_ref() {
            Some(plane) => HostPosture {
                tcb_version: plane
                    .tcb_version(host)
                    .expect("plane sized to cluster hosts"),
                revoked: plane
                    .is_revoked(host)
                    .expect("plane sized to cluster hosts"),
            },
            None => HostPosture {
                tcb_version: u32::MAX,
                revoked: false,
            },
        }
    }

    /// Posture check for one (request, host) pair: placement filter and
    /// dispatch-time re-check both land here.
    fn posture_ok(&mut self, request: usize, host: usize) -> bool {
        if !self.posture_enforced() {
            return true;
        }
        let posture = self.host_posture(host);
        let Some(ps) = self.policy.as_mut() else {
            return true;
        };
        ps.posture_checks += 1;
        ps.engine.host_eligible(ps.req_tenant[request], posture)
    }

    /// A dispatch message lands on `host`.
    fn on_net_dispatch(
        &mut self,
        request: usize,
        epoch: u32,
        host: usize,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if self.done[request] || self.epoch[request] != epoch {
            return;
        }
        if !self.hosts[host].available() || self.lease_blocked(host, now) {
            let kind = JobKind::NetNack {
                request,
                epoch,
                host,
            };
            self.send_host_msg(host, now, kind, inject);
            return;
        }
        let class = self.req_class[request];
        self.assign(request, class, host, now, inject);
    }

    /// The router's dispatch timeout fires for a lost message.
    fn on_net_dispatch_lost(
        &mut self,
        request: usize,
        epoch: u32,
        host: usize,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if self.done[request] || self.epoch[request] != epoch {
            return;
        }
        if let Some(net) = self.net.as_mut() {
            net.outstanding[host].remove(&request);
            net.net_timeouts += 1;
        }
        self.handle_failure(request, now, inject);
    }

    /// A refusal arrives back at the router.
    fn on_net_nack(
        &mut self,
        request: usize,
        epoch: u32,
        host: usize,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if self.done[request] || self.epoch[request] != epoch {
            return;
        }
        let removed = self
            .net
            .as_mut()
            .is_some_and(|n| n.outstanding[host].remove(&request));
        if removed {
            if let Some(net) = self.net.as_mut() {
                net.net_nacks += 1;
            }
            self.handle_failure(request, now, inject);
        }
    }

    /// An attempt outcome arrives back at the router. Epoch fencing is
    /// what keeps conservation exact through split-brain: an outcome for
    /// a request the router already failed over (or finished) is counted
    /// as a suppressed duplicate, never as a second terminal state.
    fn on_net_completion(
        &mut self,
        request: usize,
        epoch: u32,
        host: usize,
        ok: bool,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if let Some(net) = self.net.as_mut() {
            net.outstanding[host].remove(&request);
        }
        if self.epoch[request] != epoch {
            if let Some(net) = self.net.as_mut() {
                net.stale_completions += 1;
            }
            return;
        }
        if self.done[request] {
            if ok {
                if let Some(net) = self.net.as_mut() {
                    net.double_completion_attempts += 1;
                }
            }
            return;
        }
        if ok {
            self.mark_done(request, ReqOutcome::Completed, now);
            self.hosts[host]
                .metrics
                .record_latency(now - self.arrived[request]);
            self.rec.terminal(request, ReqOutcome::Completed, now);
            self.issue_next_closed(now, inject);
        } else {
            self.handle_failure(request, now, inject);
        }
    }

    /// A heartbeat survived the links: feed the detector, clear any
    /// suspicion, and probe again at the new silence deadline.
    fn on_heartbeat(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        if !self.hosts[host].available() {
            return;
        }
        let (deadline, cleared) = {
            let Some(net) = self.net.as_mut() else {
                return;
            };
            let Some(det) = net.detector.as_mut() else {
                return;
            };
            det.heartbeat(host, now);
            let deadline = det.deadline(host);
            let cleared = net.suspected[host];
            if cleared {
                net.suspected[host] = false;
                net.suspicions_cleared += 1;
            }
            (deadline, cleared)
        };
        if cleared {
            self.rec
                .marker(MarkerKind::SuspicionCleared, None, Some(host), now);
        }
        inject.push(Job::released_at(deadline, vec![]));
        self.meta.push(JobKind::SuspectCheck { host });
    }

    /// The silence deadline passed without a fresh heartbeat: suspect the
    /// host and schedule the failover sweep for the instant every lease it
    /// could hold has provably lapsed.
    fn on_suspect_check(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        if !self.hosts[host].available() {
            return;
        }
        let sweep_at = {
            let Some(net) = self.net.as_mut() else {
                return;
            };
            if now >= net.plan.config().horizon {
                // The heartbeat schedule ends at the horizon; silence past
                // it is the schedule running out, not a failure.
                return;
            }
            if net.suspected[host] {
                return;
            }
            let Some(det) = net.detector.as_ref() else {
                return;
            };
            if !det.suspected(host, now) {
                return;
            }
            net.suspected[host] = true;
            net.suspicions += 1;
            let safe = net.ledger.as_ref().map_or(now, |l| l.safe_at(host));
            safe.max(now) + Nanos::from_nanos(1)
        };
        self.rec
            .marker(MarkerKind::Suspected, None, Some(host), now);
        inject.push(Job::released_at(sweep_at, vec![]));
        self.meta.push(JobKind::FailoverSweep { host });
    }

    /// The sweep fires: if the suspicion still stands (and the lease
    /// bound has truly passed), every outstanding request on the host
    /// fails over through fresh placement.
    fn on_failover_sweep(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        let doomed: Vec<usize> = {
            let Some(net) = self.net.as_mut() else {
                return;
            };
            if !net.suspected[host] {
                // The host heartbeated before the sweep: a false
                // suspicion that moved no work.
                net.false_suspicions += 1;
                return;
            }
            if net.ledger.as_ref().is_some_and(|l| l.safe_at(host) >= now) {
                // A renewal between suspicion episodes pushed the lease
                // bound past this sweep; the re-suspicion scheduled its
                // own sweep at the new bound.
                return;
            }
            std::mem::take(&mut net.outstanding[host])
                .into_iter()
                .collect()
        };
        for request in doomed {
            if self.done[request] {
                continue;
            }
            self.failovers += 1;
            self.rec
                .marker(MarkerKind::Failover, Some(request), Some(host), now);
            self.route(request, now, inject);
        }
    }

    /// The router's renewal tick: ledger the grant (safety bounds cover
    /// delivery), then race it across the link.
    fn on_lease_renew(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        if !self.hosts[host].available() {
            return;
        }
        let delivery = {
            let Some(net) = self.net.as_mut() else {
                return;
            };
            if net.suspected[host] {
                return;
            }
            let Some(ledger) = net.ledger.as_mut() else {
                return;
            };
            ledger.on_grant(host, now);
            let token = net.seq;
            net.seq += 1;
            let link = LinkId::RouterToHost(host);
            if net.plan.host_cut(host, now).is_some() || net.plan.lost(link, token) {
                None
            } else {
                Some(now + net.plan.delay(link, token))
            }
        };
        if let Some(at) = delivery {
            inject.push(Job::released_at(at, vec![]));
            self.meta.push(JobKind::LeaseGrant { host });
        }
    }

    /// A grant lands on the host: the lease is monotone under reordered
    /// grants, and a parked host resumes serving.
    fn on_lease_grant(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        let Some(duration) = self
            .net
            .as_ref()
            .and_then(|n| n.plan.config().lease)
            .map(|l| l.duration)
        else {
            return;
        };
        let until = now + duration;
        if until > self.hosts[host].lease_until {
            self.hosts[host].lease_until = until;
            inject.push(Job::released_at(until, vec![]));
            self.meta.push(JobKind::LeaseExpire { host });
        }
        if self.hosts[host].parked {
            self.hosts[host].parked = false;
            self.drain_queue(host, now, inject);
        }
    }

    /// The lease lapses with no grant extending it: the host parks. It
    /// purges its queue back to the router as refusals (buffered through
    /// any partition — a fenced host may refuse, never complete) and
    /// poisons its in-flight work the same way.
    fn on_lease_expire(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        if self.net.as_ref().is_none_or(|n| n.ledger.is_none()) {
            return;
        }
        // Renewal ticks end at the horizon; a lapse past it is the
        // schedule running out, not a lost grant.
        if self
            .net
            .as_ref()
            .is_some_and(|n| now >= n.plan.config().horizon)
        {
            return;
        }
        {
            let h = &self.hosts[host];
            if h.parked || now < h.lease_until || !h.available() {
                return;
            }
        }
        self.hosts[host].parked = true;
        if let Some(net) = self.net.as_mut() {
            net.lease_expiries += 1;
        }
        self.rec
            .marker(MarkerKind::LeaseExpired, None, Some(host), now);
        for next in self.purge_backlog(host) {
            self.hosts[host].committed_psp = self.hosts[host]
                .committed_psp
                .saturating_sub(next.expected_psp);
            let kind = JobKind::NetNack {
                request: next.request,
                epoch: self.epoch[next.request],
                host,
            };
            self.send_host_msg(host, now, kind, inject);
        }
        let doomed: Vec<usize> = self.hosts[host].host_inflight.iter().copied().collect();
        for job in doomed {
            self.poisoned_lease.insert(job);
        }
    }

    /// Serves `request` on `host`: degradation ladder, warm pool, admission.
    fn assign(
        &mut self,
        request: usize,
        class: usize,
        host: usize,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        let level = self.hosts[host].degrade_level(class, now);
        let Some(tier) = self.config.tier.degraded(level) else {
            self.mark_done(request, ReqOutcome::BreakerShed, now);
            self.breaker_sheds += 1;
            self.rec.terminal(request, ReqOutcome::BreakerShed, now);
            self.issue_next_closed(now, inject);
            return;
        };
        if tier == ServingTier::WarmPool && self.hosts[host].pool.try_take(class) {
            let blueprint = self.catalog.class(class).warm_invoke.clone();
            self.inject_launch(request, class, host, blueprint, None, now, inject);
            self.start_refill(host, class, now, inject);
            return;
        }
        self.admit(request, class, host, now, inject);
    }

    /// Expected serialized PSP work of `class` on `host` at `tier` (peeks
    /// at the host's cache without counting).
    fn expected_psp(&self, host: usize, class: usize, tier: ServingTier) -> Nanos {
        let cb = self.catalog.class(class);
        match tier {
            ServingTier::Cold => cb.cold.psp_work(),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.hosts[host].cache.contains(&cb.key) {
                    cb.template_hit.psp_work()
                } else {
                    cb.template_fill.psp_work()
                }
            }
        }
    }

    /// Per-host admission control: dispatch if a slot is free (and the
    /// host's PSP is not quiesced), queue if there is room, shed otherwise.
    fn admit(
        &mut self,
        request: usize,
        class: usize,
        host: usize,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        let level = self.hosts[host].degrade_level(class, now);
        let tier = self.config.tier.degraded(level).unwrap_or(self.config.tier);
        let expected_psp = self.expected_psp(host, class, tier);
        let quiesced = expected_psp > Nanos::ZERO && self.quiesce_hold(host, now);
        if !quiesced && self.hosts[host].inflight < self.config.admission.max_inflight {
            self.dispatch(request, class, host, tier, now, inject);
            return;
        }
        let key = self.catalog.class(class).key;
        let pending = Pending {
            request,
            class,
            expected_psp,
            key,
        };
        if self.hosts[host].wfq.is_some() {
            // WFQ admission: enqueue on the tenant's lane; overflow runs
            // policy-aware shed (batch before latency-sensitive,
            // quota-violators first) instead of refusing the newcomer.
            let (tenant, over) = match self.policy.as_ref() {
                Some(ps) => {
                    let t = ps.req_tenant[request];
                    (t, ps.engine.over_quota(t, now))
                }
                None => (0, false),
            };
            let offer = {
                let wfq = self.hosts[host].wfq.as_mut().expect("checked above");
                wfq.set_over_quota(tenant, over);
                wfq.offer(tenant, pending, expected_psp)
            };
            let depth = self.hosts[host].wfq.as_ref().expect("checked above").len();
            self.hosts[host].metrics.sample_queue_depth(now, depth);
            match offer {
                Offer::Queued => {
                    self.hosts[host].committed_psp += expected_psp;
                    self.rec.queued(request);
                }
                Offer::Displaced { item, .. } => {
                    self.hosts[host].committed_psp += expected_psp;
                    self.hosts[host].committed_psp = self.hosts[host]
                        .committed_psp
                        .saturating_sub(item.expected_psp);
                    self.rec.queued(request);
                    self.mark_done(item.request, ReqOutcome::Shed, now);
                    self.rec.terminal(item.request, ReqOutcome::Shed, now);
                    self.issue_next_closed(now, inject);
                }
                Offer::Refused(item) => {
                    self.mark_done(item.request, ReqOutcome::Shed, now);
                    self.rec.terminal(item.request, ReqOutcome::Shed, now);
                    self.issue_next_closed(now, inject);
                }
            }
            return;
        }
        let admitted = self.hosts[host].queue.offer(pending);
        let depth = self.hosts[host].queue.len();
        self.hosts[host].metrics.sample_queue_depth(now, depth);
        if admitted {
            self.hosts[host].committed_psp += expected_psp;
            self.rec.queued(request);
        } else {
            self.mark_done(request, ReqOutcome::Shed, now);
            self.rec.terminal(request, ReqOutcome::Shed, now);
            self.issue_next_closed(now, inject);
        }
    }

    /// Picks the launch blueprint for a dispatch at `tier` on `host`.
    fn dispatch(
        &mut self,
        request: usize,
        class: usize,
        host: usize,
        tier: ServingTier,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        if tier != self.config.tier {
            self.hosts[host].metrics.degraded_dispatches += 1;
        }
        let cb = self.catalog.class(class);
        let (blueprint, fill) = match tier {
            ServingTier::Cold => (cb.cold.clone(), None),
            ServingTier::Template | ServingTier::WarmPool => {
                if self.hosts[host].cache.lookup_or_fill(cb.key, class) {
                    (cb.template_hit.clone(), None)
                } else {
                    (cb.template_fill.clone(), Some(cb.key))
                }
            }
        };
        self.inject_launch(request, class, host, blueprint, fill, now, inject);
    }

    /// Applies the host's fault domain to the launch (via the shared
    /// [`apply_launch_faults`] hook) and injects it on the host's resources.
    #[allow(clippy::too_many_arguments)]
    fn inject_launch(
        &mut self,
        request: usize,
        class: usize,
        host: usize,
        blueprint: Blueprint,
        fill: Option<TemplateKey>,
        now: Nanos,
        inject: &mut Vec<Job>,
    ) {
        // The acceptance invariant in executable form: a posture-strict
        // tenant's launch must never reach an ineligible host. The
        // placement filter and the dispatch-time re-check keep this zero.
        if !self.posture_ok(request, host) {
            if let Some(ps) = self.policy.as_mut() {
                ps.posture_violations += 1;
            }
        }
        let mut fate = LaunchFate::Ok;
        let mut blueprint = blueprint;
        if let Some(plan) = &self.hosts[host].plan {
            let token = self.hosts[host].launch_seq;
            let (faulted, kind) = apply_launch_faults(blueprint, plan, token, now);
            blueprint = faulted;
            if let Some(kind) = kind {
                fate = LaunchFate::Fault(kind);
            }
            self.hosts[host].launch_seq += 1;
        }
        // Every fault-free dispatch carries an attestation verdict: the
        // verifier's steps ride the launch as network delay (they never
        // touch the host's PSP backlog), and a revoked chip turns the
        // dispatch into an attestation failure that retries elsewhere.
        if matches!(fate, LaunchFate::Ok) {
            if let Some(plane) = self.plane.as_mut() {
                let v = plane
                    .verify_launch(host, now)
                    .expect("plane sized to cluster hosts");
                blueprint.steps.extend(v.steps);
                match v.verdict {
                    Verdict::Ok => {}
                    Verdict::Revoked => fate = LaunchFate::Fault(FaultKind::AttestError),
                    // The verifier was unreachable and the plane ran
                    // fail-closed: the launch is refused and retries.
                    Verdict::Unavailable => fate = LaunchFate::Fault(FaultKind::AttestTimeout),
                }
            }
        }
        let psp_ns = blueprint.psp_work();
        let psp = psp_ns > Nanos::ZERO;
        let h = &mut self.hosts[host];
        h.inflight += 1;
        h.committed_psp += psp_ns;
        inject.push(blueprint.to_job(now, h.cpu, h.psp));
        let job = self.meta.len();
        if self.rec.on() {
            self.rec.attempt_start(
                request,
                job,
                &blueprint.label,
                Some(host),
                blueprint.steps.clone(),
                now,
            );
        }
        self.meta.push(JobKind::Launch {
            request,
            class,
            host,
            epoch: self.epoch[request],
            fate,
            fill,
            psp,
            psp_ns,
        });
        if psp {
            self.hosts[host].psp_inflight.insert(job);
        }
        self.hosts[host].host_inflight.insert(job);
    }

    /// A launch failed: retry with backoff (fresh placement on completion)
    /// if the budget and deadline allow, else count the request failed.
    fn handle_failure(&mut self, request: usize, now: Nanos, inject: &mut Vec<Job>) {
        self.attempts[request] += 1;
        let failures = self.attempts[request];
        match self.config.recovery.retry.backoff(failures, request as u64) {
            None => {
                self.mark_done(request, ReqOutcome::Failed, now);
                self.failed += 1;
                self.rec.terminal(request, ReqOutcome::Failed, now);
                self.issue_next_closed(now, inject);
            }
            Some(delay) => {
                let at = now + delay;
                if self.past_deadline(request, at) {
                    self.mark_done(request, ReqOutcome::Timeout, now);
                    self.timeouts += 1;
                    self.rec.terminal(request, ReqOutcome::Timeout, now);
                    self.issue_next_closed(now, inject);
                    return;
                }
                self.retries += 1;
                self.rec.retry_wait(request, failures, now, at);
                inject.push(Job::released_at(at, vec![]));
                self.meta.push(JobKind::Retry { request });
            }
        }
    }

    /// Fills freed dispatch slots on `host` from its queue.
    fn drain_queue(&mut self, host: usize, now: Nanos, inject: &mut Vec<Job>) {
        if !self.hosts[host].available()
            || self.quiesce_hold(host, now)
            || self.lease_blocked(host, now)
        {
            return;
        }
        while self.hosts[host].inflight < self.config.admission.max_inflight {
            let policy = self.config.admission.policy;
            let h = &mut self.hosts[host];
            let (next, depth) = match &mut h.wfq {
                Some(wfq) => (wfq.pop().map(|(_, p)| p), wfq.len()),
                None => {
                    let Host { queue, cache, .. } = &mut *h;
                    let next = queue.pick(policy, |key| cache.contains(key));
                    (next, queue.len())
                }
            };
            let Some(next) = next else {
                break;
            };
            h.committed_psp = h.committed_psp.saturating_sub(next.expected_psp);
            h.metrics.sample_queue_depth(now, depth);
            if self.past_deadline(next.request, now) {
                self.mark_done(next.request, ReqOutcome::Timeout, now);
                self.timeouts += 1;
                self.rec.terminal(next.request, ReqOutcome::Timeout, now);
                self.issue_next_closed(now, inject);
                continue;
            }
            // Posture re-check at dispatch: a TCB rollout or revocation can
            // change the host between enqueue and pop, so a queued request
            // whose host fell below its floor re-routes through the filter
            // instead of launching here.
            if !self.posture_ok(next.request, host) {
                if let Some(ps) = self.policy.as_mut() {
                    ps.posture_redirects += 1;
                }
                self.route(next.request, now, inject);
                continue;
            }
            let level = self.hosts[host].degrade_level(next.class, now);
            let Some(tier) = self.config.tier.degraded(level) else {
                self.mark_done(next.request, ReqOutcome::BreakerShed, now);
                self.breaker_sheds += 1;
                self.rec
                    .terminal(next.request, ReqOutcome::BreakerShed, now);
                self.issue_next_closed(now, inject);
                continue;
            };
            self.dispatch(next.request, next.class, host, tier, now, inject);
        }
    }

    /// Starts a background refill for `class` on `host` if it is below
    /// target and the host can currently launch (live, PSP accepting).
    fn start_refill(&mut self, host: usize, class: usize, now: Nanos, inject: &mut Vec<Job>) {
        if self.config.tier != ServingTier::WarmPool
            || !(self.hosts[host].available() || self.warming[host])
            || self.lease_blocked(host, now)
            || !self.hosts[host].pool.wants_refill(class)
        {
            return;
        }
        let refill = self.catalog.class(class).template_hit.clone();
        let psp_ns = refill.psp_work();
        let psp = psp_ns > Nanos::ZERO;
        if psp && self.hosts[host].in_psp_outage(now) {
            return;
        }
        let h = &mut self.hosts[host];
        h.pool.refill_started(class);
        h.committed_psp += psp_ns;
        inject.push(refill.to_job(now, h.cpu, h.psp));
        let job = self.meta.len();
        if self.rec.on() {
            self.rec
                .background(job, &refill.label, Some(host), refill.steps.clone(), now);
        }
        self.meta.push(JobKind::Replenish {
            class,
            host,
            psp,
            psp_ns,
        });
        if psp {
            self.hosts[host].psp_inflight.insert(job);
        }
        self.hosts[host].host_inflight.insert(job);
    }

    /// Closed loops: a completion (or shed) sends the client into think
    /// time, after which it issues the next request.
    fn issue_next_closed(&mut self, now: Nanos, inject: &mut Vec<Job>) {
        let Arrival::Closed { think, .. } = self.config.arrival else {
            return;
        };
        if self.issued >= self.config.requests {
            return;
        }
        let at = now + think;
        let request = self.new_request(at);
        inject.push(Job::released_at(at, vec![]));
        self.meta.push(JobKind::Arrival { request });
    }
}
