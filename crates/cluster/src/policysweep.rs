//! The multi-tenant QoS experiment: one mixed workload, three policy arms.
//!
//! The workload is the collision the policy layer exists for: a **premium**
//! latency-sensitive tenant trickling interactive launches, a **batch**
//! tenant flooding the cluster with heavyweight (SNP-skewed) classes, and a
//! **posture-strict** tenant that refuses any host below the patched TCB
//! floor — while a staggered firmware rollout sweeps the fleet mid-run.
//! All three tenants share the same hosts, the same PSPs, and the same
//! arrival process; only the policy arm changes:
//!
//! * **fifo** — tenants are tagged and accounted but share one FIFO line
//!   per PSP and nothing is enforced. The batch flood queues ahead of the
//!   premium trickle, so premium p99 inflates past its deadline target:
//!   the head-of-line-blocking baseline.
//! * **wfq** — virtual-finish-time weighted-fair queueing over per-tenant
//!   backlogs plus token-bucket quotas. Premium's weight buys it a
//!   protected share of each PSP, so its p99 holds while batch keeps its
//!   throughput (quota rejects replace queue sheds at saturation).
//! * **wfq+posture** — full enforcement: WFQ + quotas + posture-aware
//!   placement. The strict tenant is only ever placed on hosts at or above
//!   its TCB floor — rejected outright while no such host exists, then
//!   steered to patched hosts as the rollout lands. The run counts posture
//!   violations (a launch dispatched onto an ineligible host); the
//!   invariant is that this stays zero.
//!
//! Per-tenant conservation (`completed + shed + breaker_sheds + timeouts +
//! failed + rejected == issued`) must hold for every tenant in every arm,
//! and identical configs replay byte-identically (the CI replay gate diffs
//! two `--quick --json` runs of `examples/tenant_qos.rs`).

use sevf_attplane::AttPlaneConfig;
use sevf_fleet::admission::AdmissionConfig;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_policy::{
    IsolationTier, PolicyConfig, PolicySpec, Posture, QuotaSpec, Scheduler, SloClass, Tenant,
};
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::service::{ClusterConfig, ClusterReport, ClusterService, TcbRollout};
use crate::ClusterError;

const MB: u64 = 1024 * 1024;

/// Knobs of one policy sweep.
#[derive(Debug, Clone)]
pub struct PolicySweepConfig {
    /// Seed for catalog machines, arrivals, tenancy tagging, placement,
    /// and WFQ tie-breaks.
    pub seed: u64,
    /// Request classes to serve (shared catalog for all arms).
    pub classes: Vec<ClassSpec>,
    /// Hosts in every arm.
    pub hosts: usize,
    /// Aggregate offered load (req/s), split across tenants by share.
    pub rps: f64,
    /// Requests per arm.
    pub requests: usize,
    /// Per-host admission knobs (queue bound is also the WFQ bound).
    pub admission: AdmissionConfig,
    /// Recovery policy shared by all arms.
    pub recovery: RecoveryConfig,
    /// Verifier cost model (the posture arm needs an attestation plane;
    /// all arms run it so the substrate is identical).
    pub verifier: AttPlaneConfig,
    /// The staggered TCB rollout the strict tenant rides.
    pub rollout: TcbRollout,
    /// Premium tenant's p99 deadline target (ms) — the SLO the sweep
    /// scores FIFO and WFQ against.
    pub premium_deadline_ms: u64,
    /// Batch tenant's token-bucket quota.
    pub batch_quota: QuotaSpec,
    /// Per-tenant class mixes as `(class, weight)` pairs over
    /// [`PolicySweepConfig::classes`]: premium, batch, strict.
    pub premium_mix: Vec<(usize, u64)>,
    /// Batch flood's class mix (Zipf-skewed toward the heaviest class).
    pub batch_mix: Vec<(usize, u64)>,
    /// Strict tenant's class mix.
    pub strict_mix: Vec<(usize, u64)>,
}

impl PolicySweepConfig {
    /// The headline sweep over the paper mix.
    pub fn paper_policy() -> Self {
        PolicySweepConfig {
            seed: 0x7E4A,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            hosts: 4,
            rps: 140.0,
            requests: 420,
            admission: AdmissionConfig {
                queue_bound: 256,
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x7E4A),
            verifier: AttPlaneConfig::cached_batched(),
            rollout: TcbRollout {
                start: Nanos::from_millis(500),
                stagger: Nanos::from_millis(150),
            },
            premium_deadline_ms: 1800,
            batch_quota: QuotaSpec {
                rate_per_sec: 90.0,
                burst: 24.0,
            },
            // Premium trickles light classes; the batch flood is
            // Zipf-skewed toward the heaviest SNP class; the strict
            // tenant runs SNP only.
            premium_mix: vec![(3, 3), (4, 1)],
            batch_mix: vec![(0, 8), (1, 4), (2, 2), (3, 1), (4, 1)],
            strict_mix: vec![(0, 1)],
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick`).
    pub fn quick() -> Self {
        PolicySweepConfig {
            seed: 0x7E4A,
            classes: ClassSpec::quick_test_classes(),
            hosts: 3,
            rps: 200.0,
            requests: 420,
            // A tight in-flight window keeps the scheduling decision in
            // the queue (the PSP serializes launches anyway); with a deep
            // window every arrival dispatches immediately and the
            // scheduler never gets to order anything.
            admission: AdmissionConfig {
                queue_bound: 192,
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x7E4A),
            verifier: AttPlaneConfig::cached_batched(),
            rollout: TcbRollout {
                start: Nanos::from_millis(400),
                stagger: Nanos::from_millis(100),
            },
            premium_deadline_ms: 400,
            batch_quota: QuotaSpec {
                rate_per_sec: 130.0,
                burst: 16.0,
            },
            premium_mix: vec![(1, 1)],
            batch_mix: vec![(0, 3), (1, 1)],
            strict_mix: vec![(0, 1)],
        }
    }

    /// The three-tenant registry every arm shares: a premium
    /// latency-sensitive trickle (weight 8), a batch flood (weight 1,
    /// quota-capped, sheds first), and a posture-strict tenant pinned to
    /// TCB ≥ 1 hosts.
    pub fn tenants(&self) -> Vec<Tenant> {
        let premium = Tenant {
            name: "premium",
            share: 2,
            spec: PolicySpec {
                isolation: IsolationTier::SevSnp,
                accept_degrade: true,
                posture: Posture::None,
                min_tcb: 0,
                slo: SloClass::LatencySensitive,
                deadline: Nanos::from_millis(self.premium_deadline_ms),
                weight: 8,
                quota: None,
            },
            class_mix: self.premium_mix.clone(),
        };
        let batch = Tenant {
            name: "batch",
            share: 9,
            spec: PolicySpec {
                isolation: IsolationTier::Sev,
                accept_degrade: true,
                posture: Posture::None,
                min_tcb: 0,
                slo: SloClass::Batch,
                deadline: Nanos::from_secs(2),
                weight: 1,
                quota: Some(self.batch_quota),
            },
            class_mix: self.batch_mix.clone(),
        };
        let strict = Tenant {
            name: "strict",
            share: 1,
            spec: PolicySpec {
                isolation: IsolationTier::SevSnp,
                accept_degrade: false,
                posture: Posture::Fresh,
                min_tcb: 1,
                slo: SloClass::LatencySensitive,
                deadline: Nanos::from_millis(400),
                weight: 4,
                quota: None,
            },
            class_mix: self.strict_mix.clone(),
        };
        vec![premium, batch, strict]
    }
}

/// One per-tenant cell of the sweep.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Which arm produced the row ("fifo", "wfq", "wfq+posture").
    pub arm: &'static str,
    /// Tenant name.
    pub tenant: &'static str,
    /// Requests attributed to the tenant.
    pub issued: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Queue-overflow / unroutable sheds.
    pub shed: u64,
    /// Deadline expirations.
    pub timeouts: u64,
    /// Permanent failures (including breaker sheds).
    pub failed: u64,
    /// Turned away by policy (quota / isolation / posture).
    pub rejected: u64,
    /// Admitted at a degraded isolation tier.
    pub degraded: u64,
    /// Median completed latency (ms).
    pub p50_ms: f64,
    /// Tail completed latency (ms).
    pub p99_ms: f64,
    /// The tenant's SLO deadline target (ms).
    pub deadline_ms: f64,
    /// Whether the tail held the deadline target (`p99 <= deadline`,
    /// only meaningful with completions).
    pub slo_met: bool,
    /// Completed requests per second of cluster makespan.
    pub goodput_rps: f64,
    /// Whether the tenant's conservation invariant held.
    pub conserved: bool,
}

/// Cluster-level summary of one arm.
#[derive(Debug, Clone)]
pub struct ArmRow {
    /// Arm name ("fifo", "wfq", "wfq+posture").
    pub arm: &'static str,
    /// Scheduler fronting each PSP.
    pub scheduler: &'static str,
    /// Whether quotas were enforced.
    pub quotas: bool,
    /// Whether posture placement was enforced.
    pub posture: bool,
    /// Requests served to completion, cluster-wide.
    pub completed: usize,
    /// Requests that left without completing (all shed/reject terms).
    pub lost: u64,
    /// Requests the policy engine rejected.
    pub rejected: u64,
    /// Cluster-wide median latency (ms).
    pub p50_ms: f64,
    /// Cluster-wide 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Posture eligibility checks the filter ran.
    pub posture_checks: u64,
    /// Queued requests re-routed on a posture change.
    pub posture_redirects: u64,
    /// Launches dispatched onto an ineligible host — must stay 0.
    pub posture_violations: u64,
    /// Whether the cluster conservation invariant held.
    pub conserved: bool,
}

/// The sweep's result: one [`ArmRow`] per arm plus per-tenant rows.
#[derive(Debug, Clone)]
pub struct PolicySweepReport {
    /// Arm summaries, in arm order.
    pub arms: Vec<ArmRow>,
    /// Per-tenant cells: arm-major, tenant order premium/batch/strict.
    pub tenants: Vec<TenantRow>,
}

impl PolicySweepReport {
    /// The per-tenant row for `(arm, tenant)`, if present.
    pub fn tenant(&self, arm: &str, tenant: &str) -> Option<&TenantRow> {
        self.tenants
            .iter()
            .find(|r| r.arm == arm && r.tenant == tenant)
    }
}

fn arm_row(arm: &'static str, policy: &PolicyConfig, report: &ClusterReport) -> ArmRow {
    let m = &report.metrics;
    ArmRow {
        arm,
        scheduler: policy.scheduler.name(),
        quotas: policy.quotas,
        posture: policy.posture,
        completed: m.completed,
        lost: m.lost(),
        rejected: m.rejected,
        p50_ms: m.p50_ms(),
        p99_ms: m.p99_ms(),
        posture_checks: m.posture_checks,
        posture_redirects: m.posture_redirects,
        posture_violations: m.posture_violations,
        conserved: m.conserved(),
    }
}

fn tenant_rows(
    arm: &'static str,
    tenants: &[Tenant],
    report: &ClusterReport,
    out: &mut Vec<TenantRow>,
) {
    let rollup = report
        .tenants
        .as_ref()
        .expect("policy arms report per-tenant rollups");
    let makespan = report.metrics.makespan;
    for (t, r) in tenants.iter().zip(rollup.iter()) {
        let m = &r.metrics;
        let deadline_ms = t.spec.deadline.as_millis_f64();
        out.push(TenantRow {
            arm,
            tenant: r.name,
            issued: m.issued,
            completed: m.completed,
            shed: m.shed,
            timeouts: m.timeouts,
            failed: m.failed + m.breaker_sheds,
            rejected: m.rejected,
            degraded: m.degraded,
            p50_ms: m.p50_ms(),
            p99_ms: m.p99_ms(),
            deadline_ms,
            slo_met: m.completed > 0 && m.p99_ms() <= deadline_ms,
            goodput_rps: m.goodput_rps(makespan),
            conserved: m.conserved(),
        });
    }
}

/// Runs the three-arm policy sweep over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`ClusterError::Fleet`]),
/// invalid verifier models ([`ClusterError::AttPlane`]), and tenant
/// registry mistakes ([`ClusterError::Policy`]).
pub fn policy_sweep(cfg: &PolicySweepConfig) -> Result<PolicySweepReport, ClusterError> {
    cfg.verifier.validate().map_err(ClusterError::AttPlane)?;
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let tenants = cfg.tenants();

    let arms: [(&'static str, PolicyConfig); 3] = [
        ("fifo", PolicyConfig::tagged(tenants.clone())),
        (
            "wfq",
            PolicyConfig {
                tenants: tenants.clone(),
                scheduler: Scheduler::Wfq,
                quotas: true,
                posture: false,
            },
        ),
        ("wfq+posture", PolicyConfig::enforced(tenants.clone())),
    ];

    let mut report = PolicySweepReport {
        arms: Vec::new(),
        tenants: Vec::new(),
    };
    for (arm, policy) in arms {
        let config = ClusterConfig {
            seed: cfg.seed,
            admission: cfg.admission,
            placement: PlacementPolicy::JsqPsp,
            recovery: cfg.recovery,
            attestation: Some(cfg.verifier),
            tcb_rollout: Some(cfg.rollout),
            policy: Some(policy.clone()),
            ..ClusterConfig::open_loop(cfg.hosts, ServingTier::Template, cfg.rps, cfg.requests)
        };
        let run = ClusterService::new(catalog.clone(), config)?.run();
        report.arms.push(arm_row(arm, &policy, &run));
        tenant_rows(arm, &tenants, &run, &mut report.tenants);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(report: &PolicySweepReport) -> Vec<(usize, u64, u64, String)> {
        report
            .tenants
            .iter()
            .map(|r| {
                (
                    r.completed,
                    r.shed + r.timeouts + r.failed,
                    r.rejected,
                    format!("{:.3}/{:.3}", r.p50_ms, r.p99_ms),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_conserves_every_tenant_in_every_arm_and_replays() {
        let cfg = PolicySweepConfig::quick();
        let a = policy_sweep(&cfg).unwrap();
        let b = policy_sweep(&cfg).unwrap();
        assert_eq!(a.arms.len(), 3);
        assert_eq!(a.tenants.len(), 9);
        assert!(a.arms.iter().all(|r| r.conserved));
        assert!(a.tenants.iter().all(|r| r.conserved), "{:#?}", a.tenants);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn fifo_violates_premium_deadline_and_wfq_holds_it() {
        let report = policy_sweep(&PolicySweepConfig::quick()).unwrap();
        let fifo = report.tenant("fifo", "premium").unwrap();
        let wfq = report.tenant("wfq", "premium").unwrap();
        assert!(
            !fifo.slo_met,
            "the batch flood must blow premium's p99 past {} ms under FIFO, got {:.2} ms",
            fifo.deadline_ms, fifo.p99_ms
        );
        assert!(
            wfq.slo_met,
            "WFQ must hold premium's p99 under {} ms, got {:.2} ms",
            wfq.deadline_ms, wfq.p99_ms
        );
        assert!(wfq.p99_ms < fifo.p99_ms);
    }

    #[test]
    fn batch_keeps_its_throughput_under_wfq() {
        let report = policy_sweep(&PolicySweepConfig::quick()).unwrap();
        let fifo = report.tenant("fifo", "batch").unwrap();
        let wfq = report.tenant("wfq", "batch").unwrap();
        // Protecting premium must not starve batch: goodput within 20%
        // of the FIFO baseline (quota rejects replace queue sheds).
        assert!(
            wfq.goodput_rps >= 0.8 * fifo.goodput_rps,
            "batch goodput {:.1} rps vs FIFO {:.1} rps",
            wfq.goodput_rps,
            fifo.goodput_rps
        );
        // The quota actually bites in the enforced arm.
        assert!(
            wfq.rejected > 0,
            "batch quota must reject some of the flood"
        );
    }

    #[test]
    fn posture_arm_never_violates_the_tcb_floor() {
        let report = policy_sweep(&PolicySweepConfig::quick()).unwrap();
        let arm = report.arms.iter().find(|r| r.arm == "wfq+posture").unwrap();
        assert!(arm.posture_checks > 0, "the filter must actually run");
        assert_eq!(
            arm.posture_violations, 0,
            "a strict launch landed on a host below its TCB floor"
        );
        let strict = report.tenant("wfq+posture", "strict").unwrap();
        // Arrivals before any host reaches TCB 1 are rejected, the rest
        // complete on patched hosts only.
        assert!(strict.completed > 0, "{strict:#?}");
        assert!(strict.conserved);
        // The non-posture arms place strict anywhere (nothing enforced),
        // so no rejects for eligibility there.
        let lax = report.tenant("fifo", "strict").unwrap();
        assert_eq!(lax.rejected, 0);
    }
}
