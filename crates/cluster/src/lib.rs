//! `sevf-cluster`: sharded multi-host serving with PSP-aware placement.
//!
//! The fleet crate serves launch traffic on *one* host against *one* PSP.
//! This crate scales that out: N hosts on one shared virtual clock, each an
//! independent fault domain with its own PSP (the Fig. 12 bottleneck does
//! not pool — every host brings its own ~39 req/s cold-launch ceiling), its
//! own §6.2 template cache, and its own §7.1 warm pool. A cluster
//! [`Router`] places each arrival by a pluggable [`PlacementPolicy`]:
//!
//! * round-robin — the oblivious baseline,
//! * join-shortest-PSP-backlog with power-of-two-choices sampling, and
//! * template-affinity over a seeded consistent-hash [`ring::HashRing`],
//!   which measures each class's template once cluster-wide instead of once
//!   per host.
//!
//! The cluster-shaped failure modes live here too: whole-host outages that
//! poison in-flight launches and fail queued requests over to surviving
//! hosts, graceful membership changes, warm-budget rebalancing across the
//! live host set, and the §6.2 trust caveat exercised *across machines* —
//! a template dies with its host and must be re-measured wherever its
//! classes land next.
//!
//! Everything is deterministic: one seed fixes arrivals, class sampling,
//! placement probes, every host's fault domain (via
//! [`sevf_sim::fault::FaultPlan::generate_for_domain`]), and therefore the
//! entire report, byte for byte.
//!
//! ```
//! use sevf_cluster::prelude::*;
//! use sevf_fleet::blueprint::{Catalog, ClassSpec};
//!
//! let catalog = Catalog::build(7, &ClassSpec::quick_test_classes()).unwrap();
//! let config = ClusterConfig::open_loop(4, ServingTier::Template, 200.0, 64);
//! let report = ClusterService::new(catalog, config).unwrap().run();
//! assert!(report.metrics.conserved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attsweep;
pub mod experiment;
pub mod host;
pub mod metrics;
pub mod netsweep;
pub mod placement;
pub mod policysweep;
pub mod ring;
pub mod scalesweep;
pub mod service;
pub mod tracedemo;

pub use attsweep::{att_sweep, AttRow, AttSweepConfig, AttSweepReport};
pub use experiment::{cluster_sweep, ClusterRow, ClusterSweepConfig, ClusterSweepReport};
pub use metrics::{ClusterMetrics, HostRollup};
pub use netsweep::{net_sweep, NetRow, NetSweepConfig, NetSweepReport};
pub use placement::{PlacementPolicy, Router};
pub use policysweep::{policy_sweep, ArmRow, PolicySweepConfig, PolicySweepReport, TenantRow};
pub use ring::HashRing;
pub use scalesweep::{scale_sweep, ScaleRow, ScaleSweepConfig, ScaleSweepReport};
pub use service::{
    AutoscaleRollup, ClusterConfig, ClusterReport, ClusterService, HostEvent, HostEventKind,
    HostOutage, RevocationDrill, ScaleEvent, TcbRollout,
};
pub use tracedemo::{TraceExemplar, TraceScenarios, TracedRun};

use sevf_fleet::FleetError;

/// Errors from building a cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// A cluster configuration knob failed validation.
    Config(&'static str),
    /// A per-host fault plan could not be generated from its config.
    FaultPlan(&'static str),
    /// The shared recovery configuration failed validation.
    Recovery(&'static str),
    /// Building the shared catalog (or another fleet component) failed.
    Fleet(FleetError),
    /// The attestation control plane rejected its configuration.
    AttPlane(sevf_attplane::AttPlaneError),
    /// The network model rejected its configuration.
    Net(sevf_net::NetError),
    /// The multi-tenant policy engine rejected its configuration.
    Policy(sevf_policy::PolicyError),
    /// The autoscaler or a workload curve rejected its configuration.
    Scale(sevf_scale::ScaleError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "invalid cluster config: {e}"),
            ClusterError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            ClusterError::Recovery(e) => write!(f, "invalid recovery config: {e}"),
            ClusterError::Fleet(e) => write!(f, "fleet layer failed: {e}"),
            ClusterError::AttPlane(e) => write!(f, "attestation plane failed: {e}"),
            ClusterError::Net(e) => write!(f, "network model failed: {e}"),
            ClusterError::Policy(e) => write!(f, "policy engine failed: {e}"),
            ClusterError::Scale(e) => write!(f, "autoscaler failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Fleet(e) => Some(e),
            ClusterError::AttPlane(e) => Some(e),
            ClusterError::Net(e) => Some(e),
            ClusterError::Policy(e) => Some(e),
            ClusterError::Scale(e) => Some(e),
            ClusterError::Config(_) | ClusterError::FaultPlan(_) | ClusterError::Recovery(_) => {
                None
            }
        }
    }
}

impl From<FleetError> for ClusterError {
    fn from(e: FleetError) -> Self {
        ClusterError::Fleet(e)
    }
}

impl From<sevf_attplane::AttPlaneError> for ClusterError {
    fn from(e: sevf_attplane::AttPlaneError) -> Self {
        ClusterError::AttPlane(e)
    }
}

impl From<sevf_net::NetError> for ClusterError {
    fn from(e: sevf_net::NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<sevf_policy::PolicyError> for ClusterError {
    fn from(e: sevf_policy::PolicyError) -> Self {
        ClusterError::Policy(e)
    }
}

impl From<sevf_scale::ScaleError> for ClusterError {
    fn from(e: sevf_scale::ScaleError) -> Self {
        ClusterError::Scale(e)
    }
}

/// The common imports for working with the cluster control plane.
pub mod prelude {
    pub use crate::attsweep::{att_sweep, AttSweepConfig, AttSweepReport};
    pub use crate::experiment::{cluster_sweep, ClusterSweepConfig, ClusterSweepReport};
    pub use crate::metrics::ClusterMetrics;
    pub use crate::netsweep::{net_sweep, NetSweepConfig, NetSweepReport};
    pub use crate::placement::PlacementPolicy;
    pub use crate::policysweep::{policy_sweep, PolicySweepConfig, PolicySweepReport};
    pub use crate::scalesweep::{scale_sweep, ScaleSweepConfig, ScaleSweepReport};
    pub use crate::service::{
        AutoscaleRollup, ClusterConfig, ClusterReport, ClusterService, HostEvent, HostEventKind,
        HostOutage, RevocationDrill, ScaleEvent, TcbRollout,
    };
    pub use crate::ClusterError;
    pub use sevf_fleet::service::ServingTier;
    pub use sevf_policy::prelude::*;
    pub use sevf_scale::{AutoscalerConfig, ScalePolicy, Workload};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn cluster_error_chains_to_its_fleet_source() {
        let err = ClusterError::from(FleetError::NoClasses);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("fleet layer"));
        assert!(ClusterError::Config("x").source().is_none());
    }

    #[test]
    fn cluster_error_chains_to_its_net_source() {
        let err = ClusterError::from(sevf_net::NetError::from(
            sevf_net::DetectorError::WindowZero,
        ));
        assert!(err.to_string().contains("network model"));
        let source = err.source().expect("net errors carry their source");
        assert!(
            source.source().is_some(),
            "NetError chains to DetectorError"
        );
    }

    #[test]
    fn cluster_error_chains_to_its_attplane_source() {
        let err = ClusterError::from(sevf_attplane::AttPlaneError::Config(
            "cache_ttl must be > 0",
        ));
        assert!(err.to_string().contains("attestation plane"));
        let source = err.source().expect("attplane errors carry their source");
        assert!(source.to_string().contains("cache_ttl"));
    }
}
