//! Exemplar traced runs for the trace explorer and `figures --table trace`.
//!
//! Three deterministic scenarios, each run through the traced control
//! planes ([`sevf_fleet::FleetService::run_traced`] on one host,
//! [`ClusterService::run_traced`] across hosts) and reduced to one
//! exemplar request with its per-phase critical-path breakdown:
//!
//! * **cold** — a full cold SEV launch under contention: the slowest
//!   completed request of a cold-tier open loop, so the queue-wait share
//!   of the Fig. 12 PSP bottleneck is visible next to the boot phases.
//! * **template-hit** — the §6.2 shared-key path: a completed request
//!   that was served from a template hit (pre-encryption amortized away).
//! * **failover-recovered** — a request whose first launch died with its
//!   host mid-outage and that completed anyway on a surviving host; its
//!   tree shows the failed attempt, the failover hop, the backoff, and
//!   the second placement.
//!
//! Everything is a pure function of the seeds baked in here: same build,
//! byte-identical tables and traces.

use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::service::{FleetConfig, FleetService, ServingTier};
use sevf_fleet::workload::RequestMix;
use sevf_obs::{phase_breakdown, MarkerKind, Outcome, Registry, SpanKind, TraceLog};
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::ring::HashRing;
use crate::service::{ClusterConfig, ClusterService, HostOutage};
use crate::ClusterError;

/// One exemplar request distilled from a traced run.
#[derive(Debug, Clone)]
pub struct TraceExemplar {
    /// Scenario name: `cold`, `template-hit`, or `failover-recovered`.
    pub scenario: &'static str,
    /// The request id inside its run.
    pub request: usize,
    /// End-to-end latency (root span duration).
    pub latency: Nanos,
    /// Launch attempts the request needed.
    pub attempts: usize,
    /// Failover hops the request took (cluster scenario only).
    pub failover_hops: usize,
    /// Per-phase critical-path breakdown, first-seen order; durations sum
    /// to `latency` exactly (children tile their parents).
    pub phases: Vec<(String, Nanos)>,
}

/// A traced scenario run: the full log plus its distilled exemplar.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Scenario name (matches the exemplar's).
    pub scenario: &'static str,
    /// Requests the run completed.
    pub completed: usize,
    /// The assembled span trees, markers, and occupancy.
    pub log: TraceLog,
    /// The run's unified metrics registry.
    pub registry: Registry,
    /// The scenario's exemplar request.
    pub exemplar: TraceExemplar,
}

/// The three exemplar scenarios.
#[derive(Debug, Clone)]
pub struct TraceScenarios {
    /// Cold tier under contention, single host.
    pub cold: TracedRun,
    /// Template tier, single host.
    pub template: TracedRun,
    /// Template tier across hosts with a mid-stream outage.
    pub failover: TracedRun,
}

/// Scenario sizing: `quick` keeps every run under a second of wall time.
fn sizes(quick: bool) -> (usize, f64) {
    if quick {
        (40, 45.0)
    } else {
        (160, 60.0)
    }
}

fn exemplar_from(
    scenario: &'static str,
    log: &TraceLog,
    request: usize,
) -> Result<TraceExemplar, ClusterError> {
    let root = log
        .request_root(request)
        .ok_or(ClusterError::Config("exemplar request has no span tree"))?;
    let attempts = log
        .spans
        .iter()
        .filter(|s| s.request == Some(request) && s.kind == SpanKind::Attempt)
        .count();
    let failover_hops = log
        .markers
        .iter()
        .filter(|m| m.kind == MarkerKind::Failover && m.request == Some(request))
        .count();
    Ok(TraceExemplar {
        scenario,
        request,
        latency: root.duration(),
        attempts,
        failover_hops,
        phases: phase_breakdown(log, request),
    })
}

/// The slowest completed request (ties broken toward the lowest id): the
/// one whose tree shows the most queueing.
fn slowest_completed(log: &TraceLog) -> Option<usize> {
    log.requests_with_outcome(Outcome::Completed)
        .into_iter()
        .filter_map(|r| log.request_root(r).map(|root| (root.duration(), r)))
        .max_by_key(|&(latency, request)| (latency, std::cmp::Reverse(request)))
        .map(|(_, r)| r)
}

/// Runs the three scenarios. `quick` shrinks the streams for tests and
/// `--quick` examples; both sizes pick the same kinds of exemplars.
///
/// # Errors
///
/// Returns [`ClusterError`] if a catalog fails to build or a scenario
/// produces no exemplar of the promised shape (both would be bugs: the
/// seeds and sizes here are chosen so each exemplar exists).
pub fn scenarios(quick: bool) -> Result<TraceScenarios, ClusterError> {
    let catalog = Catalog::build(41, &ClassSpec::quick_test_classes())?;
    let (requests, rps) = sizes(quick);
    let mix = RequestMix::weighted(vec![(0, 3), (1, 1)]);

    // Scenario 1: cold tier on one host. The PSP serializes whole launches,
    // so the slowest completion carries a visible queue-wait share.
    let (report, log) = FleetService::new(
        catalog.clone(),
        FleetConfig {
            mix: Some(mix.clone()),
            ..FleetConfig::open_loop(ServingTier::Cold, rps, requests)
        },
    )
    .run_traced();
    let request =
        slowest_completed(&log).ok_or(ClusterError::Config("cold scenario completed nothing"))?;
    let cold = TracedRun {
        scenario: "cold",
        completed: report.metrics.completed,
        registry: report.metrics.registry(),
        exemplar: exemplar_from("cold", &log, request)?,
        log,
    };

    // Scenario 2: template tier on one host. Skip the fills: the exemplar
    // is the first request actually served from a template hit.
    let (report, log) = FleetService::new(
        catalog.clone(),
        FleetConfig {
            mix: Some(mix.clone()),
            ..FleetConfig::open_loop(ServingTier::Template, rps, requests)
        },
    )
    .run_traced();
    let request = log
        .requests_with_outcome(Outcome::Completed)
        .into_iter()
        .find(|&r| {
            log.spans.iter().any(|s| {
                s.request == Some(r)
                    && s.kind == SpanKind::Attempt
                    && s.name.contains("template-hit")
            })
        })
        .ok_or(ClusterError::Config("template scenario had no hit"))?;
    let template = TracedRun {
        scenario: "template-hit",
        completed: report.metrics.completed,
        registry: report.metrics.registry(),
        exemplar: exemplar_from("template-hit", &log, request)?,
        log,
    };

    // Scenario 3: a 3-host cluster under affinity placement; the ring
    // owner of the heavy class dies mid-stream, so its in-flight and
    // queued requests fail over and complete elsewhere.
    let hosts = 3;
    let vnodes = 32;
    let seed = 0x5EF0;
    let mut ring = HashRing::new(seed, vnodes);
    for host in 0..hosts {
        ring.insert(host);
    }
    let victim = ring.owner(&catalog.class(0).key).unwrap_or(0);
    let nominal = requests as f64 / rps;
    let outage = HostOutage {
        host: victim,
        start: Nanos::from_nanos((nominal / 3.0 * 1e9) as u64),
        end: Nanos::from_nanos((nominal * 2.0 / 3.0 * 1e9) as u64),
    };
    let config = ClusterConfig {
        mix: Some(mix),
        placement: PlacementPolicy::TemplateAffinity,
        vnodes,
        seed,
        outages: vec![outage],
        recovery: sevf_fleet::recovery::RecoveryConfig::resilient(seed),
        ..ClusterConfig::open_loop(
            hosts,
            ServingTier::Template,
            rps * hosts as f64,
            requests * hosts,
        )
    };
    let (report, log) = ClusterService::new(catalog, config)?.run_traced();
    // Prefer a request whose *in-flight* launch the outage poisoned (it
    // shows the dead attempt, the backoff, and the second placement) over
    // one that merely failed over out of the dead host's queue.
    let recovered: Vec<usize> = log
        .markers
        .iter()
        .filter(|m| m.kind == MarkerKind::Failover)
        .filter_map(|m| m.request)
        .filter(|&r| {
            log.outcomes
                .iter()
                .any(|&(req, o, _)| req == r && o == Outcome::Completed)
        })
        .collect();
    let attempts_of = |r: usize| {
        log.spans
            .iter()
            .filter(|s| s.request == Some(r) && s.kind == SpanKind::Attempt)
            .count()
    };
    let request = recovered
        .iter()
        .copied()
        .find(|&r| attempts_of(r) >= 2)
        .or_else(|| recovered.first().copied())
        .ok_or(ClusterError::Config("outage scenario recovered nothing"))?;
    let failover = TracedRun {
        scenario: "failover-recovered",
        completed: report.metrics.completed,
        registry: report.metrics.registry(),
        exemplar: exemplar_from("failover-recovered", &log, request)?,
        log,
    };

    Ok(TraceScenarios {
        cold,
        template,
        failover,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenarios_produce_the_promised_exemplars() {
        let s = scenarios(true).unwrap();
        for run in [&s.cold, &s.template, &s.failover] {
            let e = &run.exemplar;
            assert!(run.completed > 0, "{}: nothing completed", run.scenario);
            assert!(e.latency > Nanos::ZERO, "{}: zero latency", run.scenario);
            assert!(!e.phases.is_empty(), "{}: no phases", run.scenario);
            let total: Nanos = e.phases.iter().map(|(_, d)| *d).sum();
            assert_eq!(total, e.latency, "{}: phases must tile", run.scenario);
        }
        assert_eq!(s.cold.exemplar.attempts, 1);
        assert_eq!(s.template.exemplar.attempts, 1);
        assert!(s.failover.exemplar.attempts >= 2, "failover needs a retry");
        assert!(s.failover.exemplar.failover_hops >= 1);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenarios(true).unwrap();
        let b = scenarios(true).unwrap();
        assert_eq!(a.cold.exemplar.request, b.cold.exemplar.request);
        assert_eq!(a.template.exemplar.phases, b.template.exemplar.phases);
        assert_eq!(
            a.failover.exemplar.failover_hops,
            b.failover.exemplar.failover_hops
        );
        assert_eq!(a.failover.log.spans.len(), b.failover.log.spans.len());
    }
}
