//! One cluster host: an independent PSP fault domain with its own serving
//! state.
//!
//! Every host owns what a single-host fleet owns — a PSP resource
//! (capacity 1, the Fig. 12 bottleneck), a CPU pool, a bounded admission
//! queue, a §6.2 template cache, a §7.1 warm pool, per-class circuit
//! breakers, and a [`FaultPlan`] derived for its fault domain — plus the
//! bookkeeping the router needs (outstanding expected PSP work) and the
//! bookkeeping whole-host outages need (every in-flight engine job on the
//! machine, so all of it can be poisoned at once).

use std::collections::BTreeSet;

use sevf_fleet::admission::{BoundedQueue, Pending};
use sevf_fleet::blueprint::LaunchCache;
use sevf_fleet::metrics::FleetMetrics;
use sevf_fleet::pool::WarmPool;
use sevf_fleet::recovery::CircuitBreaker;
use sevf_policy::WfqQueue;
use sevf_sim::fault::FaultPlan;
use sevf_sim::{Nanos, ResourceId};

/// Serving state of one host on the shared DES clock.
#[derive(Debug)]
pub struct Host {
    /// Host id (index into the cluster's host table).
    pub id: usize,
    /// The host's PSP resource (capacity 1).
    pub psp: ResourceId,
    /// The host's CPU pool.
    pub cpu: ResourceId,
    /// Whether the host is inside a whole-host outage window.
    pub out: bool,
    /// Whether the host has gracefully left the cluster.
    pub departed: bool,
    /// Bounded admission queue (FIFO; unused when [`Host::wfq`] is active).
    pub queue: BoundedQueue,
    /// Per-tenant weighted-fair queue, when the cluster runs a
    /// [`sevf_policy::Scheduler::Wfq`] policy. Replaces [`Host::queue`] in
    /// front of this host's PSP.
    pub wfq: Option<WfqQueue<Pending>>,
    /// §7.1 warm pool.
    pub pool: WarmPool,
    /// §6.2 content-addressed template cache. Dies with the host: an outage
    /// forces every class to re-measure wherever it lands next.
    pub cache: LaunchCache,
    /// Per-class circuit breakers (resilient recovery only).
    pub breakers: Option<Vec<CircuitBreaker>>,
    /// This host's fault domain, derived from the cluster seed.
    pub plan: Option<FaultPlan>,
    /// Engine job ids of in-flight work holding this host's PSP.
    pub psp_inflight: BTreeSet<usize>,
    /// Engine job ids of *all* in-flight launches/refills on this host.
    pub host_inflight: BTreeSet<usize>,
    /// Deterministic per-host token stream for stateless fault draws.
    pub launch_seq: u64,
    /// Launches currently dispatched (admission slot accounting).
    pub inflight: usize,
    /// Lease-based ownership: virtual time the current lease expires.
    /// `u64::MAX` nanoseconds when leases are off (never fences itself).
    pub lease_until: Nanos,
    /// Whether the host has parked itself after its lease expired: it
    /// purged its queue and refuses new work until a fresh grant arrives.
    pub parked: bool,
    /// Expected serialized PSP work admitted but not yet completed (queued
    /// plus in flight) — the backlog signal JSQ placement samples.
    pub committed_psp: Nanos,
    /// Per-host metrics, rolled up cluster-wide at the end of the run.
    pub metrics: FleetMetrics,
}

impl Host {
    /// Whether the router may send this host traffic.
    pub fn available(&self) -> bool {
        !self.out && !self.departed
    }

    /// Whether this host's PSP is inside a firmware-reset outage at `now`.
    pub fn in_psp_outage(&self, now: Nanos) -> bool {
        self.plan.as_ref().and_then(|p| p.in_outage(now)).is_some()
    }

    /// Current degradation level of `class` at `now` (0 without breakers),
    /// applying time-based healing first.
    pub fn degrade_level(&mut self, class: usize, now: Nanos) -> usize {
        match &mut self.breakers {
            Some(breakers) => {
                breakers[class].heal(now);
                breakers[class].level()
            }
            None => 0,
        }
    }
}
