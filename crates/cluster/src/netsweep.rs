//! The partition-tolerance experiment: deterministic link faults under
//! load, with and without the resilient network control plane.
//!
//! One catalog, three arms, each run twice over the *same* seeded
//! [`sevf_net::LinkPlan`] — identical latency draws, loss draws, and
//! partition windows — so the only difference between the two rows of an
//! arm is the control plane itself:
//!
//! * **partition** — one host's router↔host pair is cut mid-stream and
//!   later heals. The *naive* policy keeps routing into the hole: every
//!   dispatch is lost, burns a `dispatch_timeout`, and re-enters recovery
//!   until the request's retry budget or deadline runs out. The
//!   *resilient* policy suspects the host via phi-accrual heartbeats,
//!   routes around it, expires its lease (the host parks and nacks its
//!   stranded queue), and sweeps its outstanding work over to the
//!   survivors once the lease bound makes that safe.
//! * **island** — two hosts are cut in the same window: a minority
//!   island that keeps "serving" work it can no longer report back.
//!   Epoch fencing discards the island's late completions after the
//!   failover sweep re-dispatches, so the conservation invariant holds
//!   with every request counted exactly once.
//! * **blackout** — the router↔verifier link goes dark during a
//!   staggered TCB rollout. The naive plane fails *closed* (every
//!   dispatch refused until the verifier heals); the resilient plane
//!   fails *open* within a bounded staleness budget, serving same-chip
//!   cached verdicts and queueing re-verification for the heal.
//!
//! Identical configs produce byte-identical reports (the CI replay gate
//! diffs two `--quick --json` runs of `examples/partition_drill.rs`).

use sevf_attplane::{AttPlaneConfig, FailMode};
use sevf_fleet::admission::AdmissionConfig;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_fleet::workload::RequestMix;
use sevf_net::{DetectorConfig, LeaseConfig, LinkSpec, NetConfig, Partition, PartitionScope};
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::service::{ClusterConfig, ClusterService, TcbRollout};
use crate::ClusterError;

const MB: u64 = 1024 * 1024;

/// Knobs of one partition sweep.
#[derive(Debug, Clone)]
pub struct NetSweepConfig {
    /// Seed for catalog machines, arrivals, placement, chips, and links.
    pub seed: u64,
    /// Request classes to serve (shared catalog for all arms).
    pub classes: Vec<ClassSpec>,
    /// Mix over those classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Hosts in every arm.
    pub hosts: usize,
    /// Aggregate offered load (req/s).
    pub rps: f64,
    /// Requests per cell.
    pub requests: usize,
    /// Per-host admission knobs.
    pub admission: AdmissionConfig,
    /// Recovery policy (shared by both policies of every arm, so the
    /// network control plane is the only variable).
    pub recovery: RecoveryConfig,
    /// Latency/jitter/loss model shared by every link.
    pub link: LinkSpec,
    /// Router-side dispatch-ack timeout.
    pub dispatch_timeout: Nanos,
    /// Host heartbeat period (resilient policy only).
    pub heartbeat_every: Nanos,
    /// Phi-accrual detector knobs (resilient policy only).
    pub detector: DetectorConfig,
    /// Lease-ownership knobs (resilient policy only).
    pub lease: LeaseConfig,
    /// Network-schedule horizon; must outlive the run.
    pub horizon: Nanos,
    /// Instant every arm's partition opens.
    pub cut_start: Nanos,
    /// Instant every arm's partition heals.
    pub cut_end: Nanos,
    /// Verifier cost model of the blackout arm; the policy overrides
    /// only `degrade`.
    pub verifier: AttPlaneConfig,
    /// Extra age past the cert TTL fail-open may trust (blackout arm).
    pub staleness_budget: Nanos,
    /// The blackout arm's staggered TCB rollout.
    pub rollout: TcbRollout,
}

impl NetSweepConfig {
    /// The headline partition sweep over the paper mix.
    pub fn paper_partition() -> Self {
        NetSweepConfig {
            seed: 0x4E37,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            mix: Some(RequestMix::weighted(vec![
                (0, 5),
                (1, 3),
                (2, 1),
                (3, 1),
                (4, 2),
            ])),
            hosts: 6,
            rps: 120.0,
            requests: 480,
            admission: AdmissionConfig::default(),
            recovery: RecoveryConfig::resilient(0x4E37),
            link: LinkSpec::datacenter(),
            dispatch_timeout: Nanos::from_millis(50),
            heartbeat_every: Nanos::from_millis(50),
            detector: DetectorConfig::default(),
            lease: LeaseConfig {
                duration: Nanos::from_millis(300),
                renew_every: Nanos::from_millis(100),
            },
            horizon: Nanos::from_secs(60),
            cut_start: Nanos::from_millis(1000),
            cut_end: Nanos::from_millis(4000),
            verifier: AttPlaneConfig::cached_batched(),
            staleness_budget: Nanos::from_secs(120),
            rollout: TcbRollout {
                start: Nanos::from_millis(1500),
                stagger: Nanos::from_millis(200),
            },
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick`).
    pub fn quick() -> Self {
        NetSweepConfig {
            seed: 0x4E37,
            classes: ClassSpec::quick_test_classes(),
            mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
            hosts: 5,
            rps: 80.0,
            requests: 240,
            admission: AdmissionConfig {
                queue_bound: 128,
                max_inflight: 96,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x4E37),
            link: LinkSpec::datacenter(),
            dispatch_timeout: Nanos::from_millis(50),
            heartbeat_every: Nanos::from_millis(50),
            detector: DetectorConfig::default(),
            lease: LeaseConfig {
                duration: Nanos::from_millis(300),
                renew_every: Nanos::from_millis(100),
            },
            horizon: Nanos::from_secs(30),
            cut_start: Nanos::from_millis(500),
            cut_end: Nanos::from_millis(2000),
            verifier: AttPlaneConfig::cached_batched(),
            staleness_budget: Nanos::from_secs(120),
            rollout: TcbRollout {
                start: Nanos::from_millis(900),
                stagger: Nanos::from_millis(150),
            },
        }
    }

    /// Partition windows of an arm, over this config's cut interval.
    fn windows(&self, arm: &str) -> Vec<Partition> {
        let cut = |scope| Partition {
            scope,
            start: self.cut_start,
            end: self.cut_end,
        };
        match arm {
            "partition" => vec![cut(PartitionScope::Host(self.hosts - 1))],
            "island" => vec![
                cut(PartitionScope::Host(self.hosts - 2)),
                cut(PartitionScope::Host(self.hosts - 1)),
            ],
            _ => vec![cut(PartitionScope::Verifier)],
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct NetRow {
    /// Which arm produced the row ("partition", "island", "blackout").
    pub arm: &'static str,
    /// Control-plane policy ("naive" or "resilient").
    pub policy: &'static str,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed (admission queues + unroutable arrivals).
    pub shed: u64,
    /// Requests shed on deadline.
    pub timeouts: u64,
    /// Requests permanently failed after exhausting retries.
    pub failed: u64,
    /// Requests displaced off a dead or fenced host and re-routed.
    pub failovers: u64,
    /// Retry launches dispatched.
    pub retries: u64,
    /// Times the failure detector began suspecting a host.
    pub suspicions: u64,
    /// Suspicions a later heartbeat cleared.
    pub suspicions_cleared: u64,
    /// Failover sweeps that fired after their suspicion had cleared.
    pub false_suspicions: u64,
    /// Times a host parked on an expired lease.
    pub lease_expiries: u64,
    /// Dispatch messages lost to link loss or a partition.
    pub net_lost: u64,
    /// Dispatches the router timed out back into recovery.
    pub net_timeouts: u64,
    /// Host refusals (parked, fenced, or dead at delivery).
    pub net_nacks: u64,
    /// Outcome messages discarded on a stale dispatch epoch.
    pub stale_completions: u64,
    /// Success completions the epoch fence suppressed.
    pub double_completion_attempts: u64,
    /// Launches served on a stale cached verdict (fail-open only).
    pub stale_serves: u64,
    /// Launches refused while the verifier was dark (fail-closed).
    pub unavailable_refusals: u64,
    /// Deferred re-verifications run after the verifier healed.
    pub reverifies: u64,
    /// Cluster-wide median latency (ms).
    pub p50_ms: f64,
    /// Cluster-wide 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Whether the conservation invariant held for the cell.
    pub conserved: bool,
}

/// The sweep's result.
#[derive(Debug, Clone)]
pub struct NetSweepReport {
    /// Two rows (naive, resilient) per arm: partition, island, blackout.
    pub rows: Vec<NetRow>,
}

fn row_from(
    arm: &'static str,
    policy: &'static str,
    report: &crate::service::ClusterReport,
) -> NetRow {
    let m = &report.metrics;
    let att = report.attestation.unwrap_or_default();
    NetRow {
        arm,
        policy,
        completed: m.completed,
        shed: m.shed,
        timeouts: m.timeouts,
        failed: m.failed,
        failovers: m.failovers,
        retries: m.retries,
        suspicions: m.suspicions,
        suspicions_cleared: m.suspicions_cleared,
        false_suspicions: m.false_suspicions,
        lease_expiries: m.lease_expiries,
        net_lost: m.net_lost,
        net_timeouts: m.net_timeouts,
        net_nacks: m.net_nacks,
        stale_completions: m.stale_completions,
        double_completion_attempts: m.double_completion_attempts,
        stale_serves: att.stale_serves,
        unavailable_refusals: att.unavailable_refusals,
        reverifies: att.reverifies,
        p50_ms: m.p50_ms(),
        p99_ms: m.p99_ms(),
        conserved: m.conserved(),
    }
}

/// The network model of one cell. Both policies share the link model and
/// partition schedule — the same `(seed, config, hosts)` triple replays
/// the same delay and loss draws — and differ only in whether the
/// detector and leases exist.
fn net_for(cfg: &NetSweepConfig, partitions: Vec<Partition>, resilient: bool) -> NetConfig {
    NetConfig {
        link: cfg.link,
        partitions,
        horizon: cfg.horizon,
        dispatch_timeout: cfg.dispatch_timeout,
        heartbeat_every: cfg.heartbeat_every,
        detector: resilient.then_some(cfg.detector),
        lease: resilient.then_some(cfg.lease),
    }
}

fn base_config(cfg: &NetSweepConfig) -> ClusterConfig {
    ClusterConfig {
        mix: cfg.mix.clone(),
        seed: cfg.seed,
        admission: cfg.admission,
        placement: PlacementPolicy::JsqPsp,
        recovery: cfg.recovery,
        ..ClusterConfig::open_loop(cfg.hosts, ServingTier::Template, cfg.rps, cfg.requests)
    }
}

/// Runs the three-arm partition sweep over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`ClusterError::Fleet`]) and
/// configuration errors, including [`ClusterError::Net`] for an invalid
/// network model.
pub fn net_sweep(cfg: &NetSweepConfig) -> Result<NetSweepReport, ClusterError> {
    cfg.verifier.validate().map_err(ClusterError::AttPlane)?;
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let mut rows = Vec::new();

    for arm in ["partition", "island", "blackout"] {
        for resilient in [false, true] {
            let mut config = base_config(cfg);
            config.net = Some(net_for(cfg, cfg.windows(arm), resilient));
            if arm == "blackout" {
                config.attestation = Some(AttPlaneConfig {
                    degrade: if resilient {
                        FailMode::Open {
                            staleness_budget: cfg.staleness_budget,
                        }
                    } else {
                        FailMode::Closed
                    },
                    ..cfg.verifier
                });
                config.tcb_rollout = Some(cfg.rollout);
            }
            let report = ClusterService::new(catalog.clone(), config)?.run();
            rows.push(row_from(
                arm,
                if resilient { "resilient" } else { "naive" },
                &report,
            ));
        }
    }

    Ok(NetSweepReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(report: &NetSweepReport) -> Vec<(u64, u64, u64, u64)> {
        report
            .rows
            .iter()
            .map(|r| {
                (
                    r.completed as u64,
                    r.shed + r.timeouts + r.failed,
                    r.net_lost + r.net_timeouts + r.net_nacks,
                    r.suspicions + r.lease_expiries + r.stale_completions,
                )
            })
            .collect()
    }

    fn cell<'a>(report: &'a NetSweepReport, arm: &str, policy: &str) -> &'a NetRow {
        report
            .rows
            .iter()
            .find(|r| r.arm == arm && r.policy == policy)
            .unwrap()
    }

    #[test]
    fn sweep_conserves_and_is_deterministic() {
        let cfg = NetSweepConfig::quick();
        let a = net_sweep(&cfg).unwrap();
        let b = net_sweep(&cfg).unwrap();
        assert!(a.rows.iter().all(|r| r.conserved));
        assert_eq!(a.rows.len(), 6);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn resilient_beats_naive_in_every_arm() {
        let report = net_sweep(&NetSweepConfig::quick()).unwrap();
        for arm in ["partition", "island", "blackout"] {
            let naive = cell(&report, arm, "naive");
            let resilient = cell(&report, arm, "resilient");
            assert!(
                resilient.completed > naive.completed,
                "{arm}: resilient {} must beat naive {}",
                resilient.completed,
                naive.completed
            );
        }
    }

    #[test]
    fn partition_arm_detects_and_fences_the_cut_host() {
        let report = net_sweep(&NetSweepConfig::quick()).unwrap();
        let naive = cell(&report, "partition", "naive");
        let resilient = cell(&report, "partition", "resilient");
        // Without a detector the router keeps dispatching into the hole.
        assert!(naive.net_lost > 0, "the cut must lose naive dispatches");
        assert_eq!(naive.suspicions, 0);
        assert_eq!(naive.lease_expiries, 0);
        // The resilient plane suspects, parks, and routes around it.
        assert!(resilient.suspicions > 0, "the cut host must be suspected");
        assert!(
            resilient.suspicions_cleared > 0,
            "the heal must clear the suspicion"
        );
        assert!(resilient.lease_expiries > 0, "the cut host must park");
    }

    #[test]
    fn island_arm_fences_late_completions_exactly_once() {
        let report = net_sweep(&NetSweepConfig::quick()).unwrap();
        let resilient = cell(&report, "island", "resilient");
        assert!(resilient.conserved);
        // The failover sweep re-dispatches the island's stranded work;
        // whatever the island reports after the heal is epoch-fenced.
        assert!(
            resilient.failovers > 0 || resilient.net_nacks > 0,
            "stranded island work must move or settle as nacks"
        );
    }

    #[test]
    fn blackout_arm_fails_open_within_budget() {
        let report = net_sweep(&NetSweepConfig::quick()).unwrap();
        let naive = cell(&report, "blackout", "naive");
        let resilient = cell(&report, "blackout", "resilient");
        assert!(
            naive.unavailable_refusals > 0,
            "fail-closed must refuse launches during the blackout"
        );
        assert!(
            resilient.stale_serves > 0,
            "fail-open must serve stale cached verdicts"
        );
        assert_eq!(
            resilient.unavailable_refusals, 0,
            "a generous staleness budget covers the whole blackout"
        );
    }
}
