//! A seeded consistent-hash ring for template-affinity placement.
//!
//! Each host contributes `vnodes` virtual points on a 64-bit ring; a
//! template key hashes to a point and is owned by the first host point at or
//! after it (wrapping). Virtual nodes smooth the load: with enough of them,
//! every host owns a near-equal arc of the key space, and adding or removing
//! one host only remaps the keys on the arcs it gains or loses — every other
//! key keeps its owner. That minimal-remap property is exactly what §6.2
//! template reuse wants from placement: a membership change forces
//! re-measurement only for the classes whose owner actually changed.
//!
//! Point positions are a pure function of `(seed, host, replica)`, so two
//! rings built with the same seed agree on every owner regardless of
//! insertion order — placement is replayable across runs and across
//! processes.

use std::collections::BTreeSet;

use sevf_psp::TemplateKey;

/// splitmix64 finalizer: the ring's only source of dispersion.
fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ring position of virtual point `replica` of `host` under `seed`.
fn point(seed: u64, host: usize, replica: usize) -> u64 {
    mix64(mix64(seed ^ (host as u64).wrapping_mul(0xA24B_AED4_963E_E407)) ^ replica as u64)
}

/// Ring position of a template key under `seed`: the 48 measurement bytes
/// folded through the finalizer in 8-byte words.
fn key_point(seed: u64, key: &TemplateKey) -> u64 {
    let bytes = key.as_bytes();
    let mut acc = mix64(seed ^ 0x7E3B_1A5C_9D2F_4E61);
    for chunk in bytes.chunks_exact(8) {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        acc = mix64(acc ^ word);
    }
    acc
}

/// The consistent-hash ring: seeded, deterministic, minimal-remap.
///
/// # Example
///
/// ```
/// use sevf_cluster::ring::HashRing;
/// use sevf_psp::TemplateKey;
///
/// let mut ring = HashRing::new(7, 64);
/// ring.insert(0);
/// ring.insert(1);
/// let key = TemplateKey::from_measurement([42u8; 48]);
/// let owner = ring.owner(&key).unwrap();
/// assert!(owner < 2);
/// // Removing the other host never remaps this key.
/// ring.remove(1 - owner);
/// assert_eq!(ring.owner(&key), Some(owner));
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    /// Sorted `(position, host)` points; ties break toward the lower host id
    /// so the owner is insertion-order independent.
    points: Vec<(u64, usize)>,
    hosts: BTreeSet<usize>,
}

impl HashRing {
    /// An empty ring. `vnodes` is the virtual points each host contributes.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero (a host with no points owns nothing).
    pub fn new(seed: u64, vnodes: usize) -> Self {
        assert!(vnodes > 0, "a host needs at least one virtual node");
        HashRing {
            seed,
            vnodes,
            points: Vec::new(),
            hosts: BTreeSet::new(),
        }
    }

    /// Adds `host`'s virtual points. Returns `false` if it was already in.
    pub fn insert(&mut self, host: usize) -> bool {
        if !self.hosts.insert(host) {
            return false;
        }
        for replica in 0..self.vnodes {
            let p = (point(self.seed, host, replica), host);
            let idx = self.points.partition_point(|q| *q < p);
            self.points.insert(idx, p);
        }
        true
    }

    /// Removes `host`'s virtual points. Returns `false` if it was not in.
    pub fn remove(&mut self, host: usize) -> bool {
        if !self.hosts.remove(&host) {
            return false;
        }
        self.points.retain(|&(_, h)| h != host);
        true
    }

    /// Whether `host` is currently on the ring.
    pub fn contains(&self, host: usize) -> bool {
        self.hosts.contains(&host)
    }

    /// Hosts currently on the ring.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the ring has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The host owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &TemplateKey) -> Option<usize> {
        self.owner_of_point(key_point(self.seed, key))
    }

    /// The host owning raw ring position `h` (first point at or after it,
    /// wrapping to the lowest point).
    fn owner_of_point(&self, h: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, host) = self.points[idx % self.points.len()];
        Some(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> TemplateKey {
        let mut m = [0u8; 48];
        m[..8].copy_from_slice(&i.to_le_bytes());
        m[8] = 0xA5;
        TemplateKey::from_measurement(m)
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(1, 8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(&key(0)), None);
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut ring = HashRing::new(1, 8);
        assert!(ring.insert(3));
        assert!(!ring.insert(3));
        assert_eq!(ring.len(), 1);
        assert!(ring.contains(3));
        assert!(ring.remove(3));
        assert!(!ring.remove(3));
        assert!(ring.is_empty());
    }

    #[test]
    fn single_host_owns_everything() {
        let mut ring = HashRing::new(9, 4);
        ring.insert(5);
        for i in 0..100 {
            assert_eq!(ring.owner(&key(i)), Some(5));
        }
    }

    #[test]
    #[should_panic(expected = "virtual node")]
    fn zero_vnodes_panics() {
        let _ = HashRing::new(0, 0);
    }
}
