//! The cluster experiment: scale-out, placement, and an outage drill.
//!
//! One sweep, three arms, all over the same measured catalog:
//!
//! * **scaling** — offered load and request count grow linearly with the
//!   host count for each serving tier. Template and warm-pool serving
//!   scale out near-linearly; cold SEV serving stays pinned at each host's
//!   PSP ceiling (Fig. 12 per machine), so adding hosts adds goodput but
//!   never lifts the per-host number.
//! * **placement** — same hosts, same load, same template tier, three
//!   routing policies. Template-affinity placement measures each class's
//!   §6.2 template on one owner host instead of every host, so it wins the
//!   cluster cache hit-rate (and the tail that fills would otherwise pay).
//! * **outage** — a mid-stream whole-host outage under affinity placement.
//!   The naive cluster permanently fails everything the dead host was
//!   holding; the resilient cluster retries, fails over to surviving
//!   hosts (re-measuring the dead host's templates there — §6.2 across
//!   machines), rebalances the warm budget, and holds goodput.
//!
//! Rows carry the conservation invariant (`completed + shed +
//! breaker_sheds + timeouts + failed == issued`) so the table can assert
//! it. Identical configs produce byte-identical reports.

use sevf_fleet::admission::AdmissionConfig;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_fleet::workload::RequestMix;
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::service::{ClusterConfig, ClusterService, HostOutage};
use crate::ClusterError;

const MB: u64 = 1024 * 1024;

/// Knobs of one cluster sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweepConfig {
    /// Seed for catalog machines, arrivals, placement, and fault domains.
    pub seed: u64,
    /// Request classes to serve (shared catalog for all hosts).
    pub classes: Vec<ClassSpec>,
    /// Mix over those classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Host counts of the scaling arm.
    pub host_counts: Vec<usize>,
    /// Offered load *per host* in the scaling arm (total scales with the
    /// host count).
    pub per_host_rps: f64,
    /// Requests *per host* in the scaling arm.
    pub requests_per_host: usize,
    /// Host count of the placement and outage arms.
    pub placement_hosts: usize,
    /// Aggregate offered load of the placement and outage arms.
    pub placement_rps: f64,
    /// Total requests of the placement and outage arms.
    pub placement_requests: usize,
    /// Per-host admission knobs.
    pub admission: AdmissionConfig,
    /// Warm-pool target per class per host.
    pub warm_target: usize,
    /// Virtual nodes per host on the affinity ring.
    pub vnodes: usize,
    /// Recovery policy of the resilient outage arms.
    pub recovery: RecoveryConfig,
}

impl ClusterSweepConfig {
    /// The headline cluster sweep over the paper mix.
    pub fn paper_cluster() -> Self {
        ClusterSweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            mix: Some(RequestMix::weighted(vec![
                (0, 5),
                (1, 3),
                (2, 1),
                (3, 1),
                (4, 2),
            ])),
            host_counts: vec![1, 2, 4, 8],
            // Above the ~39 req/s cold PSP ceiling: cold serving saturates
            // and pins there per host, template/warm track the offered rate.
            per_host_rps: 60.0,
            requests_per_host: 150,
            placement_hosts: 4,
            placement_rps: 100.0,
            placement_requests: 400,
            admission: AdmissionConfig::default(),
            warm_target: 8,
            vnodes: 64,
            recovery: RecoveryConfig::resilient(0x5EF0),
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick` example).
    pub fn quick() -> Self {
        ClusterSweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::quick_test_classes(),
            mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
            host_counts: vec![1, 2, 4],
            per_host_rps: 60.0,
            requests_per_host: 100,
            placement_hosts: 3,
            placement_rps: 150.0,
            placement_requests: 300,
            admission: AdmissionConfig {
                queue_bound: 128,
                max_inflight: 96,
                ..AdmissionConfig::default()
            },
            warm_target: 16,
            vnodes: 32,
            recovery: RecoveryConfig::resilient(0x5EF0),
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// Which arm produced the row ("scaling", "placement", "outage").
    pub arm: &'static str,
    /// Cell label: the tier (scaling), policy (placement), or drill arm.
    pub label: String,
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Serving tier.
    pub tier: ServingTier,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Aggregate offered load (req/s).
    pub offered_rps: f64,
    /// Requests served to completion.
    pub completed: usize,
    /// Completed requests per second of makespan, cluster-wide.
    pub goodput_rps: f64,
    /// Goodput divided by the host count (the scale-out signal).
    pub per_host_goodput: f64,
    /// Requests shed (admission queues + unroutable arrivals).
    pub shed: u64,
    /// Of the sheds, arrivals that found no live host.
    pub unroutable: u64,
    /// Requests shed past the bottom of the degradation ladder.
    pub breaker_sheds: u64,
    /// Requests shed on deadline.
    pub timeouts: u64,
    /// Requests permanently failed after exhausting retries.
    pub failed: u64,
    /// Retry launches dispatched.
    pub retries: u64,
    /// Requests displaced off a dead or departing host and re-routed.
    pub failovers: u64,
    /// Warm-budget rebalance passes.
    pub rebalances: u64,
    /// Injected-fault occurrences across all hosts.
    pub faults: u64,
    /// Cluster template-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Template fills (measurements) across all hosts.
    pub cache_misses: u64,
    /// Per-host PSP utilization spread (max − min).
    pub psp_skew: f64,
    /// Cluster-wide median latency (ms).
    pub p50_ms: f64,
    /// Cluster-wide 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Whether the conservation invariant held for the cell.
    pub conserved: bool,
}

/// The sweep's result.
#[derive(Debug, Clone)]
pub struct ClusterSweepReport {
    /// Mix-weighted cold-launch PSP ceiling of one host (req/s): the
    /// Fig. 12 bound the scaling arm's cold per-host goodput cannot exceed.
    pub cold_ceiling_rps: f64,
    /// One row per cell: scaling, then placement, then outage.
    pub rows: Vec<ClusterRow>,
}

/// Mix-weighted mean cold PSP work per request, inverted to req/s.
fn cold_ceiling(catalog: &Catalog, mix: &RequestMix) -> f64 {
    let mut weighted = 0.0;
    let mut total = 0.0;
    for &(class, weight) in mix.entries() {
        weighted += catalog.class(class).cold.psp_work().as_secs_f64() * weight as f64;
        total += weight as f64;
    }
    let mean = weighted / total;
    if mean > 0.0 {
        1.0 / mean
    } else {
        f64::INFINITY
    }
}

fn row_from(
    arm: &'static str,
    label: String,
    report: &crate::service::ClusterReport,
) -> ClusterRow {
    let m = &report.metrics;
    ClusterRow {
        arm,
        label,
        hosts: report.hosts,
        tier: report.tier,
        placement: report.placement,
        offered_rps: report.offered_rps.unwrap_or(0.0),
        completed: m.completed,
        goodput_rps: m.goodput_rps(),
        per_host_goodput: m.goodput_rps() / report.hosts as f64,
        shed: m.shed,
        unroutable: m.unroutable,
        breaker_sheds: m.breaker_sheds,
        timeouts: m.timeouts,
        failed: m.failed,
        retries: m.retries,
        failovers: m.failovers,
        rebalances: m.rebalances,
        faults: m.faults,
        cache_hit_rate: m.cache_hit_rate(),
        cache_misses: m.cache_misses(),
        psp_skew: m.psp_skew(),
        p50_ms: m.p50_ms(),
        p99_ms: m.p99_ms(),
        conserved: m.conserved(),
    }
}

/// Runs the three-arm sweep over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`ClusterError::Fleet`]) and
/// configuration errors from the cluster builder.
pub fn cluster_sweep(cfg: &ClusterSweepConfig) -> Result<ClusterSweepReport, ClusterError> {
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let mix = cfg
        .mix
        .clone()
        .unwrap_or_else(|| RequestMix::uniform(catalog.len()));
    let mut rows = Vec::new();

    // Arm 1: scale-out. Load and requests grow with the host count, so a
    // tier that scales keeps per-host goodput flat at the offered rate.
    for &hosts in &cfg.host_counts {
        for tier in [
            ServingTier::Cold,
            ServingTier::Template,
            ServingTier::WarmPool,
        ] {
            let config = ClusterConfig {
                mix: cfg.mix.clone(),
                admission: cfg.admission,
                warm_target: cfg.warm_target,
                placement: PlacementPolicy::JsqPsp,
                vnodes: cfg.vnodes,
                ..ClusterConfig::open_loop(
                    hosts,
                    tier,
                    cfg.per_host_rps * hosts as f64,
                    cfg.requests_per_host * hosts,
                )
            };
            let config = ClusterConfig {
                seed: cfg.seed,
                ..config
            };
            let report = ClusterService::new(catalog.clone(), config)?.run();
            rows.push(row_from("scaling", tier.name().to_string(), &report));
        }
    }

    // Arm 2: placement. Same cluster, same stream, three routers.
    for placement in [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::JsqPsp,
        PlacementPolicy::TemplateAffinity,
    ] {
        let config = ClusterConfig {
            mix: cfg.mix.clone(),
            admission: cfg.admission,
            warm_target: cfg.warm_target,
            placement,
            vnodes: cfg.vnodes,
            seed: cfg.seed,
            ..ClusterConfig::open_loop(
                cfg.placement_hosts,
                ServingTier::Template,
                cfg.placement_rps,
                cfg.placement_requests,
            )
        };
        let report = ClusterService::new(catalog.clone(), config)?.run();
        rows.push(row_from("placement", placement.name().to_string(), &report));
    }

    // Arm 3: outage drill. The host owning the heaviest class dies a third
    // of the way into the nominal run and comes back at two thirds;
    // affinity placement makes the re-measurement story visible (the dead
    // host's classes get a new ring owner that must fill their templates).
    // The ring is a pure function of (seed, vnodes), so the victim the
    // router would route to is computable up front.
    let mut ring = crate::ring::HashRing::new(cfg.seed, cfg.vnodes);
    for host in 0..cfg.placement_hosts {
        ring.insert(host);
    }
    let heavy = mix
        .entries()
        .iter()
        .max_by_key(|&&(class, weight)| (weight, std::cmp::Reverse(class)))
        .map(|&(class, _)| class)
        .unwrap_or(0);
    let victim = ring.owner(&catalog.class(heavy).key).unwrap_or(0);
    let nominal = cfg.placement_requests as f64 / cfg.placement_rps;
    let outage = HostOutage {
        host: victim,
        start: Nanos::from_nanos((nominal / 3.0 * 1e9) as u64),
        end: Nanos::from_nanos((nominal * 2.0 / 3.0 * 1e9) as u64),
    };
    let drill_arms: [(&'static str, ServingTier, RecoveryConfig); 3] = [
        ("naive", ServingTier::Template, RecoveryConfig::none()),
        ("resilient", ServingTier::Template, cfg.recovery),
        ("resilient-warm", ServingTier::WarmPool, cfg.recovery),
    ];
    for (label, tier, recovery) in drill_arms {
        let config = ClusterConfig {
            mix: cfg.mix.clone(),
            admission: cfg.admission,
            warm_target: cfg.warm_target,
            placement: PlacementPolicy::TemplateAffinity,
            vnodes: cfg.vnodes,
            seed: cfg.seed,
            outages: vec![outage],
            recovery,
            ..ClusterConfig::open_loop(
                cfg.placement_hosts,
                tier,
                cfg.placement_rps,
                cfg.placement_requests,
            )
        };
        let report = ClusterService::new(catalog.clone(), config)?.run();
        rows.push(row_from("outage", label.to_string(), &report));
    }

    Ok(ClusterSweepReport {
        cold_ceiling_rps: cold_ceiling(&catalog, &mix),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_rows_conserve_and_cover_all_arms() {
        let report = cluster_sweep(&ClusterSweepConfig::quick()).unwrap();
        let cfg = ClusterSweepConfig::quick();
        let expected = cfg.host_counts.len() * 3 + 3 + 3;
        assert_eq!(report.rows.len(), expected);
        for row in &report.rows {
            assert!(
                row.conserved,
                "conservation broke in {}/{}",
                row.arm, row.label
            );
        }
        assert!(report.cold_ceiling_rps > 0.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = cluster_sweep(&ClusterSweepConfig::quick()).unwrap();
        let b = cluster_sweep(&ClusterSweepConfig::quick()).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.p99_ms, y.p99_ms);
            assert_eq!(x.cache_misses, y.cache_misses);
            assert_eq!(x.failovers, y.failovers);
        }
    }

    #[test]
    fn outage_drill_fails_over_and_remeasures() {
        let report = cluster_sweep(&ClusterSweepConfig::quick()).unwrap();
        let resilient = report
            .rows
            .iter()
            .find(|r| r.arm == "outage" && r.label == "resilient")
            .unwrap();
        // The drill kills a host mid-stream: its work fails over and the
        // survivors re-measure its classes (more fills than classes).
        assert!(resilient.failovers > 0, "no failovers in the drill");
        assert!(
            resilient.cache_misses > ClusterSweepConfig::quick().classes.len() as u64,
            "no re-measurement after the outage"
        );
    }
}
