//! The cluster router: pluggable placement over the live host set.
//!
//! Three policies, three cost models:
//!
//! * [`PlacementPolicy::RoundRobin`] — spread arrivals evenly regardless of
//!   state. Fair, oblivious, and the baseline every smarter policy must
//!   beat.
//! * [`PlacementPolicy::JsqPsp`] — join-shortest-PSP-backlog with
//!   power-of-two-choices sampling: probe two live hosts (seeded draws) and
//!   send the request to the one with less expected serialized PSP work
//!   outstanding. Since the PSP is each host's bottleneck (Fig. 12), two
//!   choices on the bottleneck queue captures most of the benefit of full
//!   JSQ at O(1) probing cost.
//! * [`PlacementPolicy::TemplateAffinity`] — route by the request's template
//!   key through the seeded consistent-hash [`HashRing`]: every class has
//!   one owner host, so its §6.2 template is measured once cluster-wide
//!   instead of once per host, and a membership change re-measures only the
//!   classes whose arc moved.
//! * [`PlacementPolicy::WarmReady`] — pool-aware two-choice JSQ for
//!   elastic fleets. SEV warm slots are pinned to their PSP, so a host
//!   with a ready slot for the class serves in microseconds while a host
//!   without one makes the request wait out a template launch; plain JSQ
//!   is blind to that and dogpiles freshly joined hosts whose pools are
//!   still shallow. Hosts holding a ready slot for the class win outright;
//!   ties fall back to the two-choice PSP-backlog probe.

use sevf_psp::TemplateKey;
use sevf_sim::rng::XorShift64;
use sevf_sim::Nanos;

use crate::ring::HashRing;

/// How the router picks a host for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Rotate over the live hosts.
    #[default]
    RoundRobin,
    /// Join-shortest-PSP-backlog via power-of-two-choices sampling.
    JsqPsp,
    /// Consistent-hash the template key to its owner host.
    TemplateAffinity,
    /// Prefer hosts with a ready warm slot for the class; two-choice
    /// PSP-backlog JSQ among the preferred (or among everyone when no pool
    /// holds the class).
    WarmReady,
}

impl PlacementPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::JsqPsp => "jsq-psp",
            PlacementPolicy::TemplateAffinity => "affinity",
            PlacementPolicy::WarmReady => "warm-ready",
        }
    }
}

/// The placement router. Membership must be kept in sync by the control
/// plane: [`Router::host_left`] on outage/departure, [`Router::host_joined`]
/// on recovery/join — the ring only ever holds routable hosts.
#[derive(Debug)]
pub struct Router {
    policy: PlacementPolicy,
    ring: HashRing,
    cursor: usize,
    rng: XorShift64,
}

impl Router {
    /// A router over hosts `0..hosts`, all initially live. `vnodes` is the
    /// ring's virtual-node count per host (affinity policy only).
    pub fn new(policy: PlacementPolicy, seed: u64, hosts: usize, vnodes: usize) -> Self {
        let mut ring = HashRing::new(seed, vnodes);
        for host in 0..hosts {
            ring.insert(host);
        }
        Router {
            policy,
            ring,
            cursor: 0,
            rng: XorShift64::new(seed ^ 0xC1_05_7E_12),
        }
    }

    /// The policy the router places with.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// A host became routable (recovered from an outage, or joined).
    pub fn host_joined(&mut self, host: usize) {
        self.ring.insert(host);
    }

    /// A host stopped being routable (outage or departure).
    pub fn host_left(&mut self, host: usize) {
        self.ring.remove(host);
    }

    /// Picks a host for a request of template `key` among the live `hosts`
    /// (sorted, deduplicated). `psp_backlog` reports a host's outstanding
    /// expected PSP work; `warm_ready` reports whether a host holds a
    /// ready warm slot for the request's class. Returns `None` when no
    /// host is live.
    ///
    /// Only [`PlacementPolicy::JsqPsp`] and [`PlacementPolicy::WarmReady`]
    /// consume randomness, and only when they have at least two candidates
    /// to sample — the other policies leave the router's seeded stream
    /// untouched, so runs stay replayable across policies.
    pub fn place(
        &mut self,
        key: &TemplateKey,
        hosts: &[usize],
        psp_backlog: impl Fn(usize) -> Nanos,
        warm_ready: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        if hosts.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::RoundRobin => {
                let host = hosts[self.cursor % hosts.len()];
                self.cursor = self.cursor.wrapping_add(1);
                Some(host)
            }
            PlacementPolicy::JsqPsp => {
                if hosts.len() == 1 {
                    return Some(hosts[0]);
                }
                let a = hosts[self.rng.next_below(hosts.len() as u64) as usize];
                let b = hosts[self.rng.next_below(hosts.len() as u64) as usize];
                // Ties (including a == b) break toward the lower host id.
                Some(if (psp_backlog(b), b) < (psp_backlog(a), a) {
                    b
                } else {
                    a
                })
            }
            PlacementPolicy::TemplateAffinity => self.ring.owner(key),
            PlacementPolicy::WarmReady => {
                let warm: Vec<usize> = hosts.iter().copied().filter(|&h| warm_ready(h)).collect();
                let pool: &[usize] = if warm.is_empty() { hosts } else { &warm };
                if pool.len() == 1 {
                    return Some(pool[0]);
                }
                let a = pool[self.rng.next_below(pool.len() as u64) as usize];
                let b = pool[self.rng.next_below(pool.len() as u64) as usize];
                Some(if (psp_backlog(b), b) < (psp_backlog(a), a) {
                    b
                } else {
                    a
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> TemplateKey {
        let mut m = [0u8; 48];
        m[..8].copy_from_slice(&i.to_le_bytes());
        TemplateKey::from_measurement(m)
    }

    #[test]
    fn round_robin_rotates_over_live_hosts() {
        let mut r = Router::new(PlacementPolicy::RoundRobin, 1, 3, 8);
        let hosts = [0, 1, 2];
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                r.place(&key(0), &hosts, |_| Nanos::ZERO, |_| false)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_prefers_the_shorter_backlog() {
        let mut r = Router::new(PlacementPolicy::JsqPsp, 1, 2, 8);
        let hosts = [0, 1];
        // Host 1 always has less outstanding PSP work; every two-choice
        // probe that sees both hosts (or either alone) lands on a host, and
        // host 1 must win at least the probes that compare the two.
        let mut ones = 0;
        for _ in 0..200 {
            let h = r
                .place(
                    &key(0),
                    &hosts,
                    |h| Nanos::from_millis(if h == 0 { 50 } else { 1 }),
                    |_| false,
                )
                .unwrap();
            if h == 1 {
                ones += 1;
            }
        }
        assert!(ones > 100, "shorter backlog won only {ones}/200");
    }

    #[test]
    fn affinity_is_sticky_and_survives_unrelated_leave() {
        let mut r = Router::new(PlacementPolicy::TemplateAffinity, 7, 4, 64);
        let hosts = [0, 1, 2, 3];
        let owner = r
            .place(&key(9), &hosts, |_| Nanos::ZERO, |_| false)
            .unwrap();
        for _ in 0..5 {
            assert_eq!(
                r.place(&key(9), &hosts, |_| Nanos::ZERO, |_| false),
                Some(owner)
            );
        }
        let other = (owner + 1) % 4;
        r.host_left(other);
        let live: Vec<usize> = hosts.iter().copied().filter(|&h| h != other).collect();
        assert_eq!(
            r.place(&key(9), &live, |_| Nanos::ZERO, |_| false),
            Some(owner)
        );
    }

    #[test]
    fn warm_ready_prefers_pooled_hosts_and_falls_back_to_jsq() {
        let mut r = Router::new(PlacementPolicy::WarmReady, 1, 3, 8);
        let hosts = [0, 1, 2];
        // Only host 2 holds a ready slot: it must win every probe even
        // with the worst PSP backlog.
        for _ in 0..20 {
            let h = r
                .place(
                    &key(0),
                    &hosts,
                    |h| Nanos::from_millis(h as u64 * 50),
                    |h| h == 2,
                )
                .unwrap();
            assert_eq!(h, 2);
        }
        // Nobody warm: degrades to the two-choice backlog probe, so the
        // short-backlog host must win every probe that sees both hosts.
        let pair = [0, 1];
        let mut zeros = 0;
        for _ in 0..200 {
            let h = r
                .place(
                    &key(0),
                    &pair,
                    |h| Nanos::from_millis(1 + h as u64 * 50),
                    |_| false,
                )
                .unwrap();
            if h == 0 {
                zeros += 1;
            }
        }
        assert!(zeros > 100, "short backlog won only {zeros}/200");
    }

    #[test]
    fn no_live_hosts_places_nowhere() {
        let mut r = Router::new(PlacementPolicy::RoundRobin, 1, 2, 8);
        assert_eq!(r.place(&key(0), &[], |_| Nanos::ZERO, |_| false), None);
    }
}
