//! The autoscaling experiment: one flash crowd, three provisioning arms.
//!
//! The workload is the ramp the paper's fast-start machinery exists to
//! absorb: a quiet base rate, then a flash crowd — a fast ramp to many
//! times base decaying exponentially back down. Every arm serves the
//! *same*
//! arrival instants (the curve draws from the shared seed stream before
//! anything else); only who pays for capacity changes:
//!
//! * **static** — `max_hosts` provisioned for the whole run, the
//!   overprovisioned ceiling. The tail holds trivially, and the
//!   host-seconds bill is the worst possible.
//! * **reactive** — starts at `min_hosts`, scales out when PSP backlog
//!   crosses the threshold. By the time the queue hurts, the ramp has
//!   already arrived: the crowd eats the scale-out latency as tail.
//! * **predictive** — starts at `min_hosts`, forecasts the windowed rate
//!   trend and pre-provisions hosts (and re-spreads warm-pool targets)
//!   ahead of the ramp. Warm boots are ~free while cold SEV launches pin
//!   at the per-host ceiling, so arriving *before* the crowd is the whole
//!   game.
//!
//! The sweep emits the cost-vs-p99-vs-shed frontier (`figures --table
//! autoscale`): the headline claim is the predictive arm holding p99 under
//! the flash-crowd SLO at a lower host-seconds cost than static-max
//! provisioning. Conservation (`completed + shed + breaker_sheds +
//! timeouts + failed + rejected == issued`) must hold in every cell, and
//! identical configs replay byte-identically (the CI replay gate diffs two
//! `--quick --json` runs of `examples/autoscale_drill.rs`).

use sevf_fleet::admission::AdmissionConfig;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_scale::{AutoscalerConfig, FlashCrowd, ScalePolicy, Workload, WorkloadCurve};
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::service::{ClusterConfig, ClusterReport, ClusterService};
use crate::ClusterError;

const MB: u64 = 1024 * 1024;

/// Knobs of one autoscale sweep.
#[derive(Debug, Clone)]
pub struct ScaleSweepConfig {
    /// Seed for catalog machines, arrivals, and placement.
    pub seed: u64,
    /// Request classes to serve (shared catalog for all arms).
    pub classes: Vec<ClassSpec>,
    /// Floor of the elastic arms (their starting host count).
    pub min_hosts: usize,
    /// Ceiling of the elastic arms, and the static arm's fixed size.
    pub max_hosts: usize,
    /// Requests per arm.
    pub requests: usize,
    /// The flash-crowd shape every arm serves.
    pub crowd: FlashCrowd,
    /// Per-host admission knobs.
    pub admission: AdmissionConfig,
    /// Recovery policy shared by all arms.
    pub recovery: RecoveryConfig,
    /// Cluster-wide warm slots per class, spread over whoever is live.
    pub warm_budget: usize,
    /// Autoscaler control-loop period.
    pub tick: Nanos,
    /// Minimum spacing between membership changes.
    pub cooldown: Nanos,
    /// Per-host sustainable rate the scaler provisions against (req/s).
    pub host_rps: f64,
    /// Reactive scale-out threshold (per-host backlog).
    pub backlog_out: f64,
    /// Reactive scale-in threshold (per-host backlog).
    pub backlog_in: f64,
    /// Predictive forecast window (ticks).
    pub window: usize,
    /// Predictive forecast lead.
    pub lead: Nanos,
    /// The p99 target (ms) the frontier scores arms against.
    pub slo_ms: f64,
}

impl ScaleSweepConfig {
    /// The headline sweep over the paper mix.
    pub fn paper_scale() -> Self {
        ScaleSweepConfig {
            seed: 0x5CA1E,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            min_hosts: 2,
            max_hosts: 8,
            requests: 2000,
            crowd: FlashCrowd {
                base: 60.0,
                peak: 800.0,
                at: Nanos::from_millis(2500),
                ramp: Nanos::from_millis(1500),
                decay: Nanos::from_millis(2000),
            },
            admission: AdmissionConfig {
                queue_bound: 256,
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x5CA1E),
            warm_budget: 48,
            tick: Nanos::from_millis(150),
            cooldown: Nanos::from_millis(300),
            host_rps: 90.0,
            backlog_out: 3.0,
            backlog_in: 0.5,
            window: 5,
            lead: Nanos::from_millis(1200),
            slo_ms: 500.0,
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick`).
    pub fn quick() -> Self {
        ScaleSweepConfig {
            seed: 0x5CA1E,
            classes: ClassSpec::quick_test_classes(),
            min_hosts: 2,
            max_hosts: 6,
            requests: 700,
            crowd: FlashCrowd {
                base: 50.0,
                peak: 420.0,
                at: Nanos::from_secs(1),
                ramp: Nanos::from_millis(700),
                decay: Nanos::from_millis(1500),
            },
            admission: AdmissionConfig {
                queue_bound: 192,
                max_inflight: 2,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x5CA1E),
            warm_budget: 36,
            tick: Nanos::from_millis(100),
            cooldown: Nanos::from_millis(200),
            host_rps: 70.0,
            backlog_out: 3.0,
            backlog_in: 0.5,
            window: 4,
            lead: Nanos::from_millis(600),
            slo_ms: 600.0,
        }
    }

    /// The autoscaler the elastic arms run, differing only in policy.
    pub fn scaler(&self, policy: ScalePolicy) -> AutoscalerConfig {
        AutoscalerConfig {
            min_hosts: self.min_hosts,
            max_hosts: self.max_hosts,
            policy,
            tick: self.tick,
            cooldown: self.cooldown,
            host_rps: self.host_rps,
            backlog_out: self.backlog_out,
            backlog_in: self.backlog_in,
            warm_budget: self.warm_budget,
        }
    }
}

/// One arm of the cost-vs-p99-vs-shed frontier.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Arm name ("static", "reactive", "predictive").
    pub arm: &'static str,
    /// Hosts the arm started with.
    pub hosts_start: usize,
    /// Requests offered.
    pub issued: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests that left without completing (shed + breaker + timeout +
    /// failed).
    pub lost: u64,
    /// Cluster-wide median latency (ms).
    pub p50_ms: f64,
    /// Cluster-wide 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Completed requests per second of makespan.
    pub goodput_rps: f64,
    /// Host-seconds of availability — the provisioning cost.
    pub host_seconds: f64,
    /// Control ticks the scaler processed (0 for static).
    pub ticks: u64,
    /// Scale-out decisions emitted.
    pub scale_outs: u64,
    /// Scale-in decisions emitted.
    pub scale_ins: u64,
    /// Pre-warm prescriptions emitted.
    pub prewarms: u64,
    /// Smallest live-host count observed at a control tick.
    pub min_live: usize,
    /// Largest live-host count observed at a control tick.
    pub max_live: usize,
    /// The p99 target (ms) scored against.
    pub slo_ms: f64,
    /// Whether p99 held the target (meaningful with completions).
    pub slo_met: bool,
    /// Whether the conservation invariant held.
    pub conserved: bool,
}

/// The sweep's result: one [`ScaleRow`] per arm, plus the raw reports for
/// callers that want the audit logs.
#[derive(Debug, Clone)]
pub struct ScaleSweepReport {
    /// Arm rows, in static/reactive/predictive order.
    pub rows: Vec<ScaleRow>,
    /// The full cluster reports backing the rows, in the same order (the
    /// invariant battery replays the autoscale audit logs from these).
    pub reports: Vec<ClusterReport>,
}

impl ScaleSweepReport {
    /// The row for `arm`, if present.
    pub fn arm(&self, arm: &str) -> Option<&ScaleRow> {
        self.rows.iter().find(|r| r.arm == arm)
    }
}

fn row(arm: &'static str, hosts_start: usize, slo_ms: f64, report: &ClusterReport) -> ScaleRow {
    let m = &report.metrics;
    let auto = report.autoscale.as_ref();
    ScaleRow {
        arm,
        hosts_start,
        issued: m.issued,
        completed: m.completed,
        lost: m.lost(),
        p50_ms: m.p50_ms(),
        p99_ms: m.p99_ms(),
        goodput_rps: m.goodput_rps(),
        host_seconds: m.host_seconds,
        ticks: auto.map_or(0, |a| a.ticks),
        scale_outs: auto.map_or(0, |a| a.scale_outs),
        scale_ins: auto.map_or(0, |a| a.scale_ins),
        prewarms: auto.map_or(0, |a| a.prewarms),
        min_live: auto.map_or(hosts_start, |a| a.min_live),
        max_live: auto.map_or(hosts_start, |a| a.max_live),
        slo_ms,
        slo_met: m.completed > 0 && m.p99_ms() <= slo_ms,
        conserved: m.conserved(),
    }
}

/// Runs the three-arm autoscale sweep over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`ClusterError::Fleet`]) and
/// invalid curve/scaler knobs ([`ClusterError::Scale`]).
pub fn scale_sweep(cfg: &ScaleSweepConfig) -> Result<ScaleSweepReport, ClusterError> {
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let workload = Workload::FlashCrowd(cfg.crowd);
    workload.validate()?;

    let arms: [(&'static str, usize, Option<AutoscalerConfig>); 3] = [
        ("static", cfg.max_hosts, None),
        (
            "reactive",
            cfg.min_hosts,
            Some(cfg.scaler(ScalePolicy::Reactive)),
        ),
        (
            "predictive",
            cfg.min_hosts,
            Some(cfg.scaler(ScalePolicy::Predictive {
                window: cfg.window,
                lead: cfg.lead,
            })),
        ),
    ];

    let mut report = ScaleSweepReport {
        rows: Vec::new(),
        reports: Vec::new(),
    };
    for (arm, hosts, autoscaler) in arms {
        // Every arm spreads the same cluster-wide warm budget over its
        // starting hosts, so no arm begins with an unfair slot advantage.
        let config = ClusterConfig {
            seed: cfg.seed,
            admission: cfg.admission,
            recovery: cfg.recovery,
            warm_target: cfg.warm_budget.div_ceil(hosts),
            placement: PlacementPolicy::WarmReady,
            workload: Some(workload),
            autoscaler,
            ..ClusterConfig::open_loop(
                hosts,
                ServingTier::WarmPool,
                workload.peak_rate(),
                cfg.requests,
            )
        };
        let run = ClusterService::new(catalog.clone(), config)?.run();
        report.rows.push(row(arm, hosts, cfg.slo_ms, &run));
        report.reports.push(run);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(report: &ScaleSweepReport) -> Vec<(usize, u64, u64, u64, String)> {
        report
            .rows
            .iter()
            .map(|r| {
                (
                    r.completed,
                    r.lost,
                    r.scale_outs,
                    r.scale_ins,
                    format!("{:.3}/{:.3}/{:.3}", r.p50_ms, r.p99_ms, r.host_seconds),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_conserves_every_arm_and_replays() {
        let cfg = ScaleSweepConfig::quick();
        let a = scale_sweep(&cfg).unwrap();
        let b = scale_sweep(&cfg).unwrap();
        assert_eq!(a.rows.len(), 3);
        assert!(a.rows.iter().all(|r| r.conserved), "{:#?}", a.rows);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn predictive_holds_the_slo_cheaper_than_static_max() {
        let report = scale_sweep(&ScaleSweepConfig::quick()).unwrap();
        let fixed = report.arm("static").unwrap();
        let predictive = report.arm("predictive").unwrap();
        assert!(
            fixed.slo_met,
            "the overprovisioned ceiling must hold the SLO: p99 {:.1} ms",
            fixed.p99_ms
        );
        assert!(
            predictive.slo_met,
            "predictive must hold p99 under {} ms through the ramp, got {:.1} ms",
            predictive.slo_ms, predictive.p99_ms
        );
        assert!(
            predictive.host_seconds < fixed.host_seconds,
            "predictive host-seconds {:.2} must undercut static {:.2}",
            predictive.host_seconds,
            fixed.host_seconds
        );
    }

    #[test]
    fn elastic_arms_actually_scale_and_stay_in_bounds() {
        let cfg = ScaleSweepConfig::quick();
        let report = scale_sweep(&cfg).unwrap();
        for arm in ["reactive", "predictive"] {
            let r = report.arm(arm).unwrap();
            assert!(r.scale_outs > 0, "{arm}: the crowd must force a scale-out");
            assert!(r.ticks > 0);
            assert!(
                r.min_live >= cfg.min_hosts && r.max_live <= cfg.max_hosts,
                "{arm}: live hosts [{}, {}] escaped [{}, {}]",
                r.min_live,
                r.max_live,
                cfg.min_hosts,
                cfg.max_hosts
            );
        }
        let fixed = report.arm("static").unwrap();
        assert_eq!(fixed.scale_outs + fixed.scale_ins + fixed.ticks, 0);
    }

    #[test]
    fn predictive_scales_out_no_later_than_reactive() {
        // The predictive arm's whole advantage is lead time: its first
        // scale-out must land on or before the reactive arm's.
        let report = scale_sweep(&ScaleSweepConfig::quick()).unwrap();
        let first_out = |arm: &str| {
            let idx = report.rows.iter().position(|r| r.arm == arm).unwrap();
            report.reports[idx]
                .autoscale
                .as_ref()
                .unwrap()
                .events
                .iter()
                .find_map(|e| match e {
                    crate::service::ScaleEvent::Out { at, added, .. } if *added > 0 => Some(*at),
                    _ => None,
                })
        };
        let reactive = first_out("reactive").expect("reactive must scale out");
        let predictive = first_out("predictive").expect("predictive must scale out");
        assert!(
            predictive <= reactive,
            "predictive first scale-out at {predictive} must not trail reactive at {reactive}"
        );
    }
}
