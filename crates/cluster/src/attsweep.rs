//! The attestation-plane experiment: verification modes under load, a
//! re-attestation storm, and a key-compromise revocation drill.
//!
//! One catalog, three arms:
//!
//! * **load** — the same cluster and stream under naive per-launch
//!   verification, cached verification, and cached + batched
//!   verification (plus a no-attestation baseline). The verifier is a
//!   single shared service: naive verification pays the full KDS fetch +
//!   context setup + signature check per dispatch, so its ceiling sits
//!   far below the cluster's serving capacity — past it, the verifier
//!   queue stretches every launch and p99 collapses (or the deadline
//!   sheds the stream). Caching removes the fetch from the steady state;
//!   batching amortizes the setup across concurrent launches.
//! * **storm** — a staggered TCB/firmware rollout re-measures every
//!   host mid-stream: cached certs stop matching (the key includes the
//!   TCB version) and template caches re-measure, so every arm re-pays
//!   its miss path at once. Batching absorbs the wave best.
//! * **drill** — one host's chip key is distrusted mid-stream. Its
//!   templates die with the key (§6.2), its in-flight and queued guests
//!   fail over, re-launch, and re-attest on the surviving hosts, and the
//!   conservation invariant must hold throughout.
//!
//! Identical configs produce byte-identical reports (the CI replay gate
//! diffs two `--quick --json` runs of `examples/attestation_storm.rs`).

use sevf_attplane::{AttPlaneConfig, VerifyMode};
use sevf_fleet::admission::AdmissionConfig;
use sevf_fleet::blueprint::{Catalog, ClassSpec};
use sevf_fleet::recovery::RecoveryConfig;
use sevf_fleet::service::ServingTier;
use sevf_fleet::workload::RequestMix;
use sevf_sim::Nanos;

use crate::placement::PlacementPolicy;
use crate::service::{ClusterConfig, ClusterService, RevocationDrill, TcbRollout};
use crate::ClusterError;

const MB: u64 = 1024 * 1024;

/// Knobs of one attestation sweep.
#[derive(Debug, Clone)]
pub struct AttSweepConfig {
    /// Seed for catalog machines, arrivals, placement, and chips.
    pub seed: u64,
    /// Request classes to serve (shared catalog for all hosts).
    pub classes: Vec<ClassSpec>,
    /// Mix over those classes; `None` = uniform.
    pub mix: Option<RequestMix>,
    /// Hosts in every arm.
    pub hosts: usize,
    /// Aggregate offered loads of the load arm.
    pub loads_rps: Vec<f64>,
    /// Requests per load-arm cell.
    pub requests: usize,
    /// Per-host admission knobs.
    pub admission: AdmissionConfig,
    /// Recovery policy (shared by all arms; the drill needs retries to
    /// fail guests over).
    pub recovery: RecoveryConfig,
    /// Verifier cost model; each arm overrides only `mode`.
    pub verifier: AttPlaneConfig,
    /// Aggregate offered load of the storm and drill arms.
    pub storm_rps: f64,
    /// Requests of the storm and drill arms.
    pub storm_requests: usize,
    /// The storm's staggered rollout schedule.
    pub rollout: TcbRollout,
    /// The drill's revocation event.
    pub drill: RevocationDrill,
}

impl AttSweepConfig {
    /// The headline attestation sweep over the paper mix.
    pub fn paper_attestation() -> Self {
        AttSweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::paper_classes(16, 256 * MB),
            mix: Some(RequestMix::weighted(vec![
                (0, 5),
                (1, 3),
                (2, 1),
                (3, 1),
                (4, 2),
            ])),
            hosts: 4,
            // The naive verifier's ceiling is 1 / (fetch + setup + check)
            // = 80 verifications/s: the middle load saturates it and the
            // top one buries it, while cached (~400/s) and batched
            // (~2000/s steady-state) still track the offered rate.
            loads_rps: vec![40.0, 80.0, 160.0],
            requests: 400,
            admission: AdmissionConfig::default(),
            recovery: RecoveryConfig::resilient(0x5EF0),
            verifier: AttPlaneConfig::cached_batched(),
            storm_rps: 120.0,
            storm_requests: 360,
            rollout: TcbRollout {
                start: Nanos::from_millis(1000),
                stagger: Nanos::from_millis(200),
            },
            drill: RevocationDrill {
                host: 1,
                at: Nanos::from_millis(1000),
            },
        }
    }

    /// A fast sweep over the tiny test classes (tests, `--quick`).
    pub fn quick() -> Self {
        AttSweepConfig {
            seed: 0x5EF0,
            classes: ClassSpec::quick_test_classes(),
            mix: Some(RequestMix::weighted(vec![(0, 3), (1, 1)])),
            hosts: 3,
            loads_rps: vec![40.0, 160.0],
            requests: 240,
            admission: AdmissionConfig {
                queue_bound: 128,
                max_inflight: 96,
                ..AdmissionConfig::default()
            },
            recovery: RecoveryConfig::resilient(0x5EF0),
            verifier: AttPlaneConfig::cached_batched(),
            storm_rps: 100.0,
            storm_requests: 240,
            rollout: TcbRollout {
                start: Nanos::from_millis(600),
                stagger: Nanos::from_millis(150),
            },
            drill: RevocationDrill {
                host: 1,
                at: Nanos::from_millis(600),
            },
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct AttRow {
    /// Which arm produced the row ("load", "storm", "drill").
    pub arm: &'static str,
    /// Verification mode ("none" for the baseline).
    pub mode: &'static str,
    /// Aggregate offered load (req/s).
    pub offered_rps: f64,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed (admission queues + unroutable arrivals).
    pub shed: u64,
    /// Requests shed on deadline.
    pub timeouts: u64,
    /// Requests permanently failed after exhausting retries.
    pub failed: u64,
    /// Requests displaced off a dead host and re-routed.
    pub failovers: u64,
    /// Retry launches dispatched.
    pub retries: u64,
    /// Completed signature checks.
    pub verifications: u64,
    /// KDS cert-chain fetches (cache misses).
    pub cert_fetches: u64,
    /// Cert chains served from cache.
    pub cert_hits: u64,
    /// Cert-cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Reports that shared a batch window.
    pub batch_joins: u64,
    /// Dispatches refused on a revoked chip.
    pub revoked: u64,
    /// Mean verifier queue wait per verification (ms).
    pub queue_wait_ms: f64,
    /// Cluster-wide median latency (ms).
    pub p50_ms: f64,
    /// Cluster-wide 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Whether the conservation invariant held for the cell.
    pub conserved: bool,
}

/// The sweep's result.
#[derive(Debug, Clone)]
pub struct AttSweepReport {
    /// One row per cell: load, then storm, then drill.
    pub rows: Vec<AttRow>,
}

fn mode_name(mode: Option<VerifyMode>) -> &'static str {
    match mode {
        None => "none",
        Some(m) => m.name(),
    }
}

fn row_from(
    arm: &'static str,
    mode: &'static str,
    report: &crate::service::ClusterReport,
) -> AttRow {
    let m = &report.metrics;
    let att = report.attestation.unwrap_or_default();
    AttRow {
        arm,
        mode,
        offered_rps: report.offered_rps.unwrap_or(0.0),
        completed: m.completed,
        shed: m.shed,
        timeouts: m.timeouts,
        failed: m.failed,
        failovers: m.failovers,
        retries: m.retries,
        verifications: att.verifications,
        cert_fetches: att.cert_fetches,
        cert_hits: att.cert_hits,
        hit_rate: att.hit_rate(),
        batch_joins: att.batch_joins,
        revoked: att.revoked_verdicts,
        queue_wait_ms: att.mean_queue_wait_ms(),
        p50_ms: m.p50_ms(),
        p99_ms: m.p99_ms(),
        conserved: m.conserved(),
    }
}

fn base_config(cfg: &AttSweepConfig, rps: f64, requests: usize) -> ClusterConfig {
    ClusterConfig {
        mix: cfg.mix.clone(),
        seed: cfg.seed,
        admission: cfg.admission,
        placement: PlacementPolicy::JsqPsp,
        recovery: cfg.recovery,
        ..ClusterConfig::open_loop(cfg.hosts, ServingTier::Template, rps, requests)
    }
}

/// Runs the three-arm attestation sweep over one catalog.
///
/// # Errors
///
/// Propagates catalog-construction failures ([`ClusterError::Fleet`]) and
/// configuration errors, including [`ClusterError::AttPlane`] for an
/// invalid verifier model.
pub fn att_sweep(cfg: &AttSweepConfig) -> Result<AttSweepReport, ClusterError> {
    cfg.verifier.validate().map_err(ClusterError::AttPlane)?;
    let catalog = Catalog::build(cfg.seed, &cfg.classes)?;
    let mut rows = Vec::new();

    // Arm 1: verification modes across load (plus the no-verifier
    // baseline, which shows what the plane itself costs).
    let modes = [
        None,
        Some(VerifyMode::Naive),
        Some(VerifyMode::Cached),
        Some(VerifyMode::CachedBatched),
    ];
    for &load in &cfg.loads_rps {
        for mode in modes {
            let mut config = base_config(cfg, load, cfg.requests);
            config.attestation = mode.map(|m| AttPlaneConfig {
                mode: m,
                ..cfg.verifier
            });
            let report = ClusterService::new(catalog.clone(), config)?.run();
            rows.push(row_from("load", mode_name(mode), &report));
        }
    }

    // Arm 2: the re-attestation storm under each verification mode.
    for mode in [
        VerifyMode::Naive,
        VerifyMode::Cached,
        VerifyMode::CachedBatched,
    ] {
        let mut config = base_config(cfg, cfg.storm_rps, cfg.storm_requests);
        config.attestation = Some(AttPlaneConfig {
            mode,
            ..cfg.verifier
        });
        config.tcb_rollout = Some(cfg.rollout);
        let report = ClusterService::new(catalog.clone(), config)?.run();
        rows.push(row_from("storm", mode.name(), &report));
    }

    // Arm 3: the key-compromise drill under the full control plane.
    let mut config = base_config(cfg, cfg.storm_rps, cfg.storm_requests);
    config.attestation = Some(AttPlaneConfig {
        mode: VerifyMode::CachedBatched,
        ..cfg.verifier
    });
    config.revocation = Some(cfg.drill);
    let report = ClusterService::new(catalog, config)?.run();
    rows.push(row_from("drill", VerifyMode::CachedBatched.name(), &report));

    Ok(AttSweepReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(report: &AttSweepReport) -> Vec<(u64, u64, u64, u64)> {
        report
            .rows
            .iter()
            .map(|r| {
                (
                    r.completed as u64,
                    r.shed + r.timeouts + r.failed,
                    r.verifications,
                    r.cert_fetches,
                )
            })
            .collect()
    }

    #[test]
    fn sweep_conserves_and_is_deterministic() {
        let cfg = AttSweepConfig::quick();
        let a = att_sweep(&cfg).unwrap();
        let b = att_sweep(&cfg).unwrap();
        assert!(a.rows.iter().all(|r| r.conserved));
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn cached_batched_sustains_load_where_naive_degrades() {
        let report = att_sweep(&AttSweepConfig::quick()).unwrap();
        let top = report
            .rows
            .iter()
            .filter(|r| r.arm == "load")
            .fold(0.0f64, |acc, r| acc.max(r.offered_rps));
        let at_top = |mode: &str| {
            report
                .rows
                .iter()
                .find(|r| r.arm == "load" && r.mode == mode && r.offered_rps == top)
                .unwrap()
        };
        let naive = at_top("naive");
        let batched = at_top("cached+batched");
        // Past the naive verifier's ceiling the queue stretches every
        // launch: p99 degrades (or the stream sheds on deadline) while
        // the batched plane still tracks the offered load.
        assert!(
            naive.p99_ms > 2.0 * batched.p99_ms || naive.shed + naive.timeouts > 0,
            "naive p99 {} vs batched {} (naive lost {})",
            naive.p99_ms,
            batched.p99_ms,
            naive.shed + naive.timeouts
        );
        assert!(
            batched.completed as f64 >= 0.9 * naive.completed as f64,
            "batched must not complete less"
        );
        assert!(batched.queue_wait_ms < naive.queue_wait_ms);
    }

    #[test]
    fn storm_refetches_certs_and_batching_absorbs_the_wave() {
        let report = att_sweep(&AttSweepConfig::quick()).unwrap();
        let storm = |mode: &str| {
            report
                .rows
                .iter()
                .find(|r| r.arm == "storm" && r.mode == mode)
                .unwrap()
        };
        let cached = storm("cached");
        // The rollout bumps every host's TCB, so the cached arm refetches
        // at least once per host beyond its initial warmup.
        let hosts = AttSweepConfig::quick().hosts as u64;
        assert!(
            cached.cert_fetches >= 2 * hosts,
            "rollout must force refetches, got {}",
            cached.cert_fetches
        );
        let batched = storm("cached+batched");
        assert!(batched.batch_joins > 0);
        assert!(batched.conserved && cached.conserved);
    }

    #[test]
    fn revocation_drill_fails_over_and_conserves() {
        let report = att_sweep(&AttSweepConfig::quick()).unwrap();
        let drill = report.rows.iter().find(|r| r.arm == "drill").unwrap();
        assert!(drill.conserved, "conservation must hold through the drill");
        assert!(
            drill.failovers > 0,
            "the revoked host's guests must fail over"
        );
        assert!(drill.completed > 0);
        assert!(
            drill.verifications > 0,
            "survivors must re-attest the re-launched guests"
        );
    }
}
