//! Cluster-level metric rollups over the per-host [`FleetMetrics`].
//!
//! Each host keeps its own counters and latency samples during the run; at
//! the end they are merged into one [`ClusterMetrics`]: aggregate goodput,
//! cluster-wide p50/p99 over the merged latency samples (computed with
//! [`sevf_obs::percentile_or_zero`], which wraps the tree's single
//! percentile implementation in `sevf_sim::stats`), per-host PSP
//! utilization skew, the cluster cache
//! hit-rate, and the conservation invariant every run must satisfy:
//!
//! ```text
//! completed + shed + breaker_sheds + timeouts + failed + rejected == issued
//! ```

use sevf_fleet::metrics::FleetMetrics;
use sevf_obs::percentile_or_zero;
use sevf_sim::Nanos;

/// Per-host slice of the rollup, for skew tables and debugging.
#[derive(Debug, Clone)]
pub struct HostRollup {
    /// Host id.
    pub host: usize,
    /// Requests this host served to completion.
    pub completed: usize,
    /// Requests this host's admission queue shed.
    pub shed: u64,
    /// Template-cache hits on this host.
    pub cache_hits: u64,
    /// Template-cache misses (fills / re-measurements) on this host.
    pub cache_misses: u64,
    /// Warm-pool hits on this host.
    pub warm_hits: u64,
    /// This host's PSP busy fraction over the cluster makespan.
    pub psp_utilization: f64,
    /// Injected-fault occurrences recorded on this host.
    pub faults: u64,
}

/// The cluster-wide rollup of one run.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Requests issued to the cluster.
    pub issued: usize,
    /// Requests served to completion (any host).
    pub completed: usize,
    /// Requests shed: per-host admission-queue sheds plus arrivals that
    /// found no live host at all ([`ClusterMetrics::unroutable`]).
    pub shed: u64,
    /// Of the sheds, arrivals the router could not place anywhere.
    pub unroutable: u64,
    /// Requests shed past the bottom of a host's degradation ladder.
    pub breaker_sheds: u64,
    /// Requests shed on deadline.
    pub timeouts: u64,
    /// Requests permanently failed after exhausting retries.
    pub failed: u64,
    /// Requests the policy engine turned away at the router (quota,
    /// isolation, or no posture-eligible host).
    pub rejected: u64,
    /// Retry launches dispatched cluster-wide.
    pub retries: u64,
    /// Requests displaced off a dead or departing host and re-routed
    /// (queued requests re-placed at the membership change, in-flight
    /// requests whose launch the outage poisoned).
    pub failovers: u64,
    /// Warm-pool rebalance passes triggered by membership changes.
    pub rebalances: u64,
    /// Times the failure detector began suspecting a host.
    pub suspicions: u64,
    /// Suspicions a later heartbeat cleared.
    pub suspicions_cleared: u64,
    /// Failover sweeps that fired after their suspicion had already
    /// cleared: false suspicions that moved no work.
    pub false_suspicions: u64,
    /// Times a host parked on an expired lease.
    pub lease_expiries: u64,
    /// Dispatch messages lost to link loss or a partition.
    pub net_lost: u64,
    /// Dispatches the router timed out and sent back through recovery.
    pub net_timeouts: u64,
    /// Refusals (host parked, fenced, or dead at delivery) that reached
    /// the router.
    pub net_nacks: u64,
    /// Outcome messages discarded because the request had moved to a
    /// newer dispatch epoch.
    pub stale_completions: u64,
    /// Success completions for already-terminal requests — double-service
    /// attempts the epoch fence suppressed (each request still counted
    /// exactly once).
    pub double_completion_attempts: u64,
    /// Injected-fault occurrences across all hosts.
    pub faults: u64,
    /// Posture eligibility checks the policy filter ran (placement plus
    /// dispatch-time re-checks).
    pub posture_checks: u64,
    /// Queued requests re-routed because their host's posture changed
    /// between enqueue and pop.
    pub posture_redirects: u64,
    /// Launches dispatched onto a posture-ineligible host. The policy
    /// filter plus the dispatch-time re-check must keep this at zero.
    pub posture_violations: u64,
    /// Merged request latencies (ms), in completion order per host.
    pub latencies_ms: Vec<f64>,
    /// Host-seconds of availability summed over the fleet — the
    /// provisioning-cost axis of the autoscale frontier. A host accrues
    /// while it is routable (available), whether or not it serves.
    pub host_seconds: f64,
    /// End of the last completion on the shared clock.
    pub makespan: Nanos,
    /// Per-host slices.
    pub hosts: Vec<HostRollup>,
}

impl ClusterMetrics {
    /// Folds one host's metrics into the rollup.
    pub fn absorb_host(&mut self, host: usize, m: &FleetMetrics, psp_utilization: f64) {
        self.completed += m.completed;
        self.shed += m.shed;
        self.breaker_sheds += m.breaker_sheds;
        self.timeouts += m.timeouts;
        self.failed += m.failed;
        self.retries += m.retries;
        self.faults += m.faults.total();
        self.latencies_ms
            .extend(m.latencies.iter().map(|n| n.as_millis_f64()));
        self.hosts.push(HostRollup {
            host,
            completed: m.completed,
            shed: m.shed,
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            warm_hits: m.warm_hits,
            psp_utilization,
            faults: m.faults.total(),
        });
    }

    /// Completed requests per second of makespan, summed over hosts.
    pub fn goodput_rps(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Cluster-wide median latency (ms); 0 with no completions.
    pub fn p50_ms(&self) -> f64 {
        percentile_or_zero(&self.latencies_ms, 50.0)
    }

    /// Cluster-wide 99th-percentile latency (ms); 0 with no completions.
    pub fn p99_ms(&self) -> f64 {
        percentile_or_zero(&self.latencies_ms, 99.0)
    }

    /// Exports the rollup into a unified [`sevf_obs::Registry`].
    pub fn registry(&self) -> sevf_obs::Registry {
        let mut reg = sevf_obs::Registry::new();
        reg.inc("cluster_issued_total", self.issued as u64);
        reg.inc("cluster_completed_total", self.completed as u64);
        reg.inc("cluster_shed_total", self.shed);
        reg.inc("cluster_unroutable_total", self.unroutable);
        reg.inc("cluster_breaker_sheds_total", self.breaker_sheds);
        reg.inc("cluster_timeouts_total", self.timeouts);
        reg.inc("cluster_failed_total", self.failed);
        reg.inc("cluster_rejected_total", self.rejected);
        reg.inc("cluster_retries_total", self.retries);
        reg.inc("cluster_failovers_total", self.failovers);
        reg.inc("cluster_rebalances_total", self.rebalances);
        reg.inc("cluster_suspicions_total", self.suspicions);
        reg.inc("cluster_suspicions_cleared_total", self.suspicions_cleared);
        reg.inc("cluster_false_suspicions_total", self.false_suspicions);
        reg.inc("cluster_lease_expiries_total", self.lease_expiries);
        reg.inc("cluster_net_lost_total", self.net_lost);
        reg.inc("cluster_net_timeouts_total", self.net_timeouts);
        reg.inc("cluster_net_nacks_total", self.net_nacks);
        reg.inc("cluster_stale_completions_total", self.stale_completions);
        reg.inc(
            "cluster_double_completion_attempts_total",
            self.double_completion_attempts,
        );
        reg.inc("cluster_faults_total", self.faults);
        reg.inc("cluster_posture_checks_total", self.posture_checks);
        reg.inc("cluster_posture_redirects_total", self.posture_redirects);
        reg.inc("cluster_posture_violations_total", self.posture_violations);
        reg.set_gauge("cluster_host_seconds", self.host_seconds);
        reg.set_gauge("cluster_psp_skew", self.psp_skew());
        reg.set_gauge("cluster_cache_hit_rate", self.cache_hit_rate());
        reg.set_gauge("cluster_makespan_ms", self.makespan.as_millis_f64());
        for ms in &self.latencies_ms {
            reg.observe("cluster_latency_ms", 10.0, *ms);
        }
        reg
    }

    /// Cluster template-cache hit rate in `[0, 1]`; 0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.hosts.iter().map(|h| h.cache_hits).sum();
        let misses: u64 = self.hosts.iter().map(|h| h.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Template fills (= measurements) across all hosts. Under affinity
    /// placement this exceeding the class count is re-measurement: a class
    /// measured again on a new owner host after a membership change (§6.2
    /// across machines).
    pub fn cache_misses(&self) -> u64 {
        self.hosts.iter().map(|h| h.cache_misses).sum()
    }

    /// Spread between the busiest and idlest PSP (absolute utilization
    /// difference); 0 for a single host.
    pub fn psp_skew(&self) -> f64 {
        let max = self
            .hosts
            .iter()
            .map(|h| h.psp_utilization)
            .fold(0.0, f64::max);
        let min = self
            .hosts
            .iter()
            .map(|h| h.psp_utilization)
            .fold(f64::INFINITY, f64::min);
        if self.hosts.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Requests that left the system without completing.
    pub fn lost(&self) -> u64 {
        self.shed + self.breaker_sheds + self.timeouts + self.failed + self.rejected
    }

    /// The cluster conservation invariant: every issued request reaches
    /// exactly one terminal state.
    pub fn conserved(&self) -> bool {
        self.completed as u64 + self.lost() == self.issued as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollup_with(latencies_ms: &[f64]) -> ClusterMetrics {
        ClusterMetrics {
            issued: latencies_ms.len(),
            completed: latencies_ms.len(),
            latencies_ms: latencies_ms.to_vec(),
            makespan: Nanos::from_secs(2),
            ..ClusterMetrics::default()
        }
    }

    #[test]
    fn percentiles_come_from_the_shared_implementation() {
        use sevf_sim::stats::percentile;
        let m = rollup_with(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.p50_ms(), percentile(&[1.0, 2.0, 3.0, 4.0], 50.0));
        assert_eq!(m.p99_ms(), percentile(&[1.0, 2.0, 3.0, 4.0], 99.0));
        assert_eq!(m.goodput_rps(), 2.0);
    }

    #[test]
    fn empty_rollup_reports_zeros() {
        let m = ClusterMetrics::default();
        assert_eq!(m.p50_ms(), 0.0);
        assert_eq!(m.p99_ms(), 0.0);
        assert_eq!(m.goodput_rps(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.psp_skew(), 0.0);
        assert!(m.conserved());
    }

    #[test]
    fn absorb_host_merges_counters_and_skew() {
        let mut m = ClusterMetrics::default();
        let mut a = FleetMetrics {
            completed: 3,
            shed: 1,
            cache_hits: 4,
            cache_misses: 2,
            ..FleetMetrics::default()
        };
        a.latencies.push(Nanos::from_millis(10));
        let b = FleetMetrics {
            completed: 2,
            timeouts: 1,
            ..FleetMetrics::default()
        };
        m.absorb_host(0, &a, 0.9);
        m.absorb_host(1, &b, 0.3);
        m.issued = 7;
        assert_eq!(m.completed, 5);
        assert_eq!(m.shed, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.latencies_ms.len(), 1);
        assert!((m.psp_skew() - 0.6).abs() < 1e-12);
        assert!((m.cache_hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        assert!(m.conserved());
    }
}
