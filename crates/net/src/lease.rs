//! Lease-based dispatch ownership.
//!
//! Split-brain discipline needs both sides to give something up. The
//! *host* holds a time-bounded lease ([`HostLease`]): when renewals stop
//! arriving — partition, loss streak, or a router that has stopped
//! trusting it — the lease lapses and the host parks: it refuses new
//! dispatches, empties its queue back to the router, and poisons work in
//! flight rather than completing requests the router may already have
//! failed over. The *router* keeps a [`LeaseLedger`]: for every host it
//! tracks the latest instant any lease it ever granted could still be
//! live (`last grant sent + max link delay + lease duration`), and it
//! refuses to fail a suspected host's work over before that instant.
//! Together the two bounds guarantee no request is ever *served* by two
//! hosts under current epochs, which is what keeps the conservation
//! invariant exact through a partition.

use sevf_sim::Nanos;

use crate::NetError;

/// Knobs of the lease protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How long one grant keeps a host serving.
    pub duration: Nanos,
    /// Gap between consecutive renewals from the router.
    pub renew_every: Nanos,
}

impl LeaseConfig {
    /// Checks the knobs.
    ///
    /// # Errors
    ///
    /// Returns the specific [`LeaseError`].
    pub fn validate(&self) -> Result<(), NetError> {
        if self.duration == Nanos::ZERO {
            return Err(LeaseError::DurationZero.into());
        }
        if self.renew_every == Nanos::ZERO || self.renew_every >= self.duration {
            return Err(LeaseError::RenewTooSlow.into());
        }
        Ok(())
    }
}

/// Why a lease configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// Leases must last a positive duration.
    DurationZero,
    /// Renewals must come strictly faster than leases lapse.
    RenewTooSlow,
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::DurationZero => write!(f, "lease duration must be positive"),
            LeaseError::RenewTooSlow => {
                write!(
                    f,
                    "lease renewals must be positive and faster than the duration"
                )
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// The host side of one lease: valid until the last delivered grant plus
/// the duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostLease {
    until: Nanos,
}

impl HostLease {
    /// A lease granted at time zero.
    pub fn initial(config: LeaseConfig) -> Self {
        HostLease {
            until: config.duration,
        }
    }

    /// A grant delivered at `at` extends the lease to `at + duration`
    /// (grants can arrive out of order through jittered links; the lease
    /// is monotone).
    pub fn renew(&mut self, at: Nanos, config: LeaseConfig) {
        self.until = self.until.max(at + config.duration);
    }

    /// Whether the host may accept and complete dispatches at `now`.
    pub fn valid_at(&self, now: Nanos) -> bool {
        now < self.until
    }

    /// The instant the lease lapses.
    pub fn expiry(&self) -> Nanos {
        self.until
    }
}

/// The router side: per host, the latest instant any granted lease could
/// still be live.
#[derive(Debug, Clone)]
pub struct LeaseLedger {
    deadline: Vec<Nanos>,
    duration: Nanos,
    margin: Nanos,
}

impl LeaseLedger {
    /// A ledger for `hosts` hosts whose initial leases were granted at
    /// time zero. `margin` is the worst-case one-way link delay: a grant
    /// sent at `t` cannot make a host's lease outlive
    /// `t + margin + duration`.
    pub fn new(hosts: usize, config: LeaseConfig, margin: Nanos) -> Self {
        LeaseLedger {
            deadline: vec![margin + config.duration; hosts],
            duration: config.duration,
            margin,
        }
    }

    /// Records a renewal *sent* to `host` at `sent_at` (delivery is
    /// irrelevant for safety: the bound covers the delivered case).
    pub fn on_grant(&mut self, host: usize, sent_at: Nanos) {
        let bound = sent_at + self.margin + self.duration;
        self.deadline[host] = self.deadline[host].max(bound);
    }

    /// The instant from which the router may safely assume `host` holds
    /// no live lease (and so cannot complete current-epoch work).
    pub fn safe_at(&self, host: usize) -> Nanos {
        self.deadline[host]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LeaseConfig {
        LeaseConfig {
            duration: Nanos::from_millis(300),
            renew_every: Nanos::from_millis(100),
        }
    }

    #[test]
    fn host_lease_is_monotone_under_reordered_grants() {
        let mut lease = HostLease::initial(cfg());
        assert!(lease.valid_at(Nanos::from_millis(299)));
        assert!(!lease.valid_at(Nanos::from_millis(300)));
        lease.renew(Nanos::from_millis(200), cfg());
        assert_eq!(lease.expiry(), Nanos::from_millis(500));
        // A straggler grant from earlier must not shrink the lease.
        lease.renew(Nanos::from_millis(100), cfg());
        assert_eq!(lease.expiry(), Nanos::from_millis(500));
    }

    #[test]
    fn ledger_bound_always_covers_the_host_lease() {
        // Safety property: for any grant the router sent at t, a host
        // that received it at t + d (d <= margin) holds a lease expiring
        // at t + d + duration <= ledger.safe_at(host).
        let margin = Nanos::from_micros(300);
        let mut ledger = LeaseLedger::new(2, cfg(), margin);
        let mut lease = HostLease::initial(cfg());
        for k in 1..=20u64 {
            let sent = Nanos::from_millis(100 * k);
            ledger.on_grant(0, sent);
            let delivered = sent + Nanos::from_micros(50 * (k % 7));
            lease.renew(delivered, cfg());
            assert!(
                lease.expiry() <= ledger.safe_at(0),
                "grant {k}: host outlives the router's bound"
            );
        }
        // The unrenewed host keeps its initial bound.
        assert_eq!(ledger.safe_at(1), margin + cfg().duration);
    }

    #[test]
    fn config_validation_names_the_failure() {
        assert!(cfg().validate().is_ok());
        let bad = LeaseConfig {
            duration: Nanos::ZERO,
            ..cfg()
        };
        assert!(matches!(
            bad.validate(),
            Err(crate::NetError::Lease(LeaseError::DurationZero))
        ));
        let bad = LeaseConfig {
            renew_every: Nanos::from_millis(300),
            ..cfg()
        };
        assert!(bad.validate().is_err());
    }
}
