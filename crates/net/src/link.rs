//! Seeded link model: per-message latency, jitter, loss, and scheduled
//! partitions for the control-plane links.
//!
//! A [`LinkPlan`] follows the [`sevf_sim::fault::FaultPlan`] idiom: it is
//! a pure function of `(seed, config)` and every per-message draw is a
//! *stateless* splitmix64-style hash of `(seed, link, token)`. Asking
//! whether message 42 on one link is lost never perturbs the delay drawn
//! for message 7 on another, so probing the plan in any order replays
//! identically. Partitions are scheduled `[start, end)` windows on the
//! virtual clock, scoped to one router↔host pair or to the router↔verifier
//! link; a message sent into a partition is lost (forward direction) or
//! buffered until the heal (host→router completions and refusals, which
//! model reliable-transport retransmission).

use sevf_sim::fault::{unit_draw, ResetWindow};
use sevf_sim::Nanos;

use crate::detector::DetectorConfig;
use crate::lease::LeaseConfig;
use crate::NetError;

// Domain separators for the stateless per-message draws. Arbitrary odd
// constants; all that matters is that they differ.
const DOM_DELAY: u64 = 0x7E57_0E70_0001;
const DOM_LOSS: u64 = 0x7E57_0E70_0003;

/// One directed control-plane link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Router → host `i`: dispatches and lease grants.
    RouterToHost(usize),
    /// Host `i` → router: completions, refusals, heartbeats.
    HostToRouter(usize),
    /// Router → remote verifier: attestation traffic.
    RouterToVerifier,
}

impl LinkId {
    /// Stable per-link separator mixed into every draw's domain.
    fn domain(self, base: u64) -> u64 {
        let tag = match self {
            LinkId::RouterToHost(h) => 2 * h as u64 + 2,
            LinkId::HostToRouter(h) => 2 * h as u64 + 3,
            LinkId::RouterToVerifier => 1,
        };
        base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Latency model shared by every link of the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base one-way latency of every message.
    pub latency: Nanos,
    /// Uniform jitter added on top: each message draws `[0, jitter)`.
    pub jitter: Nanos,
    /// Per-message loss probability in `[0, 1]` (partitions lose
    /// messages deterministically on top of this).
    pub loss: f64,
}

impl LinkSpec {
    /// A link that delivers instantly and never loses anything.
    pub fn ideal() -> Self {
        LinkSpec {
            latency: Nanos::ZERO,
            jitter: Nanos::ZERO,
            loss: 0.0,
        }
    }

    /// A calibrated datacenter link: 200 µs base, 100 µs jitter, and a
    /// small residual loss rate.
    pub fn datacenter() -> Self {
        LinkSpec {
            latency: Nanos::from_micros(200),
            jitter: Nanos::from_micros(100),
            loss: 0.002,
        }
    }
}

/// What a scheduled partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScope {
    /// Both directions of the router↔host pair for one host.
    Host(usize),
    /// The router↔verifier link (attestation blackout).
    Verifier,
}

/// One scheduled partition: the scoped link drops every message sent in
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Which link pair the partition cuts.
    pub scope: PartitionScope,
    /// Instant the partition opens.
    pub start: Nanos,
    /// Instant the partition heals.
    pub end: Nanos,
}

impl Partition {
    /// True if `at` falls inside the partition.
    pub fn contains(&self, at: Nanos) -> bool {
        self.start <= at && at < self.end
    }
}

/// Knobs of the network layer for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Latency/jitter/loss model shared by every link.
    pub link: LinkSpec,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Horizon the heartbeat and lease-renewal schedules cover; must
    /// outlive the run whenever the detector or leases are on.
    pub horizon: Nanos,
    /// How long the router waits for a dispatch to land before treating
    /// it as lost and retrying through the recovery path.
    pub dispatch_timeout: Nanos,
    /// Gap between consecutive heartbeats from each host.
    pub heartbeat_every: Nanos,
    /// Failure detector fed by the heartbeats; `None` = the router never
    /// suspects anyone (the naive arm).
    pub detector: Option<DetectorConfig>,
    /// Lease-based dispatch ownership; `None` = hosts serve forever (the
    /// naive arm).
    pub lease: Option<LeaseConfig>,
}

impl NetConfig {
    /// A network that changes nothing: ideal links, no partitions, no
    /// detector, no leases. Callers bypass the message layer entirely for
    /// such a config, so a run replays pre-net output byte for byte.
    pub fn none() -> Self {
        NetConfig {
            link: LinkSpec::ideal(),
            partitions: Vec::new(),
            horizon: Nanos::ZERO,
            dispatch_timeout: Nanos::from_millis(50),
            heartbeat_every: Nanos::from_millis(50),
            detector: None,
            lease: None,
        }
    }

    /// True if the network can never delay, lose, or fence anything —
    /// the condition under which callers skip message indirection.
    pub fn is_none(&self) -> bool {
        self.link.latency == Nanos::ZERO
            && self.link.jitter == Nanos::ZERO
            && self.link.loss == 0.0
            && self.partitions.is_empty()
            && self.detector.is_none()
            && self.lease.is_none()
    }

    /// Checks every knob.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, chaining detector and lease
    /// validation errors as [`NetError`] sources.
    pub fn validate(&self, hosts: usize) -> Result<(), NetError> {
        if !self.link.loss.is_finite() || !(0.0..=1.0).contains(&self.link.loss) {
            return Err(NetError::Config("link loss outside [0, 1]"));
        }
        if self.dispatch_timeout == Nanos::ZERO {
            return Err(NetError::Config("dispatch_timeout must be positive"));
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(NetError::Config("partition must end after it starts"));
            }
            if let PartitionScope::Host(h) = p.scope {
                if h >= hosts {
                    return Err(NetError::Config("partition names an unknown host"));
                }
            }
        }
        if self.detector.is_some() || self.lease.is_some() {
            if self.heartbeat_every == Nanos::ZERO {
                return Err(NetError::Config(
                    "heartbeat_every must be positive with a detector or leases",
                ));
            }
            if self.horizon == Nanos::ZERO {
                return Err(NetError::Config(
                    "net horizon must be positive with a detector or leases",
                ));
            }
        }
        if let Some(det) = &self.detector {
            det.validate()?;
        }
        if let Some(lease) = &self.lease {
            lease.validate()?;
        }
        Ok(())
    }
}

/// A validated, seed-deterministic link schedule.
///
/// # Example
///
/// ```
/// use sevf_net::{LinkId, LinkPlan, LinkSpec, NetConfig};
///
/// let mut config = NetConfig::none();
/// config.link = LinkSpec::datacenter();
/// let plan = LinkPlan::generate(7, config.clone(), 4).unwrap();
/// let again = LinkPlan::generate(7, config, 4).unwrap();
/// let link = LinkId::RouterToHost(2);
/// assert_eq!(plan.delay(link, 42), again.delay(link, 42));
/// assert_eq!(plan.lost(link, 42), again.lost(link, 42));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPlan {
    seed: u64,
    config: NetConfig,
}

impl LinkPlan {
    /// Builds the plan after validating the config against `hosts`.
    ///
    /// # Errors
    ///
    /// Returns the [`NetConfig::validate`] error for an invalid config.
    pub fn generate(seed: u64, config: NetConfig, hosts: usize) -> Result<Self, NetError> {
        config.validate(hosts)?;
        Ok(LinkPlan { seed, config })
    }

    /// The seed the plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The config the plan was generated from.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// One-way delay of message `token` on `link`: base latency plus a
    /// stateless uniform jitter draw. Independent of every other token.
    pub fn delay(&self, link: LinkId, token: u64) -> Nanos {
        if self.config.link.jitter == Nanos::ZERO {
            return self.config.link.latency;
        }
        let u = unit_draw(self.seed, link.domain(DOM_DELAY), token);
        self.config.link.latency + self.config.link.jitter.scale_f64(u)
    }

    /// Stateless Bernoulli draw: is message `token` on `link` lost to
    /// residual (non-partition) loss?
    pub fn lost(&self, link: LinkId, token: u64) -> bool {
        self.config.link.loss > 0.0
            && unit_draw(self.seed, link.domain(DOM_LOSS), token) < self.config.link.loss
    }

    /// If the router↔host pair for `host` is partitioned at `at`, the
    /// latest instant a covering partition heals.
    pub fn host_cut(&self, host: usize, at: Nanos) -> Option<Nanos> {
        self.cut_end(at, |scope| scope == PartitionScope::Host(host))
    }

    /// If the router↔verifier link is partitioned at `at`, the latest
    /// instant a covering partition heals.
    pub fn verifier_cut(&self, at: Nanos) -> Option<Nanos> {
        self.cut_end(at, |scope| scope == PartitionScope::Verifier)
    }

    /// The scheduled verifier blackout windows, in config order.
    pub fn verifier_windows(&self) -> Vec<Partition> {
        self.config
            .partitions
            .iter()
            .filter(|p| p.scope == PartitionScope::Verifier)
            .copied()
            .collect()
    }

    /// An upper bound on any single message delay (latency + jitter).
    pub fn max_delay(&self) -> Nanos {
        self.config.link.latency + self.config.link.jitter
    }

    fn cut_end(&self, at: Nanos, scoped: impl Fn(PartitionScope) -> bool) -> Option<Nanos> {
        self.config
            .partitions
            .iter()
            .filter(|p| scoped(p.scope) && p.contains(at))
            .map(|p| p.end)
            .max()
    }
}

/// The fleet-side view of the router↔verifier link: a fixed round trip
/// spliced onto every verification, plus scheduled blackout windows
/// during which the verifier is unreachable and the attestation plane
/// degrades by its configured fail mode.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifierLink {
    /// One-way-pair round trip added to every verification.
    pub rtt: Nanos,
    /// Windows during which the verifier is unreachable.
    pub blackouts: Vec<ResetWindow>,
}

impl VerifierLink {
    /// A link that adds nothing and never blacks out. Callers bypass the
    /// link entirely for such a config.
    pub fn none() -> Self {
        VerifierLink {
            rtt: Nanos::ZERO,
            blackouts: Vec::new(),
        }
    }

    /// True if the link can never change a run.
    pub fn is_none(&self) -> bool {
        self.rtt == Nanos::ZERO && self.blackouts.is_empty()
    }

    /// Checks the blackout windows.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Config`] for an empty or inverted window.
    pub fn validate(&self) -> Result<(), NetError> {
        for w in &self.blackouts {
            if w.start >= w.end {
                return Err(NetError::Config("blackout must end after it starts"));
            }
        }
        Ok(())
    }

    /// Whether the verifier is reachable at `at`.
    pub fn up(&self, at: Nanos) -> bool {
        !self.blackouts.iter().any(|w| w.contains(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty_config() -> NetConfig {
        let mut cfg = NetConfig::none();
        cfg.link = LinkSpec::datacenter();
        cfg.partitions = vec![
            Partition {
                scope: PartitionScope::Host(1),
                start: Nanos::from_millis(100),
                end: Nanos::from_millis(300),
            },
            Partition {
                scope: PartitionScope::Verifier,
                start: Nanos::from_millis(200),
                end: Nanos::from_millis(400),
            },
        ];
        cfg
    }

    #[test]
    fn none_config_is_none_and_faulty_is_not() {
        assert!(NetConfig::none().is_none());
        assert!(!faulty_config().is_none());
        let mut latency_only = NetConfig::none();
        latency_only.link.latency = Nanos::from_micros(1);
        assert!(!latency_only.is_none());
    }

    #[test]
    fn draws_are_stateless_and_per_link() {
        let plan = LinkPlan::generate(7, faulty_config(), 4).unwrap();
        let a = LinkId::RouterToHost(0);
        let b = LinkId::HostToRouter(0);
        let first = plan.delay(a, 100);
        // Probing other links and tokens must not change token 100's draw.
        for t in 0..50 {
            let _ = plan.delay(b, t);
            let _ = plan.lost(a, t);
        }
        assert_eq!(plan.delay(a, 100), first);
        assert_ne!(
            plan.delay(a, 100),
            plan.delay(b, 100),
            "directions draw from distinct streams"
        );
        assert!(first >= plan.config().link.latency);
        assert!(first <= plan.max_delay());
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut cfg = NetConfig::none();
        cfg.link.loss = 0.25;
        let plan = LinkPlan::generate(3, cfg, 2).unwrap();
        let hits = (0..4000u64)
            .filter(|&t| plan.lost(LinkId::RouterToHost(0), t))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn partitions_cut_the_scoped_link_only() {
        let plan = LinkPlan::generate(7, faulty_config(), 4).unwrap();
        let inside = Nanos::from_millis(150);
        assert_eq!(plan.host_cut(1, inside), Some(Nanos::from_millis(300)));
        assert_eq!(plan.host_cut(0, inside), None);
        assert_eq!(plan.verifier_cut(inside), None);
        assert_eq!(
            plan.verifier_cut(Nanos::from_millis(250)),
            Some(Nanos::from_millis(400))
        );
        assert_eq!(plan.host_cut(1, Nanos::from_millis(300)), None);
        assert_eq!(plan.verifier_windows().len(), 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = NetConfig::none();
        cfg.link.loss = 1.5;
        assert!(cfg.validate(1).is_err());

        let mut cfg = faulty_config();
        cfg.partitions[0].scope = PartitionScope::Host(9);
        assert!(cfg.validate(4).is_err());

        let mut cfg = faulty_config();
        cfg.partitions[0].end = cfg.partitions[0].start;
        assert!(cfg.validate(4).is_err());

        let mut cfg = NetConfig::none();
        cfg.detector = Some(DetectorConfig::default());
        assert!(cfg.validate(1).is_err(), "detector needs a horizon");
        cfg.horizon = Nanos::from_secs(10);
        assert!(cfg.validate(1).is_ok());

        assert!(NetConfig::none().validate(1).is_ok());
        assert!(faulty_config().validate(4).is_ok());
    }

    #[test]
    fn verifier_link_windows_gate_reachability() {
        let link = VerifierLink {
            rtt: Nanos::from_micros(400),
            blackouts: vec![ResetWindow {
                start: Nanos::from_millis(10),
                end: Nanos::from_millis(20),
            }],
        };
        link.validate().unwrap();
        assert!(link.up(Nanos::from_millis(5)));
        assert!(!link.up(Nanos::from_millis(10)));
        assert!(!link.up(Nanos::from_millis(19)));
        assert!(link.up(Nanos::from_millis(20)));
        assert!(!link.is_none());
        assert!(VerifierLink::none().is_none());

        let bad = VerifierLink {
            rtt: Nanos::ZERO,
            blackouts: vec![ResetWindow {
                start: Nanos::from_millis(10),
                end: Nanos::from_millis(10),
            }],
        };
        assert!(bad.validate().is_err());
    }
}
