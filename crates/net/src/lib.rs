//! `sevf-net`: a deterministic network layer on the shared virtual clock.
//!
//! Every fault the tree survives elsewhere is local to a host (PSP
//! transients, firmware resets, warm-guest crashes) or scripted as a clean
//! whole-host outage. This crate models the *network between* the router,
//! the hosts, and the attestation verifier, so the control plane can face
//! the hard distributed failure modes a production SEV fleet actually
//! sees: a host that is alive but unreachable, a router whose liveness
//! view is stale, and a verifier cut off mid re-attestation storm.
//!
//! Three pieces, all pure functions of a seed:
//!
//! * [`LinkPlan`] — per-link latency/jitter/loss and scheduled partitions,
//!   in the style of [`sevf_sim::fault::FaultPlan`]: every per-message
//!   draw is a stateless hash of `(seed, link, token)`, so consulting the
//!   plan never perturbs any other random stream, and a
//!   [`NetConfig::none`] plan is a guaranteed no-op (callers bypass the
//!   message layer entirely, replaying pre-net output byte for byte).
//! * [`PhiDetector`] — a deterministic phi-accrual-style failure detector
//!   fed by per-host heartbeats through the lossy links. Suspicion, not
//!   scripted death, drives failover; a slow link under a live host makes
//!   false suspicion a real scenario. State is `Vec`-indexed by host id,
//!   so verdicts are independent of any iteration order.
//! * [`LeaseLedger`] — time-bounded dispatch leases. A host stops
//!   accepting (and completing) work when its lease expires, and the
//!   router only fails a host's work over once every lease it ever
//!   granted that host has provably lapsed — the two sides of the
//!   split-brain bargain that keeps the conservation invariant exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod lease;
pub mod link;

pub use detector::{DetectorConfig, DetectorError, PhiDetector};
pub use lease::{HostLease, LeaseConfig, LeaseError, LeaseLedger};
pub use link::{LinkId, LinkPlan, LinkSpec, NetConfig, Partition, PartitionScope, VerifierLink};

/// Errors from building the network layer.
#[derive(Debug)]
pub enum NetError {
    /// A network configuration knob failed validation.
    Config(&'static str),
    /// The failure-detector configuration was invalid.
    Detector(DetectorError),
    /// The lease configuration was invalid.
    Lease(LeaseError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Config(e) => write!(f, "invalid net config: {e}"),
            NetError::Detector(e) => write!(f, "invalid failure detector: {e}"),
            NetError::Lease(e) => write!(f, "invalid lease config: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Detector(e) => Some(e),
            NetError::Lease(e) => Some(e),
            NetError::Config(_) => None,
        }
    }
}

impl From<DetectorError> for NetError {
    fn from(e: DetectorError) -> Self {
        NetError::Detector(e)
    }
}

impl From<LeaseError> for NetError {
    fn from(e: LeaseError) -> Self {
        NetError::Lease(e)
    }
}

/// The common imports for working with the network layer.
pub mod prelude {
    pub use crate::detector::{DetectorConfig, PhiDetector};
    pub use crate::lease::{HostLease, LeaseConfig, LeaseLedger};
    pub use crate::link::{LinkId, LinkPlan, LinkSpec, NetConfig, Partition, PartitionScope};
    pub use crate::NetError;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn net_error_chains_to_its_sources() {
        let err = NetError::from(DetectorError::WindowZero);
        assert!(err.to_string().contains("failure detector"));
        let source = err.source().expect("detector errors carry their source");
        assert!(!source.to_string().is_empty());

        let err = NetError::from(LeaseError::DurationZero);
        assert!(err.to_string().contains("lease"));
        assert!(err.source().is_some());

        assert!(NetError::Config("x").source().is_none());
    }
}
