//! A deterministic phi-accrual-style failure detector.
//!
//! The router feeds the detector every heartbeat that survives the lossy
//! links. Per host it keeps the last arrival instant and a windowed mean
//! of inter-arrival gaps; a host is *suspected* once the silence since
//! its last heartbeat exceeds `threshold` mean gaps. That adapts to slow
//! links the way phi accrual does — a host whose heartbeats consistently
//! take longer earns a longer allowance — while staying exactly
//! replayable: state is `Vec`-indexed by host id and the verdict is a
//! pure function of the arrival history, so it cannot depend on any map
//! iteration order.
//!
//! Suspicion is a *router belief*, not ground truth: heartbeats lost to
//! residual link loss can suspect a perfectly live host (false
//! suspicion), and the next heartbeat through clears it.

use sevf_sim::Nanos;

use crate::NetError;

/// Knobs of the failure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// How many recent inter-arrival gaps the mean averages over.
    pub window: usize,
    /// Suspect after this many mean gaps of silence (≥ 1).
    pub threshold: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window: 8,
            threshold: 3.0,
        }
    }
}

impl DetectorConfig {
    /// Checks the knobs.
    ///
    /// # Errors
    ///
    /// Returns the specific [`DetectorError`].
    pub fn validate(&self) -> Result<(), NetError> {
        if self.window == 0 {
            return Err(DetectorError::WindowZero.into());
        }
        if !self.threshold.is_finite() || self.threshold < 1.0 {
            return Err(DetectorError::ThresholdTooLow.into());
        }
        Ok(())
    }
}

/// Why a detector configuration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorError {
    /// The gap window must hold at least one sample.
    WindowZero,
    /// The suspicion threshold must be a finite multiple ≥ 1.
    ThresholdTooLow,
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::WindowZero => write!(f, "detector window must be positive"),
            DetectorError::ThresholdTooLow => {
                write!(f, "detector threshold must be finite and >= 1")
            }
        }
    }
}

impl std::error::Error for DetectorError {}

/// Per-host heartbeat history and suspicion verdicts.
#[derive(Debug, Clone)]
pub struct PhiDetector {
    config: DetectorConfig,
    /// Expected gap used before a host has any observed gaps.
    expected: Nanos,
    /// Last heartbeat arrival per host.
    last: Vec<Nanos>,
    /// Ring of recent inter-arrival gaps per host.
    gaps: Vec<Vec<Nanos>>,
    /// Write cursor into each host's ring.
    cursor: Vec<usize>,
}

impl PhiDetector {
    /// A detector for `hosts` hosts that treats every host as having
    /// heartbeated at time zero with the given expected gap.
    pub fn new(hosts: usize, config: DetectorConfig, expected_gap: Nanos) -> Self {
        PhiDetector {
            config,
            expected: expected_gap,
            last: vec![Nanos::ZERO; hosts],
            gaps: vec![Vec::new(); hosts],
            cursor: vec![0; hosts],
        }
    }

    /// Records a heartbeat from `host` arriving at `at`.
    pub fn heartbeat(&mut self, host: usize, at: Nanos) {
        let gap = at.saturating_sub(self.last[host]);
        self.last[host] = at;
        if gap == Nanos::ZERO {
            return;
        }
        let ring = &mut self.gaps[host];
        if ring.len() < self.config.window {
            ring.push(gap);
        } else {
            ring[self.cursor[host]] = gap;
            self.cursor[host] = (self.cursor[host] + 1) % self.config.window;
        }
    }

    /// The windowed mean inter-arrival gap for `host` (the expected gap
    /// until the first observed one).
    pub fn mean_gap(&self, host: usize) -> Nanos {
        let ring = &self.gaps[host];
        if ring.is_empty() {
            return self.expected;
        }
        let total: u64 = ring.iter().map(|g| g.as_nanos()).sum();
        Nanos::from_nanos(total / ring.len() as u64)
    }

    /// The instant silence from `host` crosses the suspicion threshold —
    /// the computable bound by which a dead host is always suspected.
    pub fn deadline(&self, host: usize) -> Nanos {
        self.last[host] + self.allowance(host)
    }

    /// Whether the router should suspect `host` at `now`.
    pub fn suspected(&self, host: usize, now: Nanos) -> bool {
        now >= self.deadline(host)
    }

    /// The last heartbeat arrival recorded for `host`.
    pub fn last_heartbeat(&self, host: usize) -> Nanos {
        self.last[host]
    }

    fn allowance(&self, host: usize) -> Nanos {
        let a = self.mean_gap(host).scale_f64(self.config.threshold);
        if a == Nanos::ZERO {
            Nanos::from_nanos(1)
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevf_sim::fault::unit_draw;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    /// Seeded on-time heartbeat stream: gaps within ±10% of the schedule.
    fn on_time_gap(seed: u64, host: u64, k: u64, base: Nanos) -> Nanos {
        let u = unit_draw(seed, 0xBEA7 ^ host, k);
        base.scale_f64(0.9 + 0.2 * u)
    }

    #[test]
    fn never_suspects_on_time_heartbeats() {
        // Property: with threshold 3 and gaps within ±10% of the base,
        // no probe between consecutive arrivals ever suspects the host.
        for seed in [1u64, 7, 42, 0xDEAD] {
            let mut det = PhiDetector::new(2, DetectorConfig::default(), ms(50));
            let mut now = Nanos::ZERO;
            for k in 0..200u64 {
                let gap = on_time_gap(seed, 0, k, ms(50));
                // Probe right up to the next arrival: still inside the
                // allowance, so never suspected.
                assert!(
                    !det.suspected(0, now + gap),
                    "seed {seed} beat {k}: suspected a live on-time host"
                );
                now += gap;
                det.heartbeat(0, now);
            }
        }
    }

    #[test]
    fn always_suspects_within_the_computable_bound() {
        // Property: after the last heartbeat, the host is suspected at
        // (and forever after) the published deadline, and not before the
        // instant just preceding it.
        for seed in [3u64, 11, 0xBEEF] {
            let mut det = PhiDetector::new(1, DetectorConfig::default(), ms(50));
            let mut now = Nanos::ZERO;
            for k in 0..50u64 {
                now += on_time_gap(seed, 0, k, ms(50));
                det.heartbeat(0, now);
            }
            let bound = det.deadline(0);
            assert!(bound > now);
            assert!(
                bound <= now + det.mean_gap(0).scale_f64(3.0) + Nanos::from_nanos(1),
                "bound must be threshold x mean"
            );
            assert!(!det.suspected(0, bound.saturating_sub(Nanos::from_nanos(1))));
            assert!(det.suspected(0, bound));
            assert!(det.suspected(0, bound + ms(1000)));
        }
    }

    #[test]
    fn verdicts_replay_and_are_host_order_independent() {
        // Property: the same per-host streams produce the same verdicts
        // whether hosts are fed in ascending, descending, or interleaved
        // order — state is Vec-indexed, never iterated from a map.
        let arrivals: Vec<Vec<Nanos>> = (0..4u64)
            .map(|h| {
                let mut now = Nanos::ZERO;
                (0..40u64)
                    .map(|k| {
                        now += on_time_gap(9, h, k, ms(40) + Nanos::from_millis(h * 5));
                        now
                    })
                    .collect()
            })
            .collect();
        let feed = |order: &[usize]| {
            let mut det = PhiDetector::new(4, DetectorConfig::default(), ms(40));
            // Round-major on purpose: host h's k-th beat lands between
            // the other hosts' k-th beats, exercising interleaving.
            #[allow(clippy::needless_range_loop)]
            for k in 0..40 {
                for &h in order {
                    det.heartbeat(h, arrivals[h][k]);
                }
            }
            let probe = ms(2000);
            (0..4)
                .map(|h| (det.deadline(h), det.suspected(h, probe)))
                .collect::<Vec<_>>()
        };
        let asc = feed(&[0, 1, 2, 3]);
        let desc = feed(&[3, 2, 1, 0]);
        let shuffled = feed(&[2, 0, 3, 1]);
        assert_eq!(asc, desc);
        assert_eq!(asc, shuffled);
        assert_eq!(asc, feed(&[0, 1, 2, 3]), "replay must be identical");
    }

    #[test]
    fn slow_links_earn_longer_allowances() {
        let mut det = PhiDetector::new(2, DetectorConfig::default(), ms(50));
        let mut now = Nanos::ZERO;
        for _ in 0..20 {
            now += ms(100); // host 0 consistently arrives slowly
            det.heartbeat(0, now);
        }
        assert!(det.mean_gap(0) >= ms(99));
        assert!(det.deadline(0) >= now + ms(290));
        // Host 1 never beat: its allowance stays at the expected gap.
        assert_eq!(det.mean_gap(1), ms(50));
    }

    #[test]
    fn config_validation_names_the_failure() {
        assert!(DetectorConfig::default().validate().is_ok());
        let bad = DetectorConfig {
            window: 0,
            ..DetectorConfig::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(crate::NetError::Detector(DetectorError::WindowZero))
        ));
        let bad = DetectorConfig {
            threshold: 0.5,
            ..DetectorConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
