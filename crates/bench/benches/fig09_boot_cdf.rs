//! Fig. 9 bench: full SEVeriFast boots (the CDF's fast series) and the
//! virtual-time mean reductions against QEMU/OVMF.

use criterion::{criterion_group, criterion_main, Criterion};
use severifast::experiments::{fig9_boot_cdfs, ExperimentScale};
use severifast::prelude::*;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function("severifast_end_to_end_boot", |b| {
        b.iter(|| {
            let mut machine = Machine::new(1);
            scale
                .boot(&mut machine, BootPolicy::Severifast, scale.kernels().remove(1))
                .expect("boot")
        })
    });
    group.finish();

    let series = fig9_boot_cdfs(&scale).expect("fig9");
    println!("\nFig. 9 (virtual time): end-to-end means");
    for s in &series {
        println!("  {:<18} {:<14} mean {:>9.1} ms", s.policy.name(), s.kernel, s.mean());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
