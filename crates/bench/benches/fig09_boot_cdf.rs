//! Fig. 9 bench: full SEVeriFast boots (the CDF's fast series) and the
//! virtual-time mean reductions against QEMU/OVMF.

use severifast::experiments::{fig9_boot_cdfs, ExperimentScale};
use severifast::prelude::*;
use sevf_bench::time_it;

fn main() {
    let scale = ExperimentScale::quick();
    time_it("fig09/severifast_end_to_end_boot", 10, || {
        let mut machine = Machine::new(1);
        scale
            .boot(
                &mut machine,
                BootPolicy::Severifast,
                scale.kernels().remove(1),
            )
            .expect("boot")
    });

    let series = fig9_boot_cdfs(&scale).expect("fig9");
    println!("\nFig. 9 (virtual time): end-to-end means");
    for s in &series {
        println!(
            "  {:<18} {:<14} mean {:>9.1} ms",
            s.policy.name(),
            s.kernel,
            s.mean()
        );
    }
}
