//! Fig. 12 bench: the discrete-event replay of concurrent launches, plus
//! the virtual-time sweep the figure plots.

use severifast::experiments::{fig12_concurrency, ExperimentScale};
use severifast::prelude::*;
use sevf_bench::time_it;
use sevf_vmm::concurrent;

fn main() {
    let scale = ExperimentScale::quick();
    let mut machine = Machine::new(1);
    let report = scale
        .boot(
            &mut machine,
            BootPolicy::Severifast,
            scale.kernels().remove(1),
        )
        .expect("boot");

    for n in [10usize, 50] {
        time_it(&format!("fig12/des_replay/{n}"), 10, || {
            concurrent::run_concurrent(&report, n)
        });
    }

    println!("\nFig. 12 (virtual time): mean boot vs concurrency");
    for row in fig12_concurrency(&scale).expect("fig12") {
        println!(
            "  {:<18} n={:<3} mean {:>9.1} ms  max {:>9.1} ms",
            row.policy.name(),
            row.concurrency,
            row.mean_ms,
            row.max_ms
        );
    }
}
