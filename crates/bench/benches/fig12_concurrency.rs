//! Fig. 12 bench: the discrete-event replay of concurrent launches, plus
//! the virtual-time sweep the figure plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use severifast::experiments::{fig12_concurrency, ExperimentScale};
use severifast::prelude::*;
use sevf_vmm::concurrent;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut machine = Machine::new(1);
    let report = scale
        .boot(&mut machine, BootPolicy::Severifast, scale.kernels().remove(1))
        .expect("boot");

    let mut group = c.benchmark_group("fig12_des_replay");
    group.sample_size(10);
    for n in [10usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| concurrent::run_concurrent(&report, n))
        });
    }
    group.finish();

    println!("\nFig. 12 (virtual time): mean boot vs concurrency");
    for row in fig12_concurrency(&scale).expect("fig12") {
        println!(
            "  {:<18} n={:<3} mean {:>9.1} ms  max {:>9.1} ms",
            row.policy.name(),
            row.concurrency,
            row.mean_ms,
            row.max_ms
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
