//! Fig. 11 bench: stock Firecracker vs SEVeriFast boots, plus the
//! virtual-time stacked-bar data.

use severifast::experiments::{fig11_breakdown, ExperimentScale};
use severifast::prelude::*;
use sevf_bench::time_it;

fn main() {
    let scale = ExperimentScale::quick();
    let kernel = scale.kernels().remove(1); // AWS config
    for policy in [BootPolicy::StockFirecracker, BootPolicy::Severifast] {
        time_it(&format!("fig11/{}", policy.name()), 10, || {
            let mut machine = Machine::new(1);
            scale
                .boot(&mut machine, policy, kernel.clone())
                .expect("boot")
        });
    }

    println!("\nFig. 11 (virtual time): boot breakdown");
    for row in fig11_breakdown(&scale).expect("fig11") {
        println!(
            "  {:<18} {:<14} vmm {:>7.2} verif {:>7.2} loader {:>7.2} linux {:>7.2} = {:>8.2} ms",
            row.policy.name(),
            row.kernel,
            row.vmm_ms,
            row.verification_ms,
            row.loader_ms,
            row.linux_ms,
            row.total_ms()
        );
    }
}
