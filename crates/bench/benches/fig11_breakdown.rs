//! Fig. 11 bench: stock Firecracker vs SEVeriFast boots, plus the
//! virtual-time stacked-bar data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use severifast::experiments::{fig11_breakdown, ExperimentScale};
use severifast::prelude::*;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let kernel = scale.kernels().remove(1); // AWS config
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for policy in [BootPolicy::StockFirecracker, BootPolicy::Severifast] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut machine = Machine::new(1);
                    scale.boot(&mut machine, policy, kernel.clone()).expect("boot")
                })
            },
        );
    }
    group.finish();

    println!("\nFig. 11 (virtual time): boot breakdown");
    for row in fig11_breakdown(&scale).expect("fig11") {
        println!(
            "  {:<18} {:<14} vmm {:>7.2} verif {:>7.2} loader {:>7.2} linux {:>7.2} = {:>8.2} ms",
            row.policy.name(),
            row.kernel,
            row.vmm_ms,
            row.verification_ms,
            row.loader_ms,
            row.linux_ms,
            row.total_ms()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
