//! Microbenchmarks of the from-scratch crypto primitives.
//!
//! These measure the *real* throughput of this repo's implementations on
//! the host machine — useful when judging how far the calibrated
//! virtual-time constants (SHA-NI-class 2 GB/s, PSP 4 MB/s) sit from a
//! portable software implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sevf_crypto::{hmac_sha384, sha256, sha384, Aes128, DhKeyPair, XexCipher};

fn bench(c: &mut Criterion) {
    let data_64k = vec![0xa5u8; 64 * 1024];

    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Bytes(data_64k.len() as u64));
    group.bench_function("sha256_64k", |b| b.iter(|| sha256(&data_64k)));
    group.bench_function("sha384_64k", |b| b.iter(|| sha384(&data_64k)));
    group.bench_function("hmac_sha384_64k", |b| b.iter(|| hmac_sha384(b"key", &data_64k)));
    group.finish();

    let mut group = c.benchmark_group("aes");
    let cipher = Aes128::new(&[7u8; 16]);
    let block = [0x11u8; 16];
    group.throughput(Throughput::Bytes(16));
    group.bench_function("encrypt_block", |b| b.iter(|| cipher.encrypt_block(&block)));
    let xex = XexCipher::new(&[7u8; 16]);
    let page = vec![0x22u8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("xex_page", |b| b.iter(|| xex.encrypt(0x1000, &page)));
    group.finish();

    let mut group = c.benchmark_group("dh");
    group.sample_size(10);
    {
        let seed = "alice";
        group.bench_with_input(BenchmarkId::from_parameter(seed), &seed, |b, seed| {
            b.iter(|| DhKeyPair::from_seed(seed.as_bytes()))
        });
    }
    let a = DhKeyPair::from_seed(b"a");
    let bkey = DhKeyPair::from_seed(b"b").public_key();
    group.bench_function("shared_secret", |b| b.iter(|| a.shared_secret(&bkey)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
