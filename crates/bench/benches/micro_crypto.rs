//! Microbenchmarks of the from-scratch crypto primitives.
//!
//! These measure the *real* throughput of this repo's implementations on
//! the host machine — useful when judging how far the calibrated
//! virtual-time constants (SHA-NI-class 2 GB/s, PSP 4 MB/s) sit from a
//! portable software implementation.

use sevf_bench::time_it;
use sevf_crypto::{hmac_sha384, sha256, sha384, Aes128, DhKeyPair, XexCipher};

fn main() {
    let data_64k = vec![0xa5u8; 64 * 1024];

    time_it("hash/sha256_64k", 20, || sha256(&data_64k));
    time_it("hash/sha384_64k", 20, || sha384(&data_64k));
    time_it("hash/hmac_sha384_64k", 20, || {
        hmac_sha384(b"key", &data_64k)
    });

    let cipher = Aes128::new(&[7u8; 16]);
    let block = [0x11u8; 16];
    time_it("aes/encrypt_block", 100, || cipher.encrypt_block(&block));
    let xex = XexCipher::new(&[7u8; 16]);
    let page = vec![0x22u8; 4096];
    time_it("aes/xex_page", 50, || xex.encrypt(0x1000, &page));

    time_it("dh/from_seed", 10, || DhKeyPair::from_seed(b"alice"));
    let a = DhKeyPair::from_seed(b"a");
    let bkey = DhKeyPair::from_seed(b"b").public_key();
    time_it("dh/shared_secret", 10, || a.shared_secret(&bkey));
}
