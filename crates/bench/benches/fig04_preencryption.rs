//! Fig. 4 bench: the functional cost of `LAUNCH_UPDATE_DATA` — measuring
//! (SHA-384 chaining) and encrypting real pages — across component sizes,
//! plus the virtual-time line the figure plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use severifast::experiments::fig4_preencryption;
use severifast::prelude::*;
use sevf_mem::GuestMemory;
use sevf_psp::Psp;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_launch_update_data");
    group.sample_size(10);
    for kb in [16u64, 256, 1024] {
        let bytes = kb * 1024;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(kb), &bytes, |b, &bytes| {
            b.iter(|| {
                let mut psp = Psp::new(CostModel::calibrated(), 1);
                let start = psp.launch_start(SevGeneration::SevSnp).expect("start");
                let mut mem =
                    GuestMemory::new_sev(bytes + (1 << 20), start.memory_key, SevGeneration::SevSnp);
                psp.launch_update_data(start.guest, &mut mem, 0, bytes)
                    .expect("update")
            })
        });
    }
    group.finish();

    println!("\nFig. 4 (virtual time): pre-encryption vs size");
    for p in fig4_preencryption() {
        if !p.label.is_empty() {
            println!("  {:<26} {:>8.1} KiB  {:>10.2} ms", p.label, p.bytes as f64 / 1024.0, p.ms);
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
