//! Fig. 4 bench: the functional cost of `LAUNCH_UPDATE_DATA` — measuring
//! (SHA-384 chaining) and encrypting real pages — across component sizes,
//! plus the virtual-time line the figure plots.

use severifast::experiments::fig4_preencryption;
use severifast::prelude::*;
use sevf_bench::time_it;
use sevf_mem::GuestMemory;
use sevf_psp::Psp;

fn main() {
    for kb in [16u64, 256, 1024] {
        let bytes = kb * 1024;
        time_it(&format!("fig04/launch_update_data/{kb}k"), 10, || {
            let mut psp = Psp::new(CostModel::calibrated(), 1);
            let start = psp.launch_start(SevGeneration::SevSnp).expect("start");
            let mut mem =
                GuestMemory::new_sev(bytes + (1 << 20), start.memory_key, SevGeneration::SevSnp);
            psp.launch_update_data(start.guest, &mut mem, 0, bytes)
                .expect("update")
        });
    }

    println!("\nFig. 4 (virtual time): pre-encryption vs size");
    for p in fig4_preencryption() {
        if !p.label.is_empty() {
            println!(
                "  {:<26} {:>8.1} KiB  {:>10.2} ms",
                p.label,
                p.bytes as f64 / 1024.0,
                p.ms
            );
        }
    }
}
