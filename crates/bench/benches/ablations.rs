//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! These are virtual-time what-ifs, printed after a token wall-clock run:
//!
//! * **verifier features** — what the kitchen-sink verifier (generate
//!   everything in the guest, carry both loaders) costs in pre-encryption;
//! * **huge pages** — the §6.1 pvalidate observation;
//! * **PSP speed** — how much faster the PSP must get before the Fig. 12
//!   bottleneck stops mattering at serverless scale;
//! * **SEV generations** — SEV vs SEV-ES vs SEV-SNP boot cost.

use severifast::experiments::ExperimentScale;
use severifast::prelude::*;
use sevf_bench::time_it;
use sevf_sim::cost::{PAGE_2M, PAGE_4K};
use sevf_verifier::binary::VerifierFeatures;
use sevf_vmm::concurrent;

fn main() {
    {
        let scale = ExperimentScale::quick();
        time_it("ablation/severifast_quick_boot", 10, || {
            let mut machine = Machine::new(1);
            scale
                .boot(
                    &mut machine,
                    BootPolicy::Severifast,
                    scale.kernels().remove(0),
                )
                .expect("boot")
        });
    }

    let cost = CostModel::calibrated();

    println!("\nAblation: verifier feature sets → binary size → pre-encryption");
    for (name, features) in [
        ("severifast (bzImage)", VerifierFeatures::severifast()),
        (
            "severifast (vmlinux)",
            VerifierFeatures::severifast_vmlinux(),
        ),
        ("kitchen sink", VerifierFeatures::kitchen_sink()),
    ] {
        let size = features.binary_size();
        println!(
            "  {:<22} {:>6} B  pre-encrypt {:>6.2} ms",
            name,
            size,
            cost.psp_pre_encrypt_bytes(size).as_millis_f64()
        );
    }

    println!("\nAblation: pvalidate sweep of 256 MB (§6.1)");
    let mb256 = 256 * 1024 * 1024u64;
    println!(
        "  4 KiB pages: {:>8.2} ms   2 MiB pages: {:>6.3} ms",
        cost.pvalidate_sweep(mb256, PAGE_4K).as_millis_f64(),
        cost.pvalidate_sweep(mb256, PAGE_2M).as_millis_f64()
    );

    println!("\nAblation: PSP speedup vs mean boot at 50 concurrent guests");
    let scale = ExperimentScale::quick();
    for speedup in [1u64, 2, 4, 8] {
        let mut cost = CostModel::calibrated();
        cost.psp_encrypt_ps_per_byte /= speedup;
        cost.psp_rmp_init_per_2mb =
            Nanos::from_nanos(cost.psp_rmp_init_per_2mb.as_nanos() / speedup);
        let mut machine = Machine::with_cost_model(1, cost);
        let vm = MicroVm::new({
            let mut c = VmConfig::test_tiny(BootPolicy::Severifast);
            c.kernel = scale.kernels().remove(1);
            c
        })
        .expect("vm");
        vm.register_expected(&mut machine).expect("register");
        let mut report = vm.boot(&mut machine).expect("boot");
        report.timeline = report.timeline.filtered(|p| p.counts_as_boot());
        let point = concurrent::run_concurrent(&report, 50);
        println!(
            "  PSP {speedup}x: mean {:>9.1} ms (psp busy/VM {:>6.2} ms)",
            point.summary.mean,
            report.psp_busy.as_millis_f64()
        );
    }

    println!("\nFuture work (§6.2): shared-key template launches at 50 concurrent");
    {
        let scale = ExperimentScale::quick();
        let normal = severifast::experiments::fig12_concurrency(&scale).expect("fig12");
        let shared =
            severifast::experiments::futurework_shared_key_concurrency(&scale).expect("fw");
        let pick = |rows: &[severifast::experiments::ConcurrencyRow]| {
            rows.iter()
                .rfind(|r| r.policy == BootPolicy::Severifast)
                .map(|r| (r.concurrency, r.mean_ms))
                .expect("rows")
        };
        let (n, normal_ms) = pick(&normal);
        let (_, shared_ms) = pick(&shared);
        println!("  n={n}: normal launch {normal_ms:>8.1} ms  shared-key {shared_ms:>8.1} ms");
    }

    println!("\nAblation: SEV generation vs boot time (tiny kernel)");
    for generation in [
        SevGeneration::Sev,
        SevGeneration::SevEs,
        SevGeneration::SevSnp,
    ] {
        let mut machine = Machine::new(1);
        machine.owner.set_required_generation(generation);
        let mut config = VmConfig::test_tiny(BootPolicy::Severifast);
        config.generation = generation;
        let vm = MicroVm::new(config).expect("vm");
        vm.register_expected(&mut machine).expect("register");
        match vm.boot(&mut machine) {
            Ok(report) => println!(
                "  {:<8} boot {:>8.2} ms",
                generation.name(),
                report.boot_time().as_millis_f64()
            ),
            Err(e) => println!("  {:<8} ({e})", generation.name()),
        }
    }
}
