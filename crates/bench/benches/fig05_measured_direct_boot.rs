//! Fig. 5 bench: the boot verifier's measured-direct-boot of a bzImage —
//! real copy into encrypted memory, real SHA-256, real LZ4 decompression —
//! per codec, plus the virtual-time figure rows.

use severifast::experiments::{fig5_measured_direct_boot, ExperimentScale};
use severifast::prelude::*;
use sevf_bench::time_it;

fn main() {
    let scale = ExperimentScale::quick();
    let kernel = scale.kernels().remove(1); // AWS config
    for codec in [Codec::None, Codec::Lz4] {
        let policy = if codec == Codec::None {
            BootPolicy::SeverifastVmlinux
        } else {
            BootPolicy::Severifast
        };
        time_it(
            &format!("fig05/measured_direct_boot/{}", codec.name()),
            10,
            || {
                let mut machine = Machine::new(1);
                scale
                    .boot(&mut machine, policy, kernel.clone())
                    .expect("boot")
            },
        );
    }

    println!("\nFig. 5 (virtual time): copy+hash+decompress per codec");
    for row in fig5_measured_direct_boot(&scale) {
        println!(
            "  {:<18} {:<5} copy {:>7.2} hash {:>7.2} decompress {:>7.2} = {:>8.2} ms",
            row.component,
            row.codec.name(),
            row.copy_ms,
            row.hash_ms,
            row.decompress_ms,
            row.total_ms()
        );
    }
}
