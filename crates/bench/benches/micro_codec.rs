//! Microbenchmarks of the from-scratch codecs on kernel-like content.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sevf_codec::Codec;
use sevf_image::content::{generate, ContentProfile};

fn bench(c: &mut Criterion) {
    let data = generate(ContentProfile::aws(), 256 * 1024, b"bench");

    let mut group = c.benchmark_group("compress_256k");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| codec.compress(&data))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress_256k");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        let packed = codec.compress(&data);
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &packed,
            |b, packed| b.iter(|| codec.decompress(packed).expect("roundtrip")),
        );
    }
    group.finish();

    println!("\nCompression ratios on AWS-profile content (256 KiB):");
    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        let packed = codec.compress(&data);
        println!(
            "  {:<5} {:>7} B  ({:.2}x)",
            codec.name(),
            packed.len(),
            data.len() as f64 / packed.len() as f64
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
