//! Microbenchmarks of the from-scratch codecs on kernel-like content.

use sevf_bench::time_it;
use sevf_codec::Codec;
use sevf_image::content::{generate, ContentProfile};

fn main() {
    let data = generate(ContentProfile::aws(), 256 * 1024, b"bench");

    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        time_it(&format!("compress_256k/{}", codec.name()), 10, || {
            codec.compress(&data)
        });
    }

    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        let packed = codec.compress(&data);
        time_it(&format!("decompress_256k/{}", codec.name()), 10, || {
            codec.decompress(&packed).expect("roundtrip")
        });
    }

    println!("\nCompression ratios on AWS-profile content (256 KiB):");
    for codec in [Codec::Lz4, Codec::Deflate, Codec::Zstd] {
        let packed = codec.compress(&data);
        println!(
            "  {:<5} {:>7} B  ({:.2}x)",
            codec.name(),
            packed.len(),
            data.len() as f64 / packed.len() as f64
        );
    }
}
