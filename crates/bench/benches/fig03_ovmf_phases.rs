//! Fig. 3 bench: one QEMU/OVMF SEV-SNP boot, end to end.
//!
//! Wall-clock timing covers the *simulation* of the boot (the functional
//! work: pre-encryption hashing, measured direct boot, decompression); the
//! figure's virtual-time data is printed at the end.

use severifast::experiments::{fig3_ovmf_phases, ExperimentScale};
use severifast::prelude::*;
use sevf_bench::time_it;

fn main() {
    let scale = ExperimentScale::quick();
    time_it("fig03/ovmf_snp_boot", 10, || {
        let mut machine = Machine::new(1);
        scale
            .boot(
                &mut machine,
                BootPolicy::QemuOvmf,
                scale.kernels().remove(1),
            )
            .expect("ovmf boot")
    });

    let slices = fig3_ovmf_phases(&scale).expect("fig3");
    let total: f64 = slices.iter().map(|s| s.ms).sum();
    println!("\nFig. 3 (virtual time): OVMF SNP boot = {total:.1} ms");
    for s in &slices {
        println!("  {:<18} {:>9.2} ms", s.label, s.ms);
    }
}
