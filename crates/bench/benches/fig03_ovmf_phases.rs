//! Fig. 3 bench: one QEMU/OVMF SEV-SNP boot, end to end.
//!
//! Criterion times the *simulation* of the boot (the functional work:
//! pre-encryption hashing, measured direct boot, decompression); the
//! figure's virtual-time data is printed once at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use severifast::experiments::{fig3_ovmf_phases, ExperimentScale};
use severifast::prelude::*;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig03");
    group.sample_size(10);
    group.bench_function("ovmf_snp_boot", |b| {
        b.iter(|| {
            let mut machine = Machine::new(1);
            scale
                .boot(&mut machine, BootPolicy::QemuOvmf, scale.kernels().remove(1))
                .expect("ovmf boot")
        })
    });
    group.finish();

    let slices = fig3_ovmf_phases(&scale).expect("fig3");
    let total: f64 = slices.iter().map(|s| s.ms).sum();
    println!("\nFig. 3 (virtual time): OVMF SNP boot = {total:.1} ms");
    for s in &slices {
        println!("  {:<18} {:>9.2} ms", s.label, s.ms);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
