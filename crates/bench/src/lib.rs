//! Shared rendering/serialization helpers for the benchmark harness.
//!
//! The `figures` binary regenerates every table and figure of the paper;
//! the Criterion benches under `benches/` time the experiment drivers and
//! the from-scratch primitives. This library holds the bits both share:
//! text-table rendering and the JSON emitter whose output EXPERIMENTS.md is
//! built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Renders a fixed-width text table.
///
/// # Example
///
/// ```
/// let t = sevf_bench::render_table(
///     &["name", "ms"],
///     &[vec!["boot".to_string(), "40.0".to_string()]],
/// );
/// assert!(t.contains("boot"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A serialized figure: identifier, caption, and free-form data.
#[derive(Debug, Serialize)]
pub struct FigureDump {
    /// Figure/table identifier ("fig3", "fig10", "mem", ...).
    pub id: String,
    /// What the paper's version shows.
    pub caption: String,
    /// The data series, shaped per figure.
    pub data: serde_json::Value,
}

/// Writes figure dumps as pretty JSON into `dir/<id>.json`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_dumps(dir: &std::path::Path, dumps: &[FigureDump]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for dump in dumps {
        let path = dir.join(format!("{}.json", dump.id));
        std::fs::write(&path, serde_json::to_string_pretty(dump).expect("serializable"))?;
    }
    Ok(())
}

/// Formats a byte count in MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats milliseconds with two decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xxxxxx".into(), "1".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.5");
        assert_eq!(fmt_ms(8.216), "8.22");
    }
}
