//! Shared rendering/serialization helpers for the benchmark harness.
//!
//! The `figures` binary regenerates every table and figure of the paper;
//! the benches under `benches/` time the experiment drivers and the
//! from-scratch primitives. This library holds the bits both share: text-
//! table rendering, a dependency-free JSON emitter whose output
//! EXPERIMENTS.md is built from, and a small wall-clock timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Renders a fixed-width text table.
///
/// # Example
///
/// ```
/// let t = sevf_bench::render_table(
///     &["name", "ms"],
///     &[vec!["boot".to_string(), "40.0".to_string()]],
/// );
/// assert!(t.contains("boot"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A minimal JSON value for figure dumps.
///
/// The figure data is plain numbers/strings in arrays of objects; a full
/// serialization framework buys nothing here and the repository builds
/// offline, so this emitter is hand-rolled. Object keys are kept in a
/// `BTreeMap` so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (emitted via `f64`; integers print without `.0`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation (stable across runs).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// A serialized figure: identifier, caption, and free-form data.
#[derive(Debug)]
pub struct FigureDump {
    /// Figure/table identifier ("fig3", "fig10", "mem", ...).
    pub id: String,
    /// What the paper's version shows.
    pub caption: String,
    /// The data series, shaped per figure.
    pub data: Json,
}

impl FigureDump {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("caption", Json::Str(self.caption.clone())),
            ("data", self.data.clone()),
        ])
    }
}

/// Writes figure dumps as pretty JSON into `dir/<id>.json`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_dumps(dir: &std::path::Path, dumps: &[FigureDump]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for dump in dumps {
        let path = dir.join(format!("{}.json", dump.id));
        std::fs::write(&path, dump.to_json().to_pretty())?;
    }
    Ok(())
}

/// The unified cross-arm benchmark snapshot (`BENCH_*.json` schema).
///
/// Every bench arm — net, attplane, fleet, cluster, perf — emits the same
/// shape: which bench ran, under which seed, what it counted, total
/// wall-clock, and the derived rates. ci.sh appends each snapshot to
/// `BENCH_trajectory.jsonl` (so speedup claims have a history instead of an
/// overwritten file) and diff-gates `BENCH_perf.json` against the committed
/// `BENCH_baseline.json`.
///
/// # Example
///
/// ```
/// let snap = sevf_bench::BenchSnapshot::new("net", 42)
///     .count("requests_completed", 1000)
///     .wall(0.5)
///     .rate("wall_us_per_request", 500.0);
/// let text = snap.render();
/// assert!(text.contains("\"bench\": \"net\""));
/// assert!(text.contains("\"requests_completed\": 1000"));
/// ```
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Bench arm name ("net", "attplane", "fleet", "cluster", "perf").
    pub bench: String,
    /// Seed the workload was generated from.
    pub seed: u64,
    /// What the run processed (requests, events, pages, ...).
    pub counts: Vec<(String, u64)>,
    /// Total wall-clock for the measured section, in seconds.
    pub wall_secs: f64,
    /// Derived rates (us-per-request, MB/s, events/s, speedups, ...).
    pub rates: Vec<(String, f64)>,
}

impl BenchSnapshot {
    /// Starts a snapshot for `bench` under `seed`.
    pub fn new(bench: impl Into<String>, seed: u64) -> Self {
        BenchSnapshot {
            bench: bench.into(),
            seed,
            counts: Vec::new(),
            wall_secs: 0.0,
            rates: Vec::new(),
        }
    }

    /// Adds a count (builder style).
    pub fn count(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counts.push((name.into(), value));
        self
    }

    /// Sets the measured wall-clock seconds (builder style).
    pub fn wall(mut self, secs: f64) -> Self {
        self.wall_secs = secs;
        self
    }

    /// Adds a derived rate (builder style).
    pub fn rate(mut self, name: impl Into<String>, value: f64) -> Self {
        self.rates.push((name.into(), value));
        self
    }

    /// The snapshot as a [`Json`] object (deterministic key order).
    pub fn to_json(&self) -> Json {
        let counts: BTreeMap<String, Json> = self
            .counts
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect();
        let rates: BTreeMap<String, Json> = self
            .rates
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect();
        Json::obj([
            ("bench", Json::Str(self.bench.clone())),
            ("seed", Json::from(self.seed)),
            ("counts", Json::Obj(counts)),
            ("wall_secs", Json::from(self.wall_secs)),
            ("rates", Json::Obj(rates)),
        ])
    }

    /// Pretty-printed JSON, ready to write to a `BENCH_*.json` file.
    pub fn render(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// Formats a byte count in MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats milliseconds with two decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

/// Times `f` over `iters` runs and prints mean/min wall-clock per run.
///
/// Replaces the external Criterion harness for the `benches/` entry points:
/// the repository builds offline, and these benches only need honest
/// wall-clock numbers next to the virtual-time figures they print.
pub fn time_it<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    assert!(iters > 0);
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
        best = best.min(elapsed);
        total += elapsed;
    }
    println!(
        "{name:<40} {iters:>3} iters  mean {:>9.3} ms  min {:>9.3} ms",
        total / iters as f64,
        best
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(&["a", "long-header"], &[vec!["xxxxxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.5");
        assert_eq!(fmt_ms(8.216), "8.22");
    }

    #[test]
    fn json_emits_deterministic_pretty_output() {
        let v = Json::obj([
            ("b", Json::from(2u64)),
            (
                "a",
                Json::Arr(vec![Json::from("x\n"), Json::Null, Json::Bool(true)]),
            ),
            ("c", Json::from(1.5)),
        ]);
        let text = v.to_pretty();
        // Keys are sorted; integral floats print as integers; strings escape.
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
        assert!(text.contains("\"x\\n\""));
        assert!(text.contains("2,") || text.contains("2\n"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]");
        assert_eq!(Json::Obj(Default::default()).to_pretty(), "{}");
    }

    #[test]
    fn timer_runs_closure() {
        let mut calls = 0;
        time_it("noop", 3, || calls += 1);
        assert_eq!(calls, 3);
    }

    #[test]
    fn snapshot_schema_is_stable() {
        let snap = BenchSnapshot::new("perf", 7)
            .count("jobs", 100)
            .count("events", 350)
            .wall(1.25)
            .rate("events_per_sec", 280.0);
        let text = snap.render();
        // Top-level keys in BTreeMap order; nested maps deterministic too.
        let bench_pos = text.find("\"bench\"").unwrap();
        let counts_pos = text.find("\"counts\"").unwrap();
        let rates_pos = text.find("\"rates\"").unwrap();
        let seed_pos = text.find("\"seed\"").unwrap();
        let wall_pos = text.find("\"wall_secs\"").unwrap();
        assert!(bench_pos < counts_pos && counts_pos < rates_pos);
        assert!(rates_pos < seed_pos && seed_pos < wall_pos);
        assert!(text.contains("\"events\": 350"));
        assert!(text.contains("1.25"));
    }
}
