//! The `perf_sweep` bench arm: raw-speed microbenchmarks for the two hot
//! paths the simulator lives on.
//!
//! * **DES engine** — one workload, two engines: the calendar-queue
//!   [`sevf_sim::DesEngine`] against the heap-based
//!   [`sevf_sim::reference::HeapEngine`] it replaced. Both must produce
//!   identical outcomes (checked every run, and checksummed so the `--json`
//!   replay gate pins the workload); the wall-clock ratio is the honest
//!   speedup number that `BENCH_perf.json` reports and ci.sh gates.
//! * **Measurement path** — full SHA-384 launch-digest chaining over a page
//!   set, against [`sevf_psp::IncrementalChain`] re-measuring with a small
//!   dirty suffix (the §6.2 template-hit shape) and against the two-level
//!   [`sevf_psp::paged_measure`] with a warm [`sevf_psp::PageDigestCache`].
//!
//! Everything here is deterministic in the seed *except* the wall-clock
//! fields, which is why the example splits output: `--json` prints only the
//! deterministic facts (byte-diffable in CI), `--bench` prints the
//! wall-clock snapshot (appended to the trajectory, gated with a tolerance
//! band).

use std::time::Instant;

use sevf_psp::{
    paged_measure, IncrementalChain, MeasurementChain, PageDigestCache, PageRef, PageType,
};
use sevf_sim::reference::HeapEngine;
use sevf_sim::rng::XorShift64;
use sevf_sim::{DesEngine, Job, JobOutcome, Nanos, Segment};

/// Workload sizes for one perf sweep.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Jobs in the DES microbench.
    pub jobs: usize,
    /// 4 KiB pages in the measurement microbench.
    pub pages: usize,
    /// Pages dirtied between measurements (template-hit shape).
    pub dirty: usize,
    /// Timed iterations per engine; the minimum wall-clock is reported,
    /// which damps first-touch page-fault and scheduling noise.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
}

impl PerfConfig {
    /// Full-size sweep (the committed baseline's scale).
    pub fn full() -> Self {
        PerfConfig {
            jobs: 12_000_000,
            pages: 1024,
            dirty: 32,
            iters: 2,
            seed: 42,
        }
    }

    /// Quick sweep for the CI inner loop.
    pub fn quick() -> Self {
        PerfConfig {
            jobs: 20_000,
            pages: 256,
            dirty: 8,
            iters: 1,
            seed: 42,
        }
    }
}

/// Result of the DES engine microbench.
#[derive(Debug, Clone, Copy)]
pub struct DesPerf {
    /// Jobs simulated.
    pub jobs: u64,
    /// Events the scheduler processed (releases + segment completions).
    pub events: u64,
    /// Wall-clock of the calendar-queue engine run.
    pub calendar_secs: f64,
    /// Wall-clock of the heap reference engine run.
    pub heap_secs: f64,
    /// Order-sensitive checksum over every outcome (deterministic in the
    /// seed; the `--json` replay gate diffs it).
    pub outcome_checksum: u64,
    /// Whether both engines produced identical outcome sequences.
    pub engines_agree: bool,
}

impl DesPerf {
    /// Microseconds of wall-clock per simulated request, calendar engine.
    pub fn us_per_request(&self) -> f64 {
        self.calendar_secs * 1e6 / self.jobs as f64
    }

    /// Microseconds per simulated request on the heap reference engine.
    pub fn us_per_request_heap(&self) -> f64 {
        self.heap_secs * 1e6 / self.jobs as f64
    }

    /// Heap-time over calendar-time: the engine-swap speedup.
    pub fn speedup(&self) -> f64 {
        self.heap_secs / self.calendar_secs
    }

    /// Events per second through the calendar engine.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.calendar_secs
    }
}

/// Builds one engine of each kind with identical resource tables. Resource
/// ids are index-based, so both engines hand out the same ids and one job
/// vec drives both.
fn fresh_engines() -> (DesEngine, HeapEngine) {
    let mut cal = DesEngine::new();
    let mut heap = HeapEngine::new();
    let psp_a = cal.add_resource("psp", 1);
    let cpu_a = cal.add_resource("cpu", 16);
    let psp_b = heap.add_resource("psp", 1);
    let cpu_b = heap.add_resource("cpu", 16);
    assert_eq!(psp_a, psp_b);
    assert_eq!(cpu_a, cpu_b);
    (cal, heap)
}

/// Builds the DES microbench workload: delay-dominated attestation round
/// trips plus a slice of PSP/CPU launches, with releases spread across the
/// calendar window so the pending-event set stays in the millions (the
/// regime where the heap engine's log-depth, cache-missing sifts dominate).
fn build_workload(cfg: PerfConfig) -> Vec<Job> {
    let mut scratch = DesEngine::new();
    let psp_a = scratch.add_resource("psp", 1);
    let cpu_a = scratch.add_resource("cpu", 16);

    let mut rng = XorShift64::new(cfg.seed);
    // Releases spread across half the calendar window and delays up to 2 s:
    // at full scale the pending-event set holds millions of future releases
    // plus every in-flight delay, which is where the heap's log-depth,
    // cache-missing sifts dominate and the calendar's O(1) pushes do not.
    let span_ns = 4_000_000_000u64;
    (0..cfg.jobs)
        .map(|_| {
            let release = Nanos::from_nanos(rng.next_below(span_ns));
            let segments = match rng.next_below(10) {
                // 80%: attestation round trips — two network delays.
                0..=7 => vec![
                    Segment::delay(
                        Nanos::from_nanos(1_000_000 + rng.next_below(2_000_000_000)),
                        "net",
                    ),
                    Segment::delay(
                        Nanos::from_nanos(1_000_000 + rng.next_below(2_000_000_000)),
                        "net",
                    ),
                ],
                // 10%: template-hit launch (cpu setup, short psp).
                8 => vec![
                    Segment::on(cpu_a, Nanos::from_nanos(500 + rng.next_below(2_000)), "cpu"),
                    Segment::on(psp_a, Nanos::from_nanos(200 + rng.next_below(800)), "psp"),
                ],
                // 10%: warm invoke (pure cpu).
                _ => vec![Segment::on(
                    cpu_a,
                    Nanos::from_nanos(300 + rng.next_below(700)),
                    "cpu",
                )],
            };
            Job::released_at(release, segments)
        })
        .collect()
}

fn checksum(outcomes: &[JobOutcome]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for o in outcomes {
        for v in [
            o.job as u64,
            o.release.as_nanos(),
            o.finish.as_nanos(),
            o.queued.as_nanos(),
        ] {
            acc = (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    acc
}

/// Runs the DES microbench: the same workload through both engines,
/// `cfg.iters` times each, keeping the minimum wall-clock per engine.
pub fn des_perf(cfg: PerfConfig) -> DesPerf {
    let jobs = build_workload(cfg);
    let events: u64 = jobs.iter().map(|j| 1 + j.segments.len() as u64).sum();

    let mut calendar_secs = f64::INFINITY;
    let mut heap_secs = f64::INFINITY;
    let mut engines_agree = true;
    let mut outcome_checksum = 0u64;
    for _ in 0..cfg.iters.max(1) {
        let (mut cal, mut heap) = fresh_engines();
        // Clone outside the timed regions: both engines consume an
        // identical, pre-built job vec, so neither is charged for the
        // allocator work of building it.
        let jobs_for_cal = jobs.clone();
        let jobs_for_heap = jobs.clone();

        let start = Instant::now();
        let fast = cal.run(jobs_for_cal);
        calendar_secs = calendar_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let slow = heap.run(jobs_for_heap);
        heap_secs = heap_secs.min(start.elapsed().as_secs_f64());

        engines_agree &= fast == slow;
        outcome_checksum = checksum(&fast);
    }

    DesPerf {
        jobs: jobs.len() as u64,
        events,
        calendar_secs,
        heap_secs,
        outcome_checksum,
        engines_agree,
    }
}

/// Result of the measurement-path microbench.
#[derive(Debug, Clone)]
pub struct HashPerf {
    /// Pages measured.
    pub pages: u64,
    /// Bytes in the measured image.
    pub bytes: u64,
    /// Pages dirtied before the incremental re-measure.
    pub dirty: u64,
    /// Wall-clock of the full chain measurement.
    pub full_secs: f64,
    /// Wall-clock of the incremental re-measure (dirty suffix only).
    pub incremental_secs: f64,
    /// Wall-clock of the warm two-level paged re-measure.
    pub paged_warm_secs: f64,
    /// Full-chain digest (hex; deterministic, replay-gated).
    pub full_digest_hex: String,
    /// Whether the incremental digest equals the full re-hash.
    pub incremental_matches_full: bool,
    /// Page-digest cache hits during the warm paged measure.
    pub paged_cache_hits: u64,
}

impl HashPerf {
    /// MB/s of the full-chain measurement (the PSP-model hot loop).
    pub fn full_mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.full_secs
    }

    /// Effective MB/s of the incremental re-measure, counted over the whole
    /// image it re-validated (the §6.2 payoff metric).
    pub fn incremental_mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.incremental_secs
    }

    /// Effective MB/s of the warm paged re-measure.
    pub fn paged_warm_mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.paged_warm_secs
    }
}

fn refs(pages: &[[u8; 4096]]) -> Vec<PageRef<'_>> {
    pages
        .iter()
        .enumerate()
        .map(|(i, data)| PageRef {
            gpa: i as u64 * 4096,
            page_type: PageType::Normal,
            data,
        })
        .collect()
}

fn hex48(d: &[u8; 48]) -> String {
    let mut s = String::with_capacity(96);
    for b in d {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Runs the measurement microbench: full chain vs incremental vs paged.
pub fn hash_perf(cfg: PerfConfig) -> HashPerf {
    let mut rng = XorShift64::new(cfg.seed ^ 0xda7a);
    let mut pages: Vec<[u8; 4096]> = (0..cfg.pages)
        .map(|_| {
            let mut p = [0u8; 4096];
            for chunk in p.chunks_exact_mut(8) {
                chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
            p
        })
        .collect();
    let dirty = cfg.dirty.min(cfg.pages);

    // Full chain over the clean image.
    let start = Instant::now();
    let mut chain = MeasurementChain::new();
    for r in refs(&pages) {
        chain.add_page(r.gpa, r.data);
    }
    let full_secs = start.elapsed().as_secs_f64();
    let full_digest = chain.finalize();

    // Incremental: prime on the clean image, dirty the tail (boot params /
    // CPUID pages in a template hit), re-measure.
    let mut inc = IncrementalChain::new();
    inc.measure(&refs(&pages));
    // Paged: prime the content cache on the clean image too.
    let mut cache = PageDigestCache::new();
    paged_measure(&refs(&pages), &mut cache);

    for p in pages.iter_mut().rev().take(dirty) {
        p[0] = p[0].wrapping_add(1);
        p[4095] ^= 0x5a;
    }

    let start = Instant::now();
    let inc_digest = inc.measure(&refs(&pages));
    let incremental_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    paged_measure(&refs(&pages), &mut cache);
    let paged_warm_secs = start.elapsed().as_secs_f64();

    // The incremental digest must equal a from-scratch chain of the dirtied
    // image.
    let mut verify = MeasurementChain::new();
    for r in refs(&pages) {
        verify.add_page(r.gpa, r.data);
    }

    HashPerf {
        pages: cfg.pages as u64,
        bytes: cfg.pages as u64 * 4096,
        dirty: dirty as u64,
        full_secs,
        incremental_secs,
        paged_warm_secs,
        full_digest_hex: hex48(&full_digest),
        incremental_matches_full: inc_digest == verify.finalize(),
        paged_cache_hits: cache.hits(),
    }
}

/// One full perf sweep: both microbenches.
#[derive(Debug, Clone)]
pub struct PerfSweep {
    /// The config it ran under.
    pub cfg: PerfConfig,
    /// DES engine results.
    pub des: DesPerf,
    /// Measurement-path results.
    pub hash: HashPerf,
}

/// Runs the whole sweep.
pub fn run_sweep(cfg: PerfConfig) -> PerfSweep {
    PerfSweep {
        cfg,
        des: des_perf(cfg),
        hash: hash_perf(cfg),
    }
}

impl PerfSweep {
    /// The unified wall-clock snapshot (`BENCH_perf.json`).
    pub fn snapshot(&self) -> crate::BenchSnapshot {
        crate::BenchSnapshot::new("perf", self.cfg.seed)
            .count("des_jobs", self.des.jobs)
            .count("des_events", self.des.events)
            .count("pages", self.hash.pages)
            .count("dirty_pages", self.hash.dirty)
            .wall(
                self.des.calendar_secs
                    + self.des.heap_secs
                    + self.hash.full_secs
                    + self.hash.incremental_secs
                    + self.hash.paged_warm_secs,
            )
            .rate("wall_us_per_simulated_request", self.des.us_per_request())
            .rate(
                "wall_us_per_simulated_request_heap",
                self.des.us_per_request_heap(),
            )
            .rate("des_speedup", self.des.speedup())
            .rate("des_events_per_sec", self.des.events_per_sec())
            .rate("hashed_mb_per_sec_full", self.hash.full_mb_per_sec())
            .rate(
                "hashed_mb_per_sec_incremental",
                self.hash.incremental_mb_per_sec(),
            )
            .rate(
                "hashed_mb_per_sec_paged_warm",
                self.hash.paged_warm_mb_per_sec(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PerfConfig {
        PerfConfig {
            jobs: 500,
            pages: 16,
            dirty: 3,
            iters: 1,
            seed: 42,
        }
    }

    #[test]
    fn des_perf_engines_agree_and_checksum_is_stable() {
        let a = des_perf(tiny());
        let b = des_perf(tiny());
        assert!(a.engines_agree);
        assert_eq!(a.outcome_checksum, b.outcome_checksum);
        assert_eq!(a.jobs, 500);
        assert!(a.events > a.jobs);
    }

    #[test]
    fn hash_perf_incremental_is_exact() {
        let h = hash_perf(tiny());
        assert!(h.incremental_matches_full);
        assert_eq!(h.pages, 16);
        assert_eq!(h.dirty, 3);
        // Warm paged measure re-hashes only the dirty pages: the clean ones
        // all hit the cache.
        assert_eq!(h.paged_cache_hits, 16 - 3);
        assert_eq!(h.full_digest_hex.len(), 96);
        // Digest is deterministic in the seed.
        assert_eq!(h.full_digest_hex, hash_perf(tiny()).full_digest_hex);
    }

    #[test]
    fn snapshot_carries_the_gated_rates() {
        let sweep = run_sweep(tiny());
        let text = sweep.snapshot().render();
        assert!(text.contains("wall_us_per_simulated_request"));
        assert!(text.contains("hashed_mb_per_sec_full"));
        assert!(text.contains("des_speedup"));
    }
}
