//! Regenerates every table and figure of the SEVeriFast paper.
//!
//! ```text
//! cargo run --release -p sevf-bench --bin figures -- --list
//! cargo run --release -p sevf-bench --bin figures -- --all
//! cargo run --release -p sevf-bench --bin figures -- --fig 9 --scale quick
//! cargo run --release -p sevf-bench --bin figures -- --table cluster
//! cargo run --release -p sevf-bench --bin figures -- --all --out data/
//! ```

use severifast::experiments::{self as exp, ExperimentScale};
use severifast::BootPolicy;
use sevf_bench::{fmt_ms, mib, render_table, write_dumps, FigureDump, Json};
use sevf_cluster::attsweep as att_exp;
use sevf_cluster::experiment as cluster_exp;
use sevf_cluster::netsweep as net_exp;
use sevf_cluster::policysweep as policy_exp;
use sevf_cluster::scalesweep as scale_exp;
use sevf_fleet::chaos as fleet_chaos;
use sevf_fleet::experiment as fleet_exp;
use sevf_sim::stats::cdf;

/// Every figure/table id with a one-line description. This registry is the
/// single source of truth: it drives `--list`, the `--all` ordering, and
/// dispatch, so ids can never drift out of the usage text again.
const FIGURES: &[(&str, &str)] = &[
    ("3", "OVMF SEV-SNP boot phase breakdown"),
    ("4", "pre-encryption time vs component size"),
    ("5", "measured direct boot step costs per codec"),
    ("7", "pre-encrypt or generate boot structures"),
    ("8", "guest kernel configurations"),
    ("9", "end-to-end boot CDFs including attestation"),
    (
        "10",
        "pre-encryption and firmware/boot verification breakdown",
    ),
    ("11", "stock Firecracker vs SEVeriFast boot breakdown"),
    ("12", "concurrent launches against the PSP bottleneck"),
    ("mem", "memory footprint of SEV support (§6.3)"),
    (
        "warm",
        "warm start: keep-alive rent and the dedup wall (§7.1)",
    ),
    (
        "fw12",
        "Fig. 12 with shared-key template launches (§6.2 future work)",
    ),
    (
        "fleet",
        "single-host serving: cold vs template vs warm pool",
    ),
    ("chaos", "fleet availability under a seeded fault storm"),
    (
        "cluster",
        "multi-host scale-out, placement policies, and an outage drill",
    ),
    (
        "trace",
        "per-request critical paths: cold, template hit, failover recovery",
    ),
    (
        "attplane",
        "attestation plane: naive vs cached vs batched verification, a TCB storm, a revocation drill",
    ),
    (
        "net",
        "partition tolerance: link faults, failure detection, leases, and a verifier blackout",
    ),
    (
        "policy",
        "multi-tenant QoS: FIFO vs weighted-fair PSP scheduling, quotas, posture placement",
    ),
    (
        "autoscale",
        "trace-driven autoscaling: static vs reactive vs predictive over a flash crowd",
    ),
    (
        "perf",
        "harness raw speed: calendar vs heap DES, full vs incremental hashing",
    ),
    (
        "headline",
        "cold-start reduction over the QEMU/OVMF baseline",
    ),
];

struct Args {
    figures: Vec<String>,
    scale: ExperimentScale,
    out: Option<std::path::PathBuf>,
}

fn usage() -> String {
    let ids: Vec<&str> = FIGURES.iter().map(|(id, _)| *id).collect();
    format!(
        "usage: figures [--all] [--list] [--fig <id>]... [--table <id>]...\n       \
         [--scale quick|full] [--out <dir>]\nids: {}",
        ids.join(", ")
    )
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage());
    std::process::exit(2);
}

fn print_list() {
    let width = FIGURES.iter().map(|(id, _)| id.len()).max().unwrap_or(0);
    for (id, description) in FIGURES {
        println!("{id:width$}  {description}");
    }
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut scale = ExperimentScale::full();
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                print_list();
                std::process::exit(0);
            }
            "--all" => {
                figures = FIGURES.iter().map(|(id, _)| id.to_string()).collect();
            }
            "--fig" | "--table" => match args.next() {
                Some(fig) => figures.push(fig),
                None => usage_error("--fig takes a value"),
            },
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("quick") => ExperimentScale::quick(),
                    Some("full") => ExperimentScale::full(),
                    Some(other) => usage_error(&format!("unknown scale '{other}'")),
                    None => usage_error("--scale takes a value"),
                };
            }
            "--out" => match args.next() {
                Some(dir) => out = Some(std::path::PathBuf::from(dir)),
                None => usage_error("--out takes a directory"),
            },
            other => usage_error(&format!("unknown argument '{other}'")),
        }
    }
    if figures.is_empty() {
        figures.push("headline".into());
    }
    Args {
        figures,
        scale,
        out,
    }
}

fn main() {
    let args = parse_args();
    let mut dumps: Vec<FigureDump> = Vec::new();
    for fig in &args.figures {
        let dump = match fig.as_str() {
            "3" => fig3(&args.scale),
            "4" => fig4(),
            "5" => fig5(&args.scale),
            "7" => fig7(),
            "8" => fig8(&args.scale),
            "9" => fig9(&args.scale),
            "10" => fig10(&args.scale),
            "11" => fig11(&args.scale),
            "12" => fig12(&args.scale),
            "mem" => mem_table(),
            "warm" => warm_table(&args.scale),
            "fw12" => fw12(&args.scale),
            "fleet" => fleet_table(),
            "chaos" => chaos_table(&args.scale),
            "cluster" => cluster_table(&args.scale),
            "attplane" => attplane_table(&args.scale),
            "net" => net_table(&args.scale),
            "policy" => policy_table(&args.scale),
            "autoscale" => autoscale_table(&args.scale),
            "trace" => trace_table(&args.scale),
            "perf" => perf_table(&args.scale),
            "headline" => headline(&args.scale),
            other => usage_error(&format!("unknown figure '{other}' (see --list)")),
        };
        dumps.push(dump);
    }
    if let Some(dir) = &args.out {
        write_dumps(dir, &dumps).expect("write JSON dumps");
        eprintln!("wrote {} JSON dump(s) to {}", dumps.len(), dir.display());
    }
}

fn fig3(scale: &ExperimentScale) -> FigureDump {
    let slices = exp::fig3_ovmf_phases(scale).expect("fig3 boot");
    let total: f64 = slices.iter().map(|s| s.ms).sum();
    println!("\n=== Figure 3: OVMF SEV-SNP boot phase breakdown ===");
    println!("(paper: >3 s total; the Boot Verifier is a small sliver)\n");
    let rows: Vec<Vec<String>> = slices
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                fmt_ms(s.ms),
                format!("{:.1}%", 100.0 * s.ms / total),
            ]
        })
        .collect();
    println!("{}", render_table(&["phase", "ms", "share"], &rows));
    println!("total: {} ms", fmt_ms(total));
    FigureDump {
        id: "fig3".into(),
        caption: "OVMF boot process with SEV-SNP".into(),
        data: Json::Arr(
            slices
                .iter()
                .map(|s| {
                    Json::obj([
                        ("phase", Json::from(s.label.clone())),
                        ("ms", Json::from(s.ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig4() -> FigureDump {
    let points = exp::fig4_preencryption();
    println!("\n=== Figure 4: pre-encryption time vs component size ===");
    println!("(paper: linear; 23 MB vmlinux ≈ 5.65 s, 3.3 MB bzImage ≈ 840 ms)\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                if p.label.is_empty() {
                    "·".into()
                } else {
                    p.label.clone()
                },
                mib(p.bytes),
                fmt_ms(p.ms),
            ]
        })
        .collect();
    println!("{}", render_table(&["component", "MiB", "ms"], &rows));
    FigureDump {
        id: "fig4".into(),
        caption: "Pre-encryption cost scales linearly with size".into(),
        data: Json::Arr(
            points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("label", Json::from(p.label.clone())),
                        ("bytes", Json::from(p.bytes)),
                        ("ms", Json::from(p.ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig5(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::fig5_measured_direct_boot(scale);
    println!("\n=== Figure 5: measured direct boot step costs per codec ===");
    println!("(paper: LZ4 bzImage wins for kernels; uncompressed initrd wins)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.component.clone(),
                r.codec.name().into(),
                mib(r.transferred_bytes),
                fmt_ms(r.copy_ms),
                fmt_ms(r.hash_ms),
                fmt_ms(r.decompress_ms),
                fmt_ms(r.total_ms()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "component",
                "codec",
                "MiB",
                "copy",
                "hash",
                "decompress",
                "total(ms)"
            ],
            &table
        )
    );
    FigureDump {
        id: "fig5".into(),
        caption: "Measured direct boot favors LZ4 kernels, raw initrds".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("component", Json::from(r.component.clone())),
                        ("codec", Json::from(r.codec.name())),
                        ("bytes", Json::from(r.transferred_bytes)),
                        ("copy_ms", Json::from(r.copy_ms)),
                        ("hash_ms", Json::from(r.hash_ms)),
                        ("decompress_ms", Json::from(r.decompress_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig7() -> FigureDump {
    let rows = exp::fig7_structures();
    println!("\n=== Figure 7: pre-encrypt or generate boot structures ===\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.into(),
                r.purpose.into(),
                format!("{} B", r.struct_bytes),
                if r.code_bytes == 0 {
                    "N/A".into()
                } else {
                    format!("{:.1} KB", r.code_bytes as f64 / 1024.0)
                },
                r.decision.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "structure",
                "purpose",
                "struct size",
                "code size",
                "decision"
            ],
            &table
        )
    );
    FigureDump {
        id: "fig7".into(),
        caption: "Pre-encrypt a structure iff generating code is larger".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("name", Json::from(r.name)),
                        ("struct_bytes", Json::from(r.struct_bytes)),
                        ("code_bytes", Json::from(r.code_bytes)),
                        ("decision", Json::from(r.decision)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig8(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::fig8_kernels(scale);
    println!("\n=== Figure 8: guest kernels ===");
    println!("(paper: 23/3.3, 43/7.1, 61/15 MB)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.config.clone(), mib(r.vmlinux_bytes), mib(r.bzimage_bytes)])
        .collect();
    println!(
        "{}",
        render_table(&["config", "vmlinux MiB", "bzImage MiB"], &table)
    );
    FigureDump {
        id: "fig8".into(),
        caption: "Kernel configurations".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("config", Json::from(r.config.clone())),
                        ("vmlinux", Json::from(r.vmlinux_bytes)),
                        ("bzimage", Json::from(r.bzimage_bytes)),
                    ])
                })
                .collect(),
        ),
    }
}

fn cdf_json(samples: &[f64]) -> Json {
    Json::Arr(
        cdf(samples)
            .into_iter()
            .map(|(x, p)| Json::Arr(vec![Json::from(x), Json::from(p)]))
            .collect(),
    )
}

fn fig9(scale: &ExperimentScale) -> FigureDump {
    let series = exp::fig9_boot_cdfs(scale).expect("fig9 boots");
    println!("\n=== Figure 9: end-to-end boot CDFs (incl. attestation) ===");
    println!("(paper: SEVeriFast reduces means by 93.8/88.5/86.1 %)\n");
    let table: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let summary = sevf_sim::Summary::from_values(&s.samples_ms);
            vec![
                s.policy.name().into(),
                s.kernel.clone(),
                fmt_ms(summary.mean),
                fmt_ms(summary.p50),
                fmt_ms(summary.p99),
                fmt_ms(summary.stddev),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "kernel", "mean", "p50", "p99", "σ"], &table)
    );
    FigureDump {
        id: "fig9".into(),
        caption: "CDF of boot times, SEVeriFast vs QEMU/OVMF".into(),
        data: Json::Arr(
            series
                .iter()
                .map(|s| {
                    Json::obj([
                        ("policy", Json::from(s.policy.name())),
                        ("kernel", Json::from(s.kernel.clone())),
                        ("cdf", cdf_json(&s.samples_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig10(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::fig10_breakdown(scale).expect("fig10 boots");
    println!("\n=== Figure 10: pre-encryption & firmware/boot verification ===");
    println!("(paper: QEMU ≈ 287.8 ms / 3.2 s; SEVeriFast ≈ 8.2 ms / 20–33 ms)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.name().into(),
                r.kernel.clone(),
                fmt_ms(r.pre_encryption_ms),
                fmt_ms(r.firmware_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "kernel",
                "pre-encryption ms",
                "firmware/verification ms"
            ],
            &table
        )
    );
    FigureDump {
        id: "fig10".into(),
        caption: "Boot time breakdown of SEVeriFast vs QEMU".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("policy", Json::from(r.policy.name())),
                        ("kernel", Json::from(r.kernel.clone())),
                        ("pre_encryption_ms", Json::from(r.pre_encryption_ms)),
                        ("firmware_ms", Json::from(r.firmware_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig11(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::fig11_breakdown(scale).expect("fig11 boots");
    println!("\n=== Figure 11: stock FC vs SEVeriFast (bzImage/vmlinux) ===");
    println!("(paper: SEVeriFast AWS ≈ 4× stock; Linux boot ≈ 2.3× under SNP)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.name().into(),
                r.kernel.clone(),
                fmt_ms(r.vmm_ms),
                fmt_ms(r.verification_ms),
                fmt_ms(r.loader_ms),
                fmt_ms(r.linux_ms),
                fmt_ms(r.total_ms()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "kernel",
                "VMM",
                "verification",
                "loader",
                "linux",
                "total(ms)"
            ],
            &table
        )
    );
    FigureDump {
        id: "fig11".into(),
        caption: "Boot breakdown: stock vs SEVeriFast".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("policy", Json::from(r.policy.name())),
                        ("kernel", Json::from(r.kernel.clone())),
                        ("vmm_ms", Json::from(r.vmm_ms)),
                        ("verification_ms", Json::from(r.verification_ms)),
                        ("loader_ms", Json::from(r.loader_ms)),
                        ("linux_ms", Json::from(r.linux_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fig12(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::fig12_concurrency(scale).expect("fig12 boots");
    println!("\n=== Figure 12: concurrent launches ===");
    println!("(paper: SEV linear, ≈1.8 s avg at 50; non-SEV nearly flat)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.name().into(),
                r.concurrency.to_string(),
                fmt_ms(r.mean_ms),
                fmt_ms(r.max_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "concurrent", "mean ms", "max ms"], &table)
    );
    FigureDump {
        id: "fig12".into(),
        caption: "Average boot time of concurrent guests".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("policy", Json::from(r.policy.name())),
                        ("n", Json::from(r.concurrency)),
                        ("mean_ms", Json::from(r.mean_ms)),
                        ("max_ms", Json::from(r.max_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn mem_table() -> FigureDump {
    let rows = exp::footprint_table();
    println!("\n=== §6.3: memory footprint ===");
    println!("(paper: +50 KB binary for SEV support; +16 KB per SEV guest)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.name().into(),
                format!("{:.2} MiB", r.binary_bytes as f64 / (1024.0 * 1024.0)),
                format!("{} KiB", r.overhead_bytes / 1024),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "binary", "runtime overhead"], &table)
    );
    FigureDump {
        id: "mem".into(),
        caption: "Memory footprint".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("policy", Json::from(r.policy.name())),
                        ("binary", Json::from(r.binary_bytes)),
                        ("overhead", Json::from(r.overhead_bytes)),
                    ])
                })
                .collect(),
        ),
    }
}

fn warm_table(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::warm_start_analysis(scale).expect("warm boots");
    println!("\n=== §7.1: warm start — keep-alive rent and the dedup wall ===");
    println!("(paper: keep-alive is functionally correct but pages cannot be deduplicated)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.name().into(),
                fmt_ms(r.cold_boot_ms),
                fmt_ms(r.warm_invoke_ms),
                mib(r.resident_bytes),
                format!("{:.1}%", r.dedupable_fraction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "cold boot ms",
                "warm invoke ms",
                "resident MiB",
                "dedupable"
            ],
            &table
        )
    );
    FigureDump {
        id: "warm".into(),
        caption: "Warm start: latency vs memory rent vs dedup (§7.1)".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("policy", Json::from(r.policy.name())),
                        ("cold_ms", Json::from(r.cold_boot_ms)),
                        ("warm_ms", Json::from(r.warm_invoke_ms)),
                        ("resident", Json::from(r.resident_bytes)),
                        ("dedupable", Json::from(r.dedupable_fraction)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fw12(scale: &ExperimentScale) -> FigureDump {
    let rows = exp::futurework_shared_key_concurrency(scale).expect("fw12 boots");
    println!("\n=== Future work (§6.2): Fig. 12 with shared-key template launches ===");
    println!("(the sketched PSP mitigation: per-launch PSP work collapses to ~1 ms)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.concurrency.to_string(),
                fmt_ms(r.mean_ms),
                fmt_ms(r.max_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["concurrent", "mean ms", "max ms"], &table)
    );
    FigureDump {
        id: "fw12".into(),
        caption: "Concurrent shared-key launches (future work)".into(),
        data: Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("n", Json::from(r.concurrency)),
                        ("mean_ms", Json::from(r.mean_ms)),
                        ("max_ms", Json::from(r.max_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn fleet_table() -> FigureDump {
    let report =
        fleet_exp::serving_sweep(&fleet_exp::SweepConfig::paper_serving()).expect("fleet sweep");
    println!("\n=== Fleet: serving launch traffic against the PSP bottleneck ===");
    println!(
        "(cold SEV launches serialize {:.1} ms/VM on the PSP → {:.0} req/s ceiling;",
        report.cold_psp_ms, report.cold_capacity_rps
    );
    println!(" template launches and warm pools move the knee out)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.tier.name().into(),
                format!("{:.0}", r.offered_rps),
                r.completed.to_string(),
                r.shed.to_string(),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
                format!("{:.0}%", r.psp_utilization * 100.0),
                format!("{:.0}%", r.cpu_utilization * 100.0),
                r.max_queue_depth.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["tier", "req/s", "done", "shed", "p50 ms", "p99 ms", "psp", "cpu", "maxq"],
            &table
        )
    );
    FigureDump {
        id: "fleet".into(),
        caption: "Serving latency vs offered load: cold vs template vs warm pool".into(),
        data: Json::obj([
            ("cold_psp_ms", Json::from(report.cold_psp_ms)),
            ("cold_capacity_rps", Json::from(report.cold_capacity_rps)),
            (
                "rows",
                Json::Arr(
                    report
                        .rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("tier", Json::from(r.tier.name())),
                                ("offered_rps", Json::from(r.offered_rps)),
                                ("completed", Json::from(r.completed)),
                                ("shed", Json::from(r.shed)),
                                ("p50_ms", Json::from(r.p50_ms)),
                                ("p99_ms", Json::from(r.p99_ms)),
                                ("psp_utilization", Json::from(r.psp_utilization)),
                                ("cpu_utilization", Json::from(r.cpu_utilization)),
                                ("max_queue_depth", Json::from(r.max_queue_depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn chaos_table(scale: &ExperimentScale) -> FigureDump {
    // quick() halves the classes and loads; keyed off the same kernel_div
    // knob the other quick-scale figures use.
    let cfg = if scale.kernel_div > 1 {
        fleet_chaos::ChaosConfig::quick()
    } else {
        fleet_chaos::ChaosConfig::paper_chaos()
    };
    let report = fleet_chaos::chaos_sweep(&cfg).expect("chaos sweep");
    println!("\n=== Chaos: fleet availability under a seeded fault storm ===");
    println!(
        "({} PSP firmware resets + {} warm-guest crashes planned over the longest",
        report.planned_resets, report.planned_crashes
    );
    println!(" run; naive and resilient arms replay the identical fault plan)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.arm.name().into(),
                format!("{:.0}", r.offered_rps),
                r.completed.to_string(),
                r.failed.to_string(),
                r.timeouts.to_string(),
                (r.shed + r.breaker_sheds).to_string(),
                r.retries.to_string(),
                format!("{:.1}", r.goodput_rps),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "req/s", "done", "fail", "t/o", "shed", "retry", "goodput", "p50 ms",
                "p99 ms"
            ],
            &table
        )
    );
    FigureDump {
        id: "chaos".into(),
        caption: "Goodput under a PSP fault storm: no recovery vs retry + degradation".into(),
        data: Json::obj([
            ("planned_resets", Json::from(report.planned_resets)),
            ("planned_crashes", Json::from(report.planned_crashes)),
            (
                "rows",
                Json::Arr(
                    report
                        .rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("arm", Json::from(r.arm.name())),
                                ("offered_rps", Json::from(r.offered_rps)),
                                ("completed", Json::from(r.completed)),
                                ("goodput_rps", Json::from(r.goodput_rps)),
                                ("shed", Json::from(r.shed)),
                                ("breaker_sheds", Json::from(r.breaker_sheds)),
                                ("timeouts", Json::from(r.timeouts)),
                                ("failed", Json::from(r.failed)),
                                ("retries", Json::from(r.retries)),
                                ("faults", Json::from(r.faults)),
                                ("degraded_dispatches", Json::from(r.degraded_dispatches)),
                                ("p50_ms", Json::from(r.p50_ms)),
                                ("p99_ms", Json::from(r.p99_ms)),
                                ("time_degraded_ms", Json::from(r.time_degraded_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn cluster_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        cluster_exp::ClusterSweepConfig::quick()
    } else {
        cluster_exp::ClusterSweepConfig::paper_cluster()
    };
    let report = cluster_exp::cluster_sweep(&cfg).expect("cluster sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "cluster conservation broke in {}/{}",
            row.arm, row.label
        );
    }
    println!("\n=== Cluster: sharded serving with PSP-aware placement ===");
    println!(
        "(each host's PSP caps cold SEV at ≈{:.0} req/s — the ceiling shards, it",
        report.cold_ceiling_rps
    );
    println!(" never pools; template/warm tiers scale out, affinity placement");
    println!(" measures each template once cluster-wide, goodput holds through a");
    println!(" mid-stream host outage)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.arm.into(),
                r.label.clone(),
                r.hosts.to_string(),
                format!("{:.0}", r.offered_rps),
                r.completed.to_string(),
                format!("{:.1}", r.goodput_rps),
                format!("{:.1}", r.per_host_goodput),
                format!("{:.0}%", r.cache_hit_rate * 100.0),
                r.failovers.to_string(),
                format!("{:.2}", r.psp_skew),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "cell", "hosts", "req/s", "done", "goodput", "per-host", "hit", "failover",
                "skew", "p50 ms", "p99 ms"
            ],
            &table
        )
    );
    FigureDump {
        id: "cluster".into(),
        caption: "Scale-out, placement policies, and outage failover across hosts".into(),
        data: Json::obj([
            ("cold_ceiling_rps", Json::from(report.cold_ceiling_rps)),
            (
                "rows",
                Json::Arr(
                    report
                        .rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("arm", Json::from(r.arm)),
                                ("label", Json::from(r.label.clone())),
                                ("hosts", Json::from(r.hosts)),
                                ("offered_rps", Json::from(r.offered_rps)),
                                ("completed", Json::from(r.completed)),
                                ("goodput_rps", Json::from(r.goodput_rps)),
                                ("per_host_goodput", Json::from(r.per_host_goodput)),
                                ("shed", Json::from(r.shed)),
                                ("unroutable", Json::from(r.unroutable)),
                                ("timeouts", Json::from(r.timeouts)),
                                ("failed", Json::from(r.failed)),
                                ("retries", Json::from(r.retries)),
                                ("failovers", Json::from(r.failovers)),
                                ("rebalances", Json::from(r.rebalances)),
                                ("faults", Json::from(r.faults)),
                                ("cache_hit_rate", Json::from(r.cache_hit_rate)),
                                ("cache_misses", Json::from(r.cache_misses)),
                                ("psp_skew", Json::from(r.psp_skew)),
                                ("p50_ms", Json::from(r.p50_ms)),
                                ("p99_ms", Json::from(r.p99_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn attplane_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        att_exp::AttSweepConfig::quick()
    } else {
        att_exp::AttSweepConfig::paper_attestation()
    };
    let report = att_exp::att_sweep(&cfg).expect("attestation sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "attestation conservation broke in {}/{}",
            row.arm, row.mode
        );
    }
    println!("\n=== Attestation plane: verification modes, storm, revocation drill ===");
    println!("(one shared verifier on the cluster clock: naive per-launch checks");
    println!(" re-pay the KDS fetch every time and queue past their ceiling; the");
    println!(" VCEK cache and batch window amortize that cost. A staggered TCB");
    println!(" rollout re-keys every cache; a revoked chip kills its templates");
    println!(" (§6.2) and its guests re-attest on the surviving hosts)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.arm.into(),
                r.mode.into(),
                format!("{:.0}", r.offered_rps),
                r.completed.to_string(),
                (r.shed + r.timeouts).to_string(),
                r.failovers.to_string(),
                r.verifications.to_string(),
                format!("{:.0}%", r.hit_rate * 100.0),
                r.batch_joins.to_string(),
                fmt_ms(r.queue_wait_ms),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "mode", "req/s", "done", "lost", "failover", "verified", "hit", "joins",
                "q-wait", "p50 ms", "p99 ms"
            ],
            &table
        )
    );
    FigureDump {
        id: "attplane".into(),
        caption: "Attestation verification: naive vs cached vs cached+batched".into(),
        data: Json::Arr(
            report
                .rows
                .iter()
                .map(|r| {
                    Json::obj([
                        ("arm", Json::from(r.arm)),
                        ("mode", Json::from(r.mode)),
                        ("offered_rps", Json::from(r.offered_rps)),
                        ("completed", Json::from(r.completed)),
                        ("shed", Json::from(r.shed)),
                        ("timeouts", Json::from(r.timeouts)),
                        ("failed", Json::from(r.failed)),
                        ("failovers", Json::from(r.failovers)),
                        ("retries", Json::from(r.retries)),
                        ("verifications", Json::from(r.verifications)),
                        ("cert_fetches", Json::from(r.cert_fetches)),
                        ("cert_hits", Json::from(r.cert_hits)),
                        ("hit_rate", Json::from(r.hit_rate)),
                        ("batch_joins", Json::from(r.batch_joins)),
                        ("revoked", Json::from(r.revoked)),
                        ("queue_wait_ms", Json::from(r.queue_wait_ms)),
                        ("p50_ms", Json::from(r.p50_ms)),
                        ("p99_ms", Json::from(r.p99_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn net_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        net_exp::NetSweepConfig::quick()
    } else {
        net_exp::NetSweepConfig::paper_partition()
    };
    let report = net_exp::net_sweep(&cfg).expect("partition sweep");
    for row in &report.rows {
        assert!(
            row.conserved,
            "net conservation broke in {}/{}",
            row.arm, row.policy
        );
    }
    println!("\n=== Network: partition tolerance with and without the control plane ===");
    println!("(each arm replays the identical seeded link schedule twice: the naive");
    println!(" policy keeps dispatching into the cut while the resilient one suspects");
    println!(" via phi-accrual heartbeats, fences the island behind expired leases,");
    println!(" fails its work over, and epoch-fences late completions; the blackout");
    println!(" arm fails open within a bounded staleness budget instead of refusing)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.arm.into(),
                r.policy.into(),
                r.completed.to_string(),
                (r.shed + r.timeouts + r.failed).to_string(),
                r.failovers.to_string(),
                r.net_lost.to_string(),
                r.net_nacks.to_string(),
                r.suspicions.to_string(),
                r.lease_expiries.to_string(),
                r.stale_completions.to_string(),
                r.stale_serves.to_string(),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "policy", "done", "lost", "failover", "msg-lost", "nacks", "suspect",
                "parked", "fenced", "stale-ok", "p50 ms", "p99 ms"
            ],
            &table
        )
    );
    FigureDump {
        id: "net".into(),
        caption: "Partition tolerance: naive vs resilient over identical link faults".into(),
        data: Json::Arr(
            report
                .rows
                .iter()
                .map(|r| {
                    Json::obj([
                        ("arm", Json::from(r.arm)),
                        ("policy", Json::from(r.policy)),
                        ("completed", Json::from(r.completed)),
                        ("shed", Json::from(r.shed)),
                        ("timeouts", Json::from(r.timeouts)),
                        ("failed", Json::from(r.failed)),
                        ("failovers", Json::from(r.failovers)),
                        ("retries", Json::from(r.retries)),
                        ("suspicions", Json::from(r.suspicions)),
                        ("suspicions_cleared", Json::from(r.suspicions_cleared)),
                        ("false_suspicions", Json::from(r.false_suspicions)),
                        ("lease_expiries", Json::from(r.lease_expiries)),
                        ("net_lost", Json::from(r.net_lost)),
                        ("net_timeouts", Json::from(r.net_timeouts)),
                        ("net_nacks", Json::from(r.net_nacks)),
                        ("stale_completions", Json::from(r.stale_completions)),
                        (
                            "double_completion_attempts",
                            Json::from(r.double_completion_attempts),
                        ),
                        ("stale_serves", Json::from(r.stale_serves)),
                        ("unavailable_refusals", Json::from(r.unavailable_refusals)),
                        ("reverifies", Json::from(r.reverifies)),
                        ("p50_ms", Json::from(r.p50_ms)),
                        ("p99_ms", Json::from(r.p99_ms)),
                    ])
                })
                .collect(),
        ),
    }
}

fn policy_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        policy_exp::PolicySweepConfig::quick()
    } else {
        policy_exp::PolicySweepConfig::paper_policy()
    };
    let report = policy_exp::policy_sweep(&cfg).expect("policy sweep");
    for arm in &report.arms {
        assert!(
            arm.conserved,
            "policy conservation broke in arm {}",
            arm.arm
        );
        if arm.posture {
            assert_eq!(
                arm.posture_violations, 0,
                "a strict launch landed below its TCB floor"
            );
        }
    }
    for t in &report.tenants {
        assert!(
            t.conserved,
            "per-tenant conservation broke for {}/{}",
            t.arm, t.tenant
        );
    }
    println!("\n=== Policy: multi-tenant QoS over the shared PSPs ===");
    println!("(three tenants, one cluster: a premium latency-sensitive trickle, a");
    println!(" quota-capped batch flood of heavyweight SNP classes, and a posture-");
    println!(" strict tenant that refuses hosts below the patched TCB floor while a");
    println!(" staggered firmware rollout sweeps the fleet. FIFO lets the flood");
    println!(" queue ahead of the trickle; WFQ holds premium's tail without");
    println!(" starving batch; posture placement keeps strict off old firmware)\n");
    let table: Vec<Vec<String>> = report
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.arm.into(),
                t.tenant.into(),
                t.issued.to_string(),
                t.completed.to_string(),
                (t.shed + t.failed).to_string(),
                t.rejected.to_string(),
                t.timeouts.to_string(),
                fmt_ms(t.p50_ms),
                fmt_ms(t.p99_ms),
                fmt_ms(t.deadline_ms),
                if t.slo_met { "ok" } else { "MISS" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "tenant", "issued", "done", "shed", "rej", "t/o", "p50 ms", "p99 ms",
                "target", "slo"
            ],
            &table
        )
    );
    let arm_rows: Vec<Vec<String>> = report
        .arms
        .iter()
        .map(|a| {
            vec![
                a.arm.into(),
                a.scheduler.into(),
                a.quotas.to_string(),
                a.posture.to_string(),
                a.completed.to_string(),
                a.rejected.to_string(),
                a.posture_checks.to_string(),
                a.posture_violations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm",
                "sched",
                "quotas",
                "posture",
                "done",
                "rej",
                "checks",
                "violations"
            ],
            &arm_rows
        )
    );
    FigureDump {
        id: "policy".into(),
        caption: "Multi-tenant QoS: FIFO vs WFQ scheduling with quotas and posture".into(),
        data: Json::obj([
            (
                "arms",
                Json::Arr(
                    report
                        .arms
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("arm", Json::from(a.arm)),
                                ("scheduler", Json::from(a.scheduler)),
                                ("quotas", Json::Bool(a.quotas)),
                                ("posture", Json::Bool(a.posture)),
                                ("completed", Json::from(a.completed)),
                                ("lost", Json::from(a.lost)),
                                ("rejected", Json::from(a.rejected)),
                                ("p50_ms", Json::from(a.p50_ms)),
                                ("p99_ms", Json::from(a.p99_ms)),
                                ("posture_checks", Json::from(a.posture_checks)),
                                ("posture_redirects", Json::from(a.posture_redirects)),
                                ("posture_violations", Json::from(a.posture_violations)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tenants",
                Json::Arr(
                    report
                        .tenants
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("arm", Json::from(t.arm)),
                                ("tenant", Json::from(t.tenant)),
                                ("issued", Json::from(t.issued)),
                                ("completed", Json::from(t.completed)),
                                ("shed", Json::from(t.shed)),
                                ("timeouts", Json::from(t.timeouts)),
                                ("failed", Json::from(t.failed)),
                                ("rejected", Json::from(t.rejected)),
                                ("degraded", Json::from(t.degraded)),
                                ("p50_ms", Json::from(t.p50_ms)),
                                ("p99_ms", Json::from(t.p99_ms)),
                                ("deadline_ms", Json::from(t.deadline_ms)),
                                ("slo_met", Json::Bool(t.slo_met)),
                                ("goodput_rps", Json::from(t.goodput_rps)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn autoscale_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        scale_exp::ScaleSweepConfig::quick()
    } else {
        scale_exp::ScaleSweepConfig::paper_scale()
    };
    let report = scale_exp::scale_sweep(&cfg).expect("scale sweep");
    for row in &report.rows {
        assert!(row.conserved, "conservation broke in arm {}", row.arm);
    }
    println!("\n=== Autoscale: the cost-vs-p99-vs-shed frontier ===");
    println!("(one flash crowd, three provisioning arms: static pays max_hosts for");
    println!(" the whole run; reactive starts small and chases the backlog, eating");
    println!(" the scale-out latency as tail; predictive forecasts the ramp and");
    println!(" warms spares before they take traffic — warm boots are ~free while");
    println!(" cold SEV launches pin at the per-host PSP ceiling)\n");
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.arm.into(),
                format!("{}..{}", r.min_live, r.max_live),
                r.issued.to_string(),
                r.completed.to_string(),
                r.lost.to_string(),
                fmt_ms(r.p50_ms),
                fmt_ms(r.p99_ms),
                format!("{:.1}", r.goodput_rps),
                format!("{:.1}", r.host_seconds),
                format!("{}/{}", r.scale_outs, r.scale_ins),
                r.prewarms.to_string(),
                if r.slo_met { "ok" } else { "MISS" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "arm", "hosts", "issued", "done", "lost", "p50 ms", "p99 ms", "rps", "host-s",
                "out/in", "warm", "slo",
            ],
            &table
        )
    );
    FigureDump {
        id: "autoscale".into(),
        caption: "Trace-driven autoscaling: static vs reactive vs predictive".into(),
        data: Json::obj([(
            "arms",
            Json::Arr(
                report
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("arm", Json::from(r.arm)),
                            ("hosts_start", Json::from(r.hosts_start)),
                            ("issued", Json::from(r.issued)),
                            ("completed", Json::from(r.completed)),
                            ("lost", Json::from(r.lost)),
                            ("p50_ms", Json::from(r.p50_ms)),
                            ("p99_ms", Json::from(r.p99_ms)),
                            ("goodput_rps", Json::from(r.goodput_rps)),
                            ("host_seconds", Json::from(r.host_seconds)),
                            ("ticks", Json::from(r.ticks)),
                            ("scale_outs", Json::from(r.scale_outs)),
                            ("scale_ins", Json::from(r.scale_ins)),
                            ("prewarms", Json::from(r.prewarms)),
                            ("min_live", Json::from(r.min_live)),
                            ("max_live", Json::from(r.max_live)),
                            ("slo_ms", Json::from(r.slo_ms)),
                            ("slo_met", Json::Bool(r.slo_met)),
                        ])
                    })
                    .collect(),
            ),
        )]),
    }
}

fn trace_table(scale: &ExperimentScale) -> FigureDump {
    // Same quick/full switch as the other serving tables.
    let s = sevf_cluster::tracedemo::scenarios(scale.kernel_div > 1).expect("trace scenarios");
    println!("\n=== Trace: per-request critical paths on the shared clock ===");
    println!("(one exemplar per scenario; children tile their parents, so the");
    println!(" per-phase durations sum exactly to the request's metric latency)\n");
    let runs = [&s.cold, &s.template, &s.failover];
    for run in runs {
        let e = &run.exemplar;
        println!(
            "{}: request {} — {} ms over {} attempt(s), {} failover hop(s)",
            run.scenario,
            e.request,
            fmt_ms(e.latency.as_millis_f64()),
            e.attempts,
            e.failover_hops
        );
        let total = e.latency.as_millis_f64();
        let rows: Vec<Vec<String>> = e
            .phases
            .iter()
            .map(|(phase, d)| {
                let ms = d.as_millis_f64();
                vec![
                    phase.clone(),
                    fmt_ms(ms),
                    format!("{:.1}%", 100.0 * ms / total),
                ]
            })
            .collect();
        println!("{}", render_table(&["phase", "ms", "share"], &rows));
    }
    FigureDump {
        id: "trace".into(),
        caption: "Per-phase critical paths of exemplar requests".into(),
        data: Json::Arr(
            runs.iter()
                .map(|run| {
                    let e = &run.exemplar;
                    Json::obj([
                        ("scenario", Json::from(run.scenario)),
                        ("request", Json::from(e.request)),
                        ("latency_ms", Json::from(e.latency.as_millis_f64())),
                        ("attempts", Json::from(e.attempts)),
                        ("failover_hops", Json::from(e.failover_hops)),
                        (
                            "phases",
                            Json::Arr(
                                e.phases
                                    .iter()
                                    .map(|(phase, d)| {
                                        Json::obj([
                                            ("phase", Json::from(phase.clone())),
                                            ("ms", Json::from(d.as_millis_f64())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    }
}

fn perf_table(scale: &ExperimentScale) -> FigureDump {
    let cfg = if scale.kernel_div > 1 {
        sevf_bench::perf::PerfConfig::quick()
    } else {
        sevf_bench::perf::PerfConfig::full()
    };
    let sweep = sevf_bench::perf::run_sweep(cfg);
    assert!(
        sweep.des.engines_agree,
        "calendar and heap engines diverged"
    );
    assert!(
        sweep.hash.incremental_matches_full,
        "incremental measurement diverged from full re-hash"
    );
    println!("\n=== Perf: harness raw speed (calendar DES, batched SHA-384) ===");
    println!("(same workload through both engines; same image through all three");
    println!(" measurement paths — identical results, different wall-clock)\n");
    let d = &sweep.des;
    let des_rows = vec![
        vec![
            "heap (reference)".into(),
            format!("{:.3}", d.us_per_request_heap()),
            format!("{:.0}", d.events as f64 / d.heap_secs),
            "1.00x".into(),
        ],
        vec![
            "calendar".into(),
            format!("{:.3}", d.us_per_request()),
            format!("{:.0}", d.events_per_sec()),
            format!("{:.2}x", d.speedup()),
        ],
    ];
    println!(
        "{}",
        render_table(&["engine", "us/request", "events/s", "speedup"], &des_rows)
    );
    let h = &sweep.hash;
    let hash_rows = vec![
        vec!["full chain".into(), format!("{:.1}", h.full_mb_per_sec())],
        vec![
            format!("incremental ({} dirty)", h.dirty),
            format!("{:.1}", h.incremental_mb_per_sec()),
        ],
        vec![
            "paged, warm cache".into(),
            format!("{:.1}", h.paged_warm_mb_per_sec()),
        ],
    ];
    println!(
        "{}",
        render_table(&["measurement path", "effective MB/s"], &hash_rows)
    );
    println!("{}", sweep.snapshot().render());
    FigureDump {
        id: "perf".into(),
        caption: "Harness raw speed: DES engines and measurement paths".into(),
        data: sweep.snapshot().to_json(),
    }
}

fn headline(scale: &ExperimentScale) -> FigureDump {
    let reductions = exp::headline_reductions(scale).expect("headline boots");
    println!("\n=== Headline: SEVeriFast vs QEMU/OVMF end-to-end reduction ===");
    println!("(paper abstract: 86–93 %)\n");
    let table: Vec<Vec<String>> = reductions
        .iter()
        .map(|(k, r)| vec![k.clone(), format!("{:.1}%", r * 100.0)])
        .collect();
    println!("{}", render_table(&["kernel", "reduction"], &table));
    let _ = BootPolicy::Severifast;
    FigureDump {
        id: "headline".into(),
        caption: "Cold-start reduction over the QEMU/OVMF baseline".into(),
        data: Json::Arr(
            reductions
                .iter()
                .map(|(k, r)| {
                    Json::obj([
                        ("kernel", Json::from(k.clone())),
                        ("reduction", Json::from(*r)),
                    ])
                })
                .collect(),
        ),
    }
}
